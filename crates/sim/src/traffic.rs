//! Traffic model: per-segment speeds with rush hours, a shared environment
//! residual, and injectable incidents.
//!
//! The paper's prediction model (Section IV) decomposes travel time into a
//! *route-dependent* component and an *environment-related* component
//! "shared by all routes on the same road segment". The simulator generates
//! travel times with exactly that structure so the cross-route residual
//! sharing of Equation 8 has signal to exploit:
//!
//! * a per-edge **base speed** (road class / speed limit);
//! * a per-route **speed factor** (the Rapid Line "usually runs faster
//!   than ordinary buses");
//! * a deterministic **daily profile** with morning and evening rush-hour
//!   bumps of per-edge intensity — the periodicity the seasonal index
//!   (Equation 6) must find;
//! * a slowly varying **environment residual**, shared by every bus on the
//!   edge regardless of route — the temporal consistency WiLocator
//!   exploits;
//! * **incidents**: localised long slowdowns that the traffic-map anomaly
//!   detector (Fig. 6) must localise.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wilocator_road::{EdgeId, RoadNetwork, RouteId};

/// Seconds in a simulated day.
pub const DAY_S: f64 = 86_400.0;

/// An injected traffic anomaly on part of a segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// The segment affected.
    pub edge: EdgeId,
    /// Affected range of on-edge arc length, metres.
    pub s_range: (f64, f64),
    /// Absolute start time, seconds.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Travel-time multiplier inside the affected range (≫ 1).
    pub slowdown: f64,
}

impl Incident {
    /// True when the incident affects time `t` and on-edge position `s`.
    pub fn affects(&self, t: f64, s_on_edge: f64) -> bool {
        t >= self.start_s
            && t <= self.start_s + self.duration_s
            && s_on_edge >= self.s_range.0
            && s_on_edge <= self.s_range.1
    }
}

/// Configuration of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Morning rush window, seconds of day.
    pub morning_rush: (f64, f64),
    /// Evening rush window, seconds of day.
    pub evening_rush: (f64, f64),
    /// Peak travel-time multiplier at the centre of a rush window for an
    /// edge with intensity 1.
    pub rush_slowdown: f64,
    /// Per-edge environment residual σ (log scale) outside rush hours.
    pub env_sigma_base: f64,
    /// Per-edge environment residual σ (log scale) during rush hours (the
    /// paper: rush hours "incur a large variation σ²").
    pub env_sigma_rush: f64,
    /// Decorrelation time of the per-edge environment residual, seconds.
    pub env_correlation_s: f64,
    /// City-wide congestion residual σ (log scale) outside rush hours —
    /// the spatially correlated component (weather, events, a generally
    /// bad morning) that every edge shares. This is the signal recent
    /// buses reveal and a frozen timetable cannot track.
    pub city_sigma_base: f64,
    /// City-wide congestion residual σ during rush hours.
    pub city_sigma_rush: f64,
    /// Decorrelation time of the city-wide residual, seconds.
    pub city_correlation_s: f64,
    /// Day-level congestion σ (log scale): how much whole days differ from
    /// each other (weather, school terms, events). Applied during rush
    /// hours, when demand makes the network sensitive to such conditions.
    pub day_sigma: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            morning_rush: (8.0 * 3_600.0, 10.0 * 3_600.0),
            evening_rush: (18.0 * 3_600.0, 19.0 * 3_600.0),
            rush_slowdown: 1.9,
            env_sigma_base: 0.05,
            env_sigma_rush: 0.10,
            env_correlation_s: 1_500.0,
            city_sigma_base: 0.05,
            city_sigma_rush: 0.35,
            city_correlation_s: 3_600.0,
            day_sigma: 0.30,
        }
    }
}

/// The traffic state generator.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, RouteId};
/// use wilocator_sim::{TrafficConfig, TrafficModel};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(500.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let net = b.build();
/// let model = TrafficModel::new(&net, TrafficConfig::default(), 7);
/// let night = model.speed_mps(e, RouteId(0), 3.0 * 3600.0, 100.0);
/// let rush = model.speed_mps(e, RouteId(0), 9.0 * 3600.0, 100.0);
/// assert!(rush < night);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrafficModel {
    config: TrafficConfig,
    base_speed: Vec<f64>,
    rush_intensity: Vec<f64>,
    route_factor: HashMap<RouteId, f64>,
    /// How strongly a route feels congestion (1 = fully; a rapid line with
    /// limited stops and priority measures feels it less — the paper: the
    /// Rapid Line "suffers less from the traffic jam in the overlapped
    /// segments").
    congestion_sensitivity: HashMap<RouteId, f64>,
    incidents: Vec<Incident>,
    seed: u64,
}

impl TrafficModel {
    /// Builds a model for `network`; per-edge base speeds and rush
    /// intensities are drawn deterministically from `seed`.
    pub fn new(network: &RoadNetwork, config: TrafficConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB_EEF);
        let n = network.edges().len();
        let base_speed = (0..n)
            .map(|_| rng.gen_range(7.0..11.0)) // 25–40 km/h free flow
            .collect();
        let rush_intensity = (0..n).map(|_| rng.gen_range(0.5..1.0)).collect();
        TrafficModel {
            config,
            base_speed,
            rush_intensity,
            route_factor: HashMap::new(),
            congestion_sensitivity: HashMap::new(),
            incidents: Vec::new(),
            seed,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Sets a route's speed factor (> 1 = faster than the default bus,
    /// e.g. a rapid line; default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn set_route_factor(&mut self, route: RouteId, factor: f64) {
        assert!(factor > 0.0, "route factor must be positive");
        self.route_factor.insert(route, factor);
    }

    /// The speed factor of a route (1.0 when unset).
    pub fn route_factor(&self, route: RouteId) -> f64 {
        self.route_factor.get(&route).copied().unwrap_or(1.0)
    }

    /// Sets how strongly a route feels congestion (1 = fully, 0 = immune).
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is negative.
    pub fn set_congestion_sensitivity(&mut self, route: RouteId, sensitivity: f64) {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        self.congestion_sensitivity.insert(route, sensitivity);
    }

    /// The congestion sensitivity of a route (1.0 when unset).
    pub fn congestion_sensitivity(&self, route: RouteId) -> f64 {
        self.congestion_sensitivity
            .get(&route)
            .copied()
            .unwrap_or(1.0)
    }

    /// Injects an incident.
    pub fn add_incident(&mut self, incident: Incident) {
        self.incidents.push(incident);
    }

    /// The injected incidents.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// True when second-of-day `tod` falls in a rush window.
    pub fn is_rush(&self, tod: f64) -> bool {
        let (m0, m1) = self.config.morning_rush;
        let (e0, e1) = self.config.evening_rush;
        (tod >= m0 && tod <= m1) || (tod >= e0 && tod <= e1)
    }

    /// The deterministic daily travel-time multiplier for `edge` at
    /// second-of-day `tod` (≥ 1; peaks mid-rush).
    pub fn daily_profile(&self, edge: EdgeId, tod: f64) -> f64 {
        let bump =
            bump_in(tod, self.config.morning_rush).max(bump_in(tod, self.config.evening_rush));
        let intensity = self
            .rush_intensity
            .get(edge.index())
            .copied()
            .unwrap_or(0.7);
        1.0 + intensity * (self.config.rush_slowdown - 1.0) * bump
    }

    /// The shared environment residual multiplier for `edge` at absolute
    /// time `t` — identical for every bus on the edge at that time.
    ///
    /// Two components: a per-edge term (local works, parking chaos) and a
    /// city-wide term shared by **all** edges (weather, events, a
    /// generally congested morning). The city-wide term is what makes the
    /// travel times of buses on *different* segments correlated in time —
    /// the temporal consistency WiLocator's Equation 8 exploits and the
    /// frozen agency timetable cannot see.
    pub fn env_factor(&self, edge: EdgeId, t: f64) -> f64 {
        let tod = t.rem_euclid(DAY_S);
        let rush = self.is_rush(tod);
        let edge_sigma = if rush {
            self.config.env_sigma_rush
        } else {
            self.config.env_sigma_base
        };
        let city_sigma = if rush {
            self.config.city_sigma_rush
        } else {
            self.config.city_sigma_base
        };
        let g_edge = lattice_noise(self.seed, edge.0 as u64, t / self.config.env_correlation_s);
        let g_city = lattice_noise(
            self.seed ^ 0xC171D,
            u64::MAX,
            t / self.config.city_correlation_s,
        );
        // Day-level condition: piecewise constant per day, shared by the
        // whole network, felt during rush hours (a rainy Tuesday is slow
        // everywhere at 9:00 but near-normal at 14:00).
        let day = (t / DAY_S).floor() as i64;
        let g_day = if rush {
            hash_gauss(self.seed ^ 0xDA1, u64::MAX - 1, day)
        } else {
            0.0
        };
        // City-wide terms only ever slow traffic down (congestion is
        // one-sided): rectify them so good days are merely normal.
        (g_edge * edge_sigma + g_city.abs() * city_sigma + g_day.abs() * self.config.day_sigma)
            .exp()
    }

    /// Travel-time multiplier from incidents at `(edge, t, s_on_edge)`.
    pub fn incident_factor(&self, edge: EdgeId, t: f64, s_on_edge: f64) -> f64 {
        self.incidents
            .iter()
            .filter(|i| i.edge == edge && i.affects(t, s_on_edge))
            .map(|i| i.slowdown)
            .fold(1.0, f64::max)
    }

    /// Instantaneous ground speed of a bus of `route` on `edge` at
    /// absolute time `t` and on-edge position `s_on_edge`, m/s.
    pub fn speed_mps(&self, edge: EdgeId, route: RouteId, t: f64, s_on_edge: f64) -> f64 {
        let base = self.base_speed.get(edge.index()).copied().unwrap_or(8.0);
        let tod = t.rem_euclid(DAY_S);
        // Congestion (profile × environment) is felt per the route's
        // sensitivity; a physical incident blocks every route fully.
        let congestion = self.daily_profile(edge, tod) * self.env_factor(edge, t);
        let felt = 1.0 + self.congestion_sensitivity(route) * (congestion - 1.0);
        let multiplier = felt.max(0.1) * self.incident_factor(edge, t, s_on_edge);
        (base * self.route_factor(route) / multiplier).max(0.5)
    }
}

/// Trapezoidal bump: 0 outside `(a, b)`, 1 over the middle 60 % of the
/// window, linear ramps over the outer 20 % on each side. A plateau (not a
/// spike) keeps the *slot-average* slowdown close to the peak, which is
/// what makes the seasonal index separable from noise.
fn bump_in(tod: f64, (a, b): (f64, f64)) -> f64 {
    if tod <= a || tod >= b {
        return 0.0;
    }
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    let ramp = 0.2 * half;
    ((half - (tod - mid).abs()) / ramp).clamp(0.0, 1.0)
}

/// 1-D correlated standard-normal value noise, deterministic in
/// `(seed, stream, x)`.
fn lattice_noise(seed: u64, stream: u64, x: f64) -> f64 {
    let x0 = x.floor();
    let f = x - x0;
    let g = |i: i64| hash_gauss(seed, stream, i);
    let a = g(x0 as i64);
    let b = g(x0 as i64 + 1);
    a + (b - a) * f
}

fn hash_gauss(seed: u64, stream: u64, i: i64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let h1 = z ^ (z >> 31);
    let h2 = {
        let mut w = h1.wrapping_add(0x9E37_79B9_7F4A_7C15);
        w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        w ^ (w >> 31)
    };
    let u1 = ((h1 >> 11) as f64 + 1.0) / (9_007_199_254_740_992.0 + 2.0);
    let u2 = ((h2 >> 11) as f64 + 1.0) / (9_007_199_254_740_992.0 + 2.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_road::NetworkBuilder;

    fn model() -> (TrafficModel, EdgeId) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        (
            TrafficModel::new(&b.build(), TrafficConfig::default(), 42),
            e,
        )
    }

    #[test]
    fn rush_hour_slows_traffic() {
        let (m, e) = model();
        let night = m.speed_mps(e, RouteId(0), 3.0 * 3600.0, 100.0);
        let rush = m.speed_mps(e, RouteId(0), 9.0 * 3600.0, 100.0);
        assert!(rush < night * 0.85, "rush {rush} vs night {night}");
    }

    #[test]
    fn profile_is_one_off_peak_and_peaks_mid_rush() {
        let (m, e) = model();
        assert_eq!(m.daily_profile(e, 3.0 * 3600.0), 1.0);
        let peak = m.daily_profile(e, 9.0 * 3600.0);
        let edge_of_rush = m.daily_profile(e, 8.1 * 3600.0);
        assert!(peak > edge_of_rush);
        assert!(peak > 1.3);
    }

    #[test]
    fn env_factor_shared_and_smooth() {
        let (m, e) = model();
        let t = 11.0 * 3600.0;
        // Identical for any caller at the same (edge, t): determinism.
        assert_eq!(m.env_factor(e, t), m.env_factor(e, t));
        // Smooth over a minute.
        let a = m.env_factor(e, t);
        let b = m.env_factor(e, t + 60.0);
        assert!((a.ln() - b.ln()).abs() < 0.1);
        // Positive multiplicative factor.
        assert!(a > 0.0);
    }

    #[test]
    fn env_factor_varies_over_hours() {
        let (m, e) = model();
        let vals: Vec<f64> = (0..8)
            .map(|i| m.env_factor(e, 10.0 * 3600.0 + i as f64 * 3_000.0))
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "environment residual is constant");
    }

    #[test]
    fn route_factor_speeds_up_rapid_line() {
        let (mut m, e) = model();
        m.set_route_factor(RouteId(9), 1.3);
        let slow = m.speed_mps(e, RouteId(0), 3.0 * 3600.0, 0.0);
        let fast = m.speed_mps(e, RouteId(9), 3.0 * 3600.0, 0.0);
        assert!((fast / slow - 1.3).abs() < 1e-9);
    }

    #[test]
    fn incident_slows_only_its_window_and_range() {
        let (mut m, e) = model();
        m.add_incident(Incident {
            edge: e,
            s_range: (100.0, 200.0),
            start_s: 1_000.0,
            duration_s: 600.0,
            slowdown: 8.0,
        });
        let inside = m.speed_mps(e, RouteId(0), 1_200.0, 150.0);
        let outside_s = m.speed_mps(e, RouteId(0), 1_200.0, 300.0);
        let outside_t = m.speed_mps(e, RouteId(0), 2_000.0, 150.0);
        assert!(inside < outside_s / 4.0);
        assert!((outside_t - outside_s).abs() / outside_s < 0.2);
    }

    #[test]
    fn speed_never_collapses_to_zero() {
        let (mut m, e) = model();
        m.add_incident(Incident {
            edge: e,
            s_range: (0.0, 500.0),
            start_s: 0.0,
            duration_s: 1e9,
            slowdown: 1e9,
        });
        assert!(m.speed_mps(e, RouteId(0), 100.0, 100.0) >= 0.5);
    }

    #[test]
    fn is_rush_detects_windows() {
        let (m, _) = model();
        assert!(m.is_rush(9.0 * 3600.0));
        assert!(m.is_rush(18.5 * 3600.0));
        assert!(!m.is_rush(12.0 * 3600.0));
        assert!(!m.is_rush(2.0 * 3600.0));
    }

    #[test]
    fn different_seeds_produce_different_conditions() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let net = b.build();
        let a = TrafficModel::new(&net, TrafficConfig::default(), 1);
        let c = TrafficModel::new(&net, TrafficConfig::default(), 2);
        assert_ne!(
            a.speed_mps(e, RouteId(0), 1_000.0, 0.0),
            c.speed_mps(e, RouteId(0), 1_000.0, 0.0)
        );
    }
}

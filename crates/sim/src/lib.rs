//! Urban mobility and crowdsensing simulator — the substitute for the
//! paper's in-situ Metro-Vancouver deployment.
//!
//! The WiLocator evaluation ran on three weeks of rider-collected traces
//! over four real bus routes. That data is not available, so this crate
//! regenerates its statistical structure end to end:
//!
//! * [`city`] — synthetic road networks and AP deployments, including
//!   [`vancouver_like`], which reproduces Table I's four routes (stop
//!   counts, lengths, overlap lengths) exactly, and [`campus`] for the
//!   Table II / Fig. 10 scene;
//! * [`traffic`] — per-segment speeds with rush-hour periodicity (what the
//!   seasonal index must discover), a *shared* environment residual across
//!   routes (what Equation 8's cross-route correction exploits), and
//!   injectable incidents (what the anomaly detector must localise);
//! * [`bus`] — kinematic trip simulation with stop dwells and traffic
//!   lights (the "false anomaly" sources of §V-A.4);
//! * [`sensing`] — rider WiFi scans at the paper's 10 s period, plus GPS
//!   (urban canyon) and Cell-ID observations for the baselines;
//! * [`trace`] — multi-day dataset generation, deterministic in a seed;
//! * [`loadgen`] — flattens a dataset into a time-ordered, lane-partitioned
//!   ingestion plan for deterministic multi-threaded server replay, with
//!   a [`LoadPlan::stats`](loadgen::LoadPlan::stats) snapshot stating the
//!   offered load in the server's own metric vocabulary.
//!
//! # Examples
//!
//! ```
//! use wilocator_road::RouteId;
//! use wilocator_sim::{
//!     daily_schedule, simple_street, simulate, CityConfig, SimulationConfig,
//!     TrafficConfig, TrafficModel,
//! };
//!
//! let city = simple_street(1_000.0, 4, 7, &CityConfig::default());
//! let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 7);
//! let schedule = daily_schedule(&city, &[(RouteId(0), 3_600.0)]);
//! let config = SimulationConfig { days: 1, ..SimulationConfig::default() };
//! let dataset = simulate(&city, &schedule, &traffic, &config);
//! assert!(!dataset.trips.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod bus;
pub mod city;
pub mod loadgen;
pub mod sensing;
pub mod trace;
pub mod traffic;
pub mod trajectory;

pub use bus::{segment_travel_time, simulate_trip, BusConfig};
pub use city::{campus, simple_street, vancouver_like, CampusScene, City, CityConfig};
pub use loadgen::{LoadEvent, LoadPlan, QueryOp, RiderLoad, DEFAULT_QUERY_RATIO};
pub use sensing::{sense_trip, serving_tower, GpsModel, ScanBundle, SensingConfig};
pub use trace::{daily_schedule, simulate, Dataset, SimulationConfig, TripTrace};
pub use traffic::{Incident, TrafficConfig, TrafficModel, DAY_S};
pub use trajectory::Trajectory;

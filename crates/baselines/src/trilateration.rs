//! Propagation-model trilateration baseline (EZ-style).
//!
//! Inverts an assumed log-distance model to turn each RSS reading into a
//! range ring around the AP's geo-tag, then solves the linearised
//! least-squares intersection. "Solutions of this line suffer from low
//! accuracy" (paper §VI-A): range errors grow exponentially with dB error,
//! which the comparison benches reproduce.

use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, LogDistance, PathLoss};
use wilocator_road::Route;

/// Trilateration positioner over a route.
#[derive(Debug, Clone)]
pub struct TrilaterationPositioner {
    route: Route,
    positions: Vec<(ApId, Point)>,
    model: LogDistance,
    assumed_tx_dbm: f64,
}

impl TrilaterationPositioner {
    /// Builds the positioner assuming the urban log-distance model and a
    /// common 20 dBm transmit power (the same information the SVD uses).
    pub fn new(route: Route, aps: &[AccessPoint]) -> Self {
        TrilaterationPositioner {
            route,
            positions: aps
                .iter()
                .filter(|ap| ap.is_geo_tagged())
                .map(|ap| (ap.id(), ap.position()))
                .collect(),
            model: LogDistance::urban(),
            assumed_tx_dbm: 20.0,
        }
    }

    /// The route being positioned on.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// Estimated arc length from a ranked RSS list: ranges from the
    /// strongest geo-tagged APs, linearised least squares, projected onto
    /// the route. Falls back to the strongest AP's position with fewer
    /// than three usable readings. `None` with no usable reading.
    pub fn locate(&self, ranked: &[(ApId, i32)]) -> Option<f64> {
        let mut anchors: Vec<(Point, f64)> = Vec::new();
        for &(ap, rss) in ranked.iter().take(5) {
            if let Some(&(_, p)) = self.positions.iter().find(|(id, _)| *id == ap) {
                let loss = self.assumed_tx_dbm - rss as f64;
                anchors.push((p, self.model.distance_for_loss(loss)));
            }
        }
        match anchors.len() {
            0 => None,
            1 | 2 => Some(self.route.project(anchors[0].0).s),
            _ => {
                let est = least_squares_position(&anchors).unwrap_or(anchors[0].0);
                Some(self.route.project(est).s)
            }
        }
    }
}

/// Linearised trilateration: subtracting the first range equation from the
/// rest gives a linear system `A·x = b` solved by normal equations.
fn least_squares_position(anchors: &[(Point, f64)]) -> Option<Point> {
    let (p0, r0) = anchors[0];
    // Accumulate AᵀA and Aᵀb for the 2×2 system.
    let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(pi, ri) in &anchors[1..] {
        let ax = 2.0 * (pi.x - p0.x);
        let ay = 2.0 * (pi.y - p0.y);
        let rhs = r0 * r0 - ri * ri + pi.x * pi.x - p0.x * p0.x + pi.y * pi.y - p0.y * p0.y;
        a11 += ax * ax;
        a12 += ax * ay;
        a22 += ay * ay;
        b1 += ax * rhs;
        b2 += ay * rhs;
    }
    let det = a11 * a22 - a12 * a12;
    if det.abs() < 1e-9 {
        return None;
    }
    Some(Point::new(
        (a22 * b1 - a12 * b2) / det,
        (a11 * b2 - a12 * b1) / det,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_rf::{HomogeneousField, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn setup() -> (TrilaterationPositioner, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(600.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "r", vec![e], &b.build()).unwrap();
        let aps = vec![
            AccessPoint::new(ApId(0), Point::new(100.0, 30.0)),
            AccessPoint::new(ApId(1), Point::new(250.0, -30.0)),
            AccessPoint::new(ApId(2), Point::new(400.0, 30.0)),
        ];
        let field = HomogeneousField::new(aps.clone());
        (TrilaterationPositioner::new(route, &aps), field)
    }

    #[test]
    fn clean_readings_locate_accurately() {
        let (pos, field) = setup();
        for truth in [150.0, 250.0, 350.0] {
            let p = pos.route().point_at(truth);
            let ranked: Vec<(ApId, i32)> = field
                .detectable_at(p, -95.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            let s = pos.locate(&ranked).unwrap();
            // Quantisation alone already costs metres here.
            assert!((s - truth).abs() < 40.0, "truth {truth}, got {s}");
        }
    }

    #[test]
    fn db_errors_blow_up_ranges() {
        // An 8 dB fade (ordinary for WiFi) inflates the inverted range by
        // ~85 % under the n = 3 urban model — the scheme's structural
        // weakness (10^(8/30) ≈ 1.85).
        let model = LogDistance::urban();
        let clean = model.distance_for_loss(80.0);
        let faded = model.distance_for_loss(88.0);
        assert!(
            (faded / clean - 1.85).abs() < 0.01,
            "ratio {}",
            faded / clean
        );

        // End to end, fading increases the mean positioning error.
        let (pos, field) = setup();
        let mut clean_sum = 0.0;
        let mut noisy_sum = 0.0;
        for truth in [150.0, 200.0, 250.0, 300.0, 350.0] {
            let p = pos.route().point_at(truth);
            let mut ranked: Vec<(ApId, i32)> = field
                .detectable_at(p, -95.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            clean_sum += (pos.locate(&ranked).unwrap() - truth).abs();
            ranked[0].1 -= 8;
            ranked[1].1 += 5;
            noisy_sum += (pos.locate(&ranked).unwrap() - truth).abs();
        }
        assert!(
            noisy_sum > clean_sum,
            "fading should hurt on average: {noisy_sum} vs {clean_sum}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let (pos, _field) = setup();
        assert!(pos.locate(&[]).is_none());
        assert!(pos.locate(&[(ApId(9), -50)]).is_none());
        // Single AP: falls back to its projected position.
        let s = pos.locate(&[(ApId(1), -50)]).unwrap();
        assert!((s - 250.0).abs() < 1.0);
    }

    #[test]
    fn collinear_anchors_fall_back() {
        // All anchors on one line: singular system → strongest-AP fallback.
        let anchors = vec![
            (Point::new(0.0, 0.0), 10.0),
            (Point::new(10.0, 0.0), 10.0),
            (Point::new(20.0, 0.0), 10.0),
        ];
        // The y-coordinate is unobservable: determinant ≈ 0.
        assert!(least_squares_position(&anchors).is_none());
    }
}

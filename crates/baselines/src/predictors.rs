//! Arrival-prediction baselines: the transit agency's static timetable
//! estimate and the same-route-only crowd predictor.

use wilocator_core::{ArrivalPredictor, PredictorConfig, TravelTimeStore};
use wilocator_road::{Route, RouteId};

/// The "Transit Agency" predictor of Fig. 8b: per-slot historical means
/// frozen at training time, with **no recent-residual correction** — the
/// behaviour of a published timetable plus AVL-style historical averages.
/// During an unusual rush hour it cannot react, which produces the long
/// error tail the paper observes (max ≈ 800 s vs WiLocator's ≈ 500 s).
#[derive(Debug)]
pub struct AgencyPredictor {
    predictor: ArrivalPredictor,
    /// History frozen at training time: later observations never arrive.
    frozen: TravelTimeStore,
    /// The freeze instant; predictions are computed "as of" this history.
    trained_at: f64,
}

impl AgencyPredictor {
    /// Trains the agency model on everything in `store` before `as_of` and
    /// freezes it.
    pub fn train(store: &TravelTimeStore, as_of: f64, config: PredictorConfig) -> Self {
        // Copy only the pre-freeze records.
        let mut frozen = TravelTimeStore::new();
        for edge in store.edges().collect::<Vec<_>>() {
            for tr in store.completed_before(edge, as_of) {
                frozen.record(edge, *tr);
            }
        }
        let mut predictor = ArrivalPredictor::new(PredictorConfig {
            // No recent window: the agency never reacts to live residuals.
            recent_window_s: 0.0,
            ..config
        });
        predictor.train(&frozen, as_of);
        AgencyPredictor {
            predictor,
            frozen,
            trained_at: as_of,
        }
    }

    /// The freeze instant.
    pub fn trained_at(&self) -> f64 {
        self.trained_at
    }

    /// Predicted absolute arrival time at `stop_s` for a bus of `route` at
    /// `current_s` at time `t`, from frozen history only.
    pub fn predict_arrival(&self, route: &Route, current_s: f64, t: f64, stop_s: f64) -> f64 {
        self.predictor
            .predict_arrival(&self.frozen, route, current_s, t, stop_s)
    }
}

/// The same-route-only predictor (Zhou et al. [28, 29] style): identical
/// to WiLocator's Equation 8 *except* that recent residuals come only from
/// buses of the **same route** — on low-frequency routes the previous
/// same-route bus is long gone, so the correction is usually stale or
/// absent. The delta against WiLocator isolates the paper's cross-route
/// contribution.
#[derive(Debug)]
pub struct SameRoutePredictor {
    predictor: ArrivalPredictor,
}

impl SameRoutePredictor {
    /// Creates the predictor (train like [`ArrivalPredictor`]).
    pub fn new(config: PredictorConfig) -> Self {
        SameRoutePredictor {
            predictor: ArrivalPredictor::new(config),
        }
    }

    /// Offline training: same seasonal machinery as WiLocator.
    pub fn train(&mut self, store: &TravelTimeStore, as_of: f64) {
        self.predictor.train(store, as_of);
    }

    /// Equation 8 with `K′` restricted to the queried route.
    pub fn predict_segment(
        &self,
        store: &TravelTimeStore,
        edge: wilocator_road::EdgeId,
        route: RouteId,
        t: f64,
    ) -> Option<f64> {
        let th_own = self
            .predictor
            .historical_mean(store, edge, Some(route), t)?;
        let recent = store.recent_buses(
            edge,
            t,
            self.predictor.config().recent_window_s,
            self.predictor.config().max_recent_buses,
        );
        let mut ratio_sum = 0.0;
        let mut k = 0usize;
        for tr in recent.iter().filter(|tr| tr.route == route) {
            if let Some(th_k) =
                self.predictor
                    .historical_mean(store, edge, Some(tr.route), tr.t_enter)
            {
                if th_k > 1e-9 {
                    ratio_sum += tr.travel_time() / th_k;
                    k += 1;
                }
            }
        }
        if k == 0 {
            return Some(th_own);
        }
        // Same multiplicative form and shrinkage as WiLocator's Equation 8
        // implementation, so the comparison isolates *whose* residuals are
        // used, not how they are damped.
        let ratio = ((ratio_sum + 1.0) / (k as f64 + 1.0)).clamp(0.5, 3.0);
        Some((th_own * ratio).max(1.0))
    }

    /// Equation 9 with same-route-only segment predictions.
    pub fn predict_arrival(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        current_s: f64,
        t: f64,
        stop_s: f64,
    ) -> f64 {
        if stop_s <= current_s {
            return t;
        }
        let start = route.position_at(current_s);
        let target = route.position_at(stop_s.min(route.length()));
        let seg = |i: usize, t_cur: f64| {
            self.predict_segment(store, route.edges()[i], route.id(), t_cur)
                .unwrap_or_else(|| {
                    route.edge_length(i) / self.predictor.config().fallback_speed_mps
                })
        };
        let mut t_cur = t;
        {
            let i = start.edge_index;
            let len = route.edge_length(i);
            let tp = seg(i, t_cur);
            if target.edge_index == i {
                return t_cur + tp * (target.s_on_edge - start.s_on_edge).max(0.0) / len;
            }
            t_cur += tp * (len - start.s_on_edge) / len;
        }
        for i in start.edge_index + 1..target.edge_index {
            t_cur += seg(i, t_cur);
        }
        let i = target.edge_index;
        t_cur + seg(i, t_cur) * target.s_on_edge / route.edge_length(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_core::Traversal;
    use wilocator_geo::Point;
    use wilocator_road::{NetworkBuilder, Route, RouteId};

    const DAY_S: f64 = 86_400.0;

    fn route_2seg() -> Route {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(600.0, 0.0));
        let n2 = b.add_node(Point::new(1_200.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        Route::new(RouteId(0), "r", vec![e0, e1], &b.build()).unwrap()
    }

    fn seeded_store(route: &Route, days: usize) -> TravelTimeStore {
        let mut store = TravelTimeStore::new();
        for day in 0..days {
            for hour in 6..22 {
                for (i, &edge) in route.edges().iter().enumerate() {
                    let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0 + i as f64 * 90.0;
                    store.record(
                        edge,
                        Traversal {
                            route: RouteId(0),
                            t_enter: t0,
                            t_exit: t0 + 80.0,
                        },
                    );
                }
            }
        }
        store
    }

    #[test]
    fn agency_ignores_live_congestion() {
        let route = route_2seg();
        let mut store = seeded_store(&route, 5);
        let agency = AgencyPredictor::train(&store, 5.0 * DAY_S, PredictorConfig::default());
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        // A live jam is recorded after the freeze.
        store.record(
            route.edges()[0],
            Traversal {
                route: RouteId(1),
                t_enter: now - 500.0,
                t_exit: now - 500.0 + 400.0,
            },
        );
        let eta = agency.predict_arrival(&route, 0.0, now, 1_200.0);
        // Agency still predicts ~160 s (two clean segments).
        assert!((eta - now - 160.0).abs() < 10.0, "agency eta {}", eta - now);
        assert_eq!(agency.trained_at(), 5.0 * DAY_S);
    }

    #[test]
    fn same_route_uses_only_own_residuals() {
        let route = route_2seg();
        let mut store = seeded_store(&route, 5);
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        let edge = route.edges()[0];
        // A bus of route 7 just crawled (+200 s residual).
        store.record(
            edge,
            Traversal {
                route: RouteId(7),
                t_enter: now - 500.0,
                t_exit: now - 500.0 + 280.0,
            },
        );
        let sr = SameRoutePredictor::new(PredictorConfig::default());
        let tp = sr.predict_segment(&store, edge, RouteId(0), now).unwrap();
        // The same-route predictor ignores route 7's residual...
        assert!((tp - 80.0).abs() < 10.0, "same-route tp {tp}");
        // ...but reacts when its own route reports one.
        store.record(
            edge,
            Traversal {
                route: RouteId(0),
                t_enter: now - 300.0,
                t_exit: now - 300.0 + 280.0,
            },
        );
        let tp = sr.predict_segment(&store, edge, RouteId(0), now).unwrap();
        // +200 s residual, shrunk by K/(K+1) with K = 1 ⇒ +100 s.
        assert!(tp > 160.0, "own residual ignored: {tp}");
    }

    #[test]
    fn same_route_arrival_integration() {
        let route = route_2seg();
        let store = seeded_store(&route, 5);
        let sr = SameRoutePredictor::new(PredictorConfig::default());
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        let eta = sr.predict_arrival(&store, &route, 300.0, now, 900.0);
        // Half of segment 0 (40 s) + half of segment 1 (40 s).
        assert!((eta - now - 80.0).abs() < 5.0, "eta {}", eta - now);
        // Behind the bus: now.
        assert_eq!(sr.predict_arrival(&store, &route, 300.0, now, 100.0), now);
    }

    #[test]
    fn agency_with_empty_history_uses_fallback() {
        let route = route_2seg();
        let store = TravelTimeStore::new();
        let agency = AgencyPredictor::train(&store, 0.0, PredictorConfig::default());
        let eta = agency.predict_arrival(&route, 0.0, 0.0, 1_200.0);
        // 1200 m at the 6 m/s fallback = 200 s.
        assert!((eta - 200.0).abs() < 5.0, "eta {eta}");
    }
}

//! Cell-ID sequence matching baseline (Zhou et al. / CAPS style).
//!
//! The phone logs its serving cell tower; the logged tower-ID sequence is
//! matched against the route's reference tower sequence to coarsely place
//! the bus. The paper's critique, which this implementation reproduces:
//! towers cover ~800 m, so (1) a single observation is hugely ambiguous,
//! (2) "it take\[s\] several minutes for the bus rider to capture a stable
//! cell-ID sequence", and (3) overlapped road segments of different routes
//! confuse the match.

use wilocator_geo::Point;
use wilocator_road::Route;

/// A run of route arc length served by one tower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TowerRun {
    /// Index of the serving tower.
    pub tower: usize,
    /// Start of the run, metres.
    pub s0: f64,
    /// End of the run, metres.
    pub s1: f64,
}

/// Cell-ID sequence matcher over a route.
#[derive(Debug, Clone)]
pub struct CellIdMatcher {
    runs: Vec<TowerRun>,
}

impl CellIdMatcher {
    /// Builds the reference tower sequence of `route` by sampling every
    /// `step_m` metres and attaching each sample to its nearest tower.
    ///
    /// # Panics
    ///
    /// Panics if `step_m <= 0` or `towers` is empty.
    pub fn build(route: &Route, towers: &[Point], step_m: f64) -> Self {
        assert!(step_m > 0.0, "sample step must be positive");
        assert!(!towers.is_empty(), "need at least one tower");
        let mut runs: Vec<TowerRun> = Vec::new();
        for (s, p) in route.geometry().sample(step_m) {
            let tower = towers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    p.distance(**a)
                        .partial_cmp(&p.distance(**b))
                        .expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty towers");
            match runs.last_mut() {
                Some(last) if last.tower == tower => last.s1 = s,
                _ => runs.push(TowerRun {
                    tower,
                    s0: s,
                    s1: s,
                }),
            }
        }
        CellIdMatcher { runs }
    }

    /// The reference runs along the route.
    pub fn runs(&self) -> &[TowerRun] {
        &self.runs
    }

    /// All candidate positions (midpoint of the final matched run) whose
    /// reference subsequence equals the observed tower sequence
    /// (consecutive duplicates collapsed). More observed history ⇒ fewer
    /// candidates — the "long capturing time" trade-off.
    pub fn candidates(&self, observed: &[usize]) -> Vec<f64> {
        let seq = dedup(observed);
        if seq.is_empty() {
            return Vec::new();
        }
        let ref_seq: Vec<usize> = self.runs.iter().map(|r| r.tower).collect();
        let mut out = Vec::new();
        if seq.len() > ref_seq.len() {
            return out;
        }
        for start in 0..=(ref_seq.len() - seq.len()) {
            if ref_seq[start..start + seq.len()] == seq[..] {
                let last = &self.runs[start + seq.len() - 1];
                out.push(0.5 * (last.s0 + last.s1));
            }
        }
        out
    }

    /// The candidate nearest to a prior position, or the first candidate
    /// without one.
    pub fn locate(&self, observed: &[usize], prior_s: Option<f64>) -> Option<f64> {
        let cands = self.candidates(observed);
        match prior_s {
            Some(p) => cands
                .into_iter()
                .min_by(|a, b| (a - p).abs().partial_cmp(&(b - p).abs()).expect("finite")),
            None => cands.into_iter().next(),
        }
    }

    /// Ambiguity of an observation: how many positions match. 1 = unique.
    pub fn ambiguity(&self, observed: &[usize]) -> usize {
        self.candidates(observed).len()
    }
}

fn dedup(seq: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::with_capacity(seq.len());
    for &t in seq {
        if out.last() != Some(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::{NetworkBuilder, RouteId};

    fn setup() -> (Route, Vec<Point>) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(4_000.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "r", vec![e], &b.build()).unwrap();
        // Towers every ~800 m.
        let towers: Vec<Point> = (0..5)
            .map(|i| Point::new(400.0 + i as f64 * 800.0, 300.0))
            .collect();
        (route, towers)
    }

    #[test]
    fn reference_runs_cover_route_in_order() {
        let (route, towers) = setup();
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        assert_eq!(m.runs().len(), 5);
        for w in m.runs().windows(2) {
            assert!(w[1].s0 >= w[0].s1);
            assert_eq!(w[1].tower, w[0].tower + 1);
        }
    }

    #[test]
    fn single_observation_is_coarse_but_matched() {
        let (route, towers) = setup();
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        let s = m.locate(&[2], None).unwrap();
        // Tower 2 serves roughly [1600, 2400]: midpoint 2000.
        assert!((s - 2_000.0).abs() < 100.0, "got {s}");
        // Error for a bus actually at the run edge is ~400 m — the paper's
        // point about 800 m cells.
        assert!((s - 1_650.0).abs() > 300.0);
    }

    #[test]
    fn longer_sequences_disambiguate() {
        // A route that visits tower 0 twice: one tower observation is
        // ambiguous, two are unique.
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1_000.0, 0.0));
        let n2 = b.add_node(Point::new(1_000.0, 1_000.0));
        let n3 = b.add_node(Point::new(0.0, 1_000.0));
        let n4 = b.add_node(Point::new(0.0, 10.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let e2 = b.add_edge(n2, n3, None).unwrap();
        let e3 = b.add_edge(n3, n4, None).unwrap();
        let route = Route::new(RouteId(0), "loop", vec![e0, e1, e2, e3], &b.build()).unwrap();
        // Tower 0 near start AND end of the loop; tower 1 on the far side.
        let towers = vec![Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)];
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        assert!(m.ambiguity(&[0]) >= 2, "ambiguity {}", m.ambiguity(&[0]));
        assert_eq!(m.ambiguity(&[0, 1]), 1);
    }

    #[test]
    fn prior_selects_nearest_candidate() {
        let (route, towers) = setup();
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        let near_start = m.locate(&[1], Some(0.0)).unwrap();
        assert!(near_start < 2_000.0);
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let (route, towers) = setup();
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        assert_eq!(m.candidates(&[1, 1, 1, 2, 2]), m.candidates(&[1, 2]));
    }

    #[test]
    fn unmatched_sequence_is_empty() {
        let (route, towers) = setup();
        let m = CellIdMatcher::build(&route, &towers, 20.0);
        assert!(m.candidates(&[4, 0]).is_empty());
        assert!(m.candidates(&[]).is_empty());
        assert!(m.locate(&[], None).is_none());
    }
}

//! GPS/AVL tracking baseline (EasyTracker style).
//!
//! The incumbent the paper replaces: an in-vehicle GPS (or the driver's
//! phone) reports fixes that are map-matched to the route. Cheap to
//! implement — but the fix quality collapses in urban canyons and outages
//! are frequent, which the simulator's `wilocator_sim::GpsModel`
//! reproduces and the comparison benches measure.

use wilocator_geo::Point;
use wilocator_road::Route;

/// Map-matching GPS tracker over a route.
///
/// # Examples
///
/// ```
/// use wilocator_baselines::GpsTracker;
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let route = Route::new(RouteId(0), "r", vec![e], &b.build())?;
/// let tracker = GpsTracker::new(route);
/// assert_eq!(tracker.locate(Some(Point::new(40.0, 12.0))), Some(40.0));
/// assert_eq!(tracker.locate(None), None);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GpsTracker {
    route: Route,
}

impl GpsTracker {
    /// Creates a tracker for `route`.
    pub fn new(route: Route) -> Self {
        GpsTracker { route }
    }

    /// The tracked route.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// Map-matches a GPS fix (or outage) to a route arc length.
    pub fn locate(&self, fix: Option<Point>) -> Option<f64> {
        fix.map(|p| self.route.project(p).s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::{NetworkBuilder, RouteId};

    #[test]
    fn map_matching_projects_noise_onto_route() {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "r", vec![e], &b.build()).unwrap();
        let tracker = GpsTracker::new(route);
        // Lateral noise vanishes after projection; longitudinal survives.
        assert_eq!(tracker.locate(Some(Point::new(250.0, 60.0))), Some(250.0));
        assert_eq!(tracker.locate(Some(Point::new(310.0, 0.0))), Some(310.0));
        // Outage propagates.
        assert_eq!(tracker.locate(None), None);
    }
}

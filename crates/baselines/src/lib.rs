//! Baseline positioning and arrival-prediction schemes the WiLocator paper
//! compares against (or argues against in its motivation):
//!
//! | Baseline | Paper reference | Structural weakness reproduced |
//! |---|---|---|
//! | [`NearestApPositioner`] | conventional Voronoi (a special case of the SVD, §III-A) | resolution bounded by AP spacing |
//! | [`FingerprintPositioner`] | RADAR / Horus line (§VI-A) | labour-intensive calibration; breaks under AP churn |
//! | [`TrilaterationPositioner`] | EZ-style propagation models (§VI-A) | dB noise → exponential range error |
//! | [`CellIdMatcher`] | Cell-ID sequence matching \[15, 27–29\] | ~800 m cells, long capture time, route-overlap ambiguity |
//! | [`GpsTracker`] | GPS/AVL, EasyTracker \[4\] | urban-canyon error spikes and outages |
//! | [`AgencyPredictor`] | the "Transit Agency" curve of Fig. 8b | frozen timetable, no live correction |
//! | [`SameRoutePredictor`] | Zhou et al. \[28, 29\] | residuals only from the same route |
//!
//! Every baseline consumes the same inputs as WiLocator (scan rank lists,
//! the road network, the travel-time store), so the evaluation harness can
//! swap them in head-to-head.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod cellid;
pub mod fingerprint;
pub mod gps;
pub mod predictors;
pub mod trilateration;
pub mod voronoi;

pub use cellid::{CellIdMatcher, TowerRun};
pub use fingerprint::{Fingerprint, FingerprintConfig, FingerprintPositioner};
pub use gps::GpsTracker;
pub use predictors::{AgencyPredictor, SameRoutePredictor};
pub use trilateration::TrilaterationPositioner;
pub use voronoi::NearestApPositioner;

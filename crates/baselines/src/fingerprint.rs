//! RSS-fingerprinting (kNN) positioning baseline (RADAR / Horus style).
//!
//! The dominant pre-SVD approach the paper contrasts with: an offline
//! *calibration* survey records the mean RSS vector at reference points
//! along the route; online, the observed vector is matched to its k
//! nearest fingerprints in signal space. Accurate after an expensive
//! survey — but "suffers from the dynamics of WiFi APs due to
//! reconfiguration or replacement": a dead AP changes every vector and
//! the database silently degrades, which the ablation benches quantify.

use std::collections::{BTreeMap, HashMap};

use rand::Rng;
use wilocator_rf::{ApId, Scanner, ScannerConfig, SignalField};
use wilocator_road::Route;

/// One calibration reference point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Route arc length of the reference point, metres.
    pub s: f64,
    /// Mean RSS per heard AP, dBm. Keyed by a `BTreeMap` so vector
    /// comparisons walk APs in id order regardless of survey order.
    pub rss: BTreeMap<ApId, f64>,
}

/// Configuration of the fingerprinting baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintConfig {
    /// Survey spacing along the route, metres.
    pub survey_step_m: f64,
    /// Scans averaged per reference point during calibration.
    pub scans_per_point: usize,
    /// Neighbours used by the online kNN match.
    pub k: usize,
    /// RSS substituted for APs missing from a vector, dBm.
    pub missing_rss_dbm: f64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            survey_step_m: 10.0,
            scans_per_point: 4,
            k: 3,
            missing_rss_dbm: -95.0,
        }
    }
}

/// The fingerprint database + kNN matcher.
#[derive(Debug, Clone)]
pub struct FingerprintPositioner {
    config: FingerprintConfig,
    database: Vec<Fingerprint>,
}

impl FingerprintPositioner {
    /// Offline calibration (the labour-intensive site survey): walks the
    /// route, scanning the *true* field at every reference point.
    ///
    /// # Panics
    ///
    /// Panics if `config.survey_step_m <= 0`, `scans_per_point == 0` or
    /// `k == 0`.
    pub fn survey<F, R>(
        field: &F,
        route: &Route,
        scanner_config: ScannerConfig,
        config: FingerprintConfig,
        rng: &mut R,
    ) -> Self
    where
        F: SignalField + ?Sized,
        R: Rng + ?Sized,
    {
        assert!(config.survey_step_m > 0.0, "survey step must be positive");
        assert!(config.scans_per_point >= 1, "need at least one scan");
        assert!(config.k >= 1, "k must be at least 1");
        let scanner = Scanner::new(scanner_config);
        let mut database = Vec::new();
        for (s, p) in route.geometry().sample(config.survey_step_m) {
            let mut acc: HashMap<ApId, (f64, usize)> = HashMap::new();
            for _ in 0..config.scans_per_point {
                for r in scanner.scan(field, p, 0.0, rng).readings {
                    let e = acc.entry(r.ap).or_insert((0.0, 0));
                    e.0 += r.rss_dbm as f64;
                    e.1 += 1;
                }
            }
            let rss = acc
                .into_iter()
                .map(|(ap, (sum, n))| (ap, sum / n as f64))
                .collect::<BTreeMap<_, _>>();
            database.push(Fingerprint { s, rss });
        }
        FingerprintPositioner { config, database }
    }

    /// Number of reference points surveyed (the calibration cost).
    pub fn database_size(&self) -> usize {
        self.database.len()
    }

    /// Online phase: kNN match of the observed RSS vector; the estimate is
    /// the mean arc length of the k nearest fingerprints. `None` on empty
    /// input or an empty database.
    pub fn locate(&self, observed: &[(ApId, i32)]) -> Option<f64> {
        if observed.is_empty() || self.database.is_empty() {
            return None;
        }
        let obs: BTreeMap<ApId, f64> = observed.iter().map(|&(ap, rss)| (ap, rss as f64)).collect();
        let mut scored: Vec<(f64, f64)> = self
            .database
            .iter()
            .map(|fp| (self.distance(&obs, &fp.rss), fp.s))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distance"));
        let k = self.config.k.min(scored.len());
        Some(scored[..k].iter().map(|&(_, s)| s).sum::<f64>() / k as f64)
    }

    /// Euclidean distance in signal space over the union of APs; missing
    /// readings are filled with `missing_rss_dbm`.
    fn distance(&self, a: &BTreeMap<ApId, f64>, b: &BTreeMap<ApId, f64>) -> f64 {
        let floor = self.config.missing_rss_dbm;
        // Sum over the sorted AP union: float addition is not associative,
        // so accumulating in an arbitrary order would make distances (and
        // kNN tie-breaks) vary with the survey or hash order.
        let mut aps: Vec<ApId> = a.keys().chain(b.keys()).copied().collect();
        aps.sort_unstable();
        aps.dedup();
        let mut sum = 0.0;
        for ap in aps {
            let ra = a.get(&ap).copied().unwrap_or(floor);
            let rb = b.get(&ap).copied().unwrap_or(floor);
            sum += (ra - rb).powi(2);
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, HomogeneousField};
    use wilocator_road::{NetworkBuilder, RouteId};

    fn setup() -> (Route, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(600.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "r", vec![e], &b.build()).unwrap();
        let mut aps = Vec::new();
        let mut x = 40.0;
        let mut i = 0u32;
        while x < 600.0 {
            aps.push(AccessPoint::new(
                ApId(i),
                Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
            ));
            i += 1;
            x += 80.0;
        }
        (route, HomogeneousField::new(aps))
    }

    fn noiseless_scanner() -> ScannerConfig {
        ScannerConfig {
            fading_sigma_db: 0.0,
            miss_probability: 0.0,
            ..ScannerConfig::default()
        }
    }

    #[test]
    fn calibrated_knn_is_accurate_on_clean_scans() {
        let (route, field) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let fp = FingerprintPositioner::survey(
            &field,
            &route,
            noiseless_scanner(),
            FingerprintConfig::default(),
            &mut rng,
        );
        assert!(fp.database_size() >= 60);
        for truth in [55.0, 200.0, 333.0, 580.0] {
            let obs: Vec<(ApId, i32)> = field
                .detectable_at(route.point_at(truth), -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect();
            let s = fp.locate(&obs).unwrap();
            assert!((s - truth).abs() < 25.0, "truth {truth}, got {s}");
        }
    }

    #[test]
    fn ap_churn_degrades_fingerprints() {
        let (route, field) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let fp = FingerprintPositioner::survey(
            &field,
            &route,
            noiseless_scanner(),
            FingerprintConfig::default(),
            &mut rng,
        );
        // After calibration, half the APs die. Online vectors lose them.
        let dead: Vec<ApId> = (0..4).map(ApId).collect();
        let field_dead = field.without_aps(&dead);
        let truth = 200.0;
        let obs: Vec<(ApId, i32)> = field_dead
            .detectable_at(route.point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect();
        let healthy_obs: Vec<(ApId, i32)> = field
            .detectable_at(route.point_at(truth), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect();
        let err_dead = (fp.locate(&obs).unwrap() - truth).abs();
        let err_ok = (fp.locate(&healthy_obs).unwrap() - truth).abs();
        assert!(
            err_dead >= err_ok,
            "churn should not improve accuracy: {err_dead} vs {err_ok}"
        );
    }

    #[test]
    fn empty_inputs_are_none() {
        let (route, field) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let fp = FingerprintPositioner::survey(
            &field,
            &route,
            noiseless_scanner(),
            FingerprintConfig::default(),
            &mut rng,
        );
        assert!(fp.locate(&[]).is_none());
    }

    #[test]
    fn k_is_clamped_to_database() {
        let (route, field) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let fp = FingerprintPositioner::survey(
            &field,
            &route,
            noiseless_scanner(),
            FingerprintConfig {
                survey_step_m: 500.0, // only two reference points
                k: 50,
                ..FingerprintConfig::default()
            },
            &mut rng,
        );
        assert!(fp.locate(&[(ApId(0), -50)]).is_some());
    }

    #[test]
    #[should_panic(expected = "survey step")]
    fn invalid_config_rejected() {
        let (route, field) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = FingerprintPositioner::survey(
            &field,
            &route,
            noiseless_scanner(),
            FingerprintConfig {
                survey_step_m: 0.0,
                ..FingerprintConfig::default()
            },
            &mut rng,
        );
    }
}

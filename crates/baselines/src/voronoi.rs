//! Euclidean-Voronoi (nearest-AP) positioning baseline.
//!
//! The degenerate case the paper generalises away from: ignore the rank
//! structure entirely and place the bus at the strongest AP's geo-tag,
//! projected onto the route (a first-order Signal-Cell-only scheme whose
//! planar partition coincides with the classic Voronoi diagram when
//! propagation is homogeneous). Its resolution is bounded below by the AP
//! spacing — the gap Figs. 8a/9 quantify against the SVD.

use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId};
use wilocator_road::Route;

/// Nearest-AP positioner over a route.
///
/// # Examples
///
/// ```
/// use wilocator_baselines::NearestApPositioner;
/// use wilocator_geo::Point;
/// use wilocator_road::{NetworkBuilder, Route, RouteId};
/// use wilocator_rf::{AccessPoint, ApId};
///
/// let mut b = NetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(200.0, 0.0));
/// let e = b.add_edge(n0, n1, None)?;
/// let route = Route::new(RouteId(0), "r", vec![e], &b.build())?;
/// let aps = vec![AccessPoint::new(ApId(0), Point::new(50.0, 20.0))];
/// let pos = NearestApPositioner::new(route, &aps);
/// let s = pos.locate(&[(ApId(0), -60)]).unwrap();
/// assert!((s - 50.0).abs() < 1.0);
/// # Ok::<(), wilocator_road::RoadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NearestApPositioner {
    route: Route,
    positions: Vec<(ApId, Point)>,
}

impl NearestApPositioner {
    /// Builds the positioner from geo-tagged APs (untagged ones are
    /// skipped, as the server cannot place them).
    pub fn new(route: Route, aps: &[AccessPoint]) -> Self {
        NearestApPositioner {
            route,
            positions: aps
                .iter()
                .filter(|ap| ap.is_geo_tagged())
                .map(|ap| (ap.id(), ap.position()))
                .collect(),
        }
    }

    /// The route being positioned on.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// Estimated route arc length from a ranked RSS list: the strongest
    /// geo-tagged AP's position projected onto the route. `None` when no
    /// listed AP has a geo-tag.
    pub fn locate(&self, ranked: &[(ApId, i32)]) -> Option<f64> {
        let (_, pos) = ranked.iter().find_map(|&(ap, _)| {
            self.positions
                .iter()
                .find(|(id, _)| *id == ap)
                .map(|&(id, p)| (id, p))
        })?;
        Some(self.route.project(pos).s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::{NetworkBuilder, RouteId};

    fn setup() -> NearestApPositioner {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "r", vec![e], &b.build()).unwrap();
        let aps = vec![
            AccessPoint::new(ApId(0), Point::new(100.0, 20.0)),
            AccessPoint::new(ApId(1), Point::new(300.0, -20.0)),
            AccessPoint::new(ApId(2), Point::new(200.0, 15.0)).without_geo_tag(),
        ];
        NearestApPositioner::new(route, &aps)
    }

    #[test]
    fn strongest_tagged_ap_wins() {
        let pos = setup();
        assert_eq!(pos.locate(&[(ApId(1), -50), (ApId(0), -70)]), Some(300.0));
    }

    #[test]
    fn untagged_ap_skipped() {
        let pos = setup();
        // AP2 strongest but untagged: fall through to AP0.
        assert_eq!(pos.locate(&[(ApId(2), -40), (ApId(0), -60)]), Some(100.0));
    }

    #[test]
    fn all_unknown_is_none() {
        let pos = setup();
        assert_eq!(pos.locate(&[(ApId(9), -50)]), None);
        assert_eq!(pos.locate(&[]), None);
    }

    #[test]
    fn resolution_is_ap_spacing_limited() {
        let pos = setup();
        // Anywhere in AP0's cell maps to exactly s = 100: a bus at s = 160
        // still hears AP0 strongest and gets a 60 m error.
        assert_eq!(pos.locate(&[(ApId(0), -55)]), Some(100.0));
    }
}

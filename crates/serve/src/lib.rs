//! Rider-facing HTTP front end for WiLocator.
//!
//! A zero-dependency HTTP/1.1 server over `std::net` answering rider
//! queries from the epoch-published [`wilocator_core::QuerySnapshot`].
//! Endpoints:
//!
//! | Endpoint | Answer |
//! |---|---|
//! | `GET /arrivals/{stop}` | Predicted arrivals at a stop, per route (`?route=N` filters) |
//! | `GET /position/{bus}` | A bus's latest published fix |
//! | `GET /traffic/{route}` | The route's traffic-map segment states |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | Liveness plus snapshot epoch and staleness |
//! | `GET /debug/timeseries` | Windowed metric aggregates (counter deltas, gauges, latency quantiles) |
//! | `GET /debug/quality` | Per-route ETA-accuracy quantiles from the retro-prediction ledger (`?route=N` filters) |
//! | `GET /debug/slo` | Drift-detector burn rates with exemplar trace ids |
//! | `GET /subscribe?epoch=N` | Long-poll until a snapshot newer than `N` is published (bounded timeout) |
//!
//! The crate splits into three layers, each testable without the one
//! below: [`http`] (pure byte parsing), [`service`] (pure routing over
//! a [`wilocator_core::WiLocator`]), and [`server`] (sockets and the
//! worker pool). Data responses never touch a shard ingest lock — they
//! read the immutable published snapshot, so query throughput is
//! independent of ingest contention (see `DESIGN.md` §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod server;
pub mod service;

pub use http::{parse_request, HttpError, HttpLimits, Request};
pub use server::{serve, ServeConfig, ServerHandle};
pub use service::{debug_dump, respond, Response};

//! Hand-rolled JSON emission for the rider endpoints.
//!
//! The repo's policy is zero external dependencies, so responses are
//! built with a minimal writer instead of a serialization framework
//! (the `tracedump` crate hand-rolls its Chrome-trace JSON the same
//! way). Output is deterministic: object keys are emitted in the order
//! the caller writes them, and floats use Rust's shortest round-trip
//! `{}` formatting, so a deterministic replay yields byte-identical
//! bodies — which the golden response tests rely on.

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                push_hex_digit(out, b >> 4);
                push_hex_digit(out, b & 0xF);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_hex_digit(out: &mut String, d: u32) {
    out.push(char::from_digit(d, 16).unwrap_or('0'));
}

/// Appends `v` as a JSON number — shortest round-trip form, `null` for
/// non-finite values (JSON has no NaN/Inf).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        // `{}` prints integral floats without a decimal point ("120"),
        // which is still valid JSON and deterministic.
        out.push_str(&format!("{v}"));
        debug_assert!(!out[start..].is_empty());
    } else {
        out.push_str("null");
    }
}

/// An object writer: `{"k":v,…}` with caller-ordered keys.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Opens `{`.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string member.
    pub fn str_field(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds a float member.
    pub fn f64_field(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Adds an unsigned-integer member.
    pub fn u64_field(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed-integer member.
    pub fn i64_field(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a boolean member.
    pub fn bool_field(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value member (object, array, literal).
    pub fn raw_field(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Closes `}` and returns the text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

/// An array writer over pre-rendered element values.
#[derive(Debug, Default)]
pub struct JsonArr {
    items: Vec<String>,
}

impl JsonArr {
    /// An empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pre-rendered JSON value.
    pub fn push_raw(&mut self, raw: String) {
        self.items.push(raw);
    }

    /// Renders `[…]`.
    pub fn finish(self) -> String {
        let mut out = String::from("[");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(item);
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut out = String::new();
        write_f64(&mut out, 120.0);
        out.push(' ');
        write_f64(&mut out, 0.1);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "120 0.1 null");
    }

    #[test]
    fn signed_and_bool_members() {
        let obj = JsonObj::new()
            .i64_field("delta", -42)
            .bool_field("fired", true)
            .bool_field("quiet", false)
            .finish();
        assert_eq!(obj, "{\"delta\":-42,\"fired\":true,\"quiet\":false}");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let mut arr = JsonArr::new();
        arr.push_raw(
            JsonObj::new()
                .u64_field("bus", 1)
                .f64_field("eta_s", 30.5)
                .finish(),
        );
        arr.push_raw("null".to_string());
        let obj = JsonObj::new()
            .str_field("stop", "s2")
            .raw_field("arrivals", &arr.finish())
            .finish();
        assert_eq!(
            obj,
            "{\"stop\":\"s2\",\"arrivals\":[{\"bus\":1,\"eta_s\":30.5},null]}"
        );
    }
}

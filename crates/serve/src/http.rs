//! Hand-rolled HTTP/1.1 request parsing.
//!
//! The front end serves five fixed `GET` endpoints to untrusted
//! networks, so the parser is written defensively: every limit is
//! explicit, every malformed input maps to a 4xx/5xx status instead of a
//! panic, and incomplete input is reported as such so the connection
//! loop can keep reading. The parser never allocates proportionally to
//! attacker input beyond the bounded receive buffer it is handed.
//!
//! Parsing is pure (`&[u8]` in, verdict out): the adversarial and
//! property tests exercise it without sockets.

/// Bounds on a request the parser will accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted header section after the request line, bytes.
    pub max_header_bytes: usize,
    /// Most accepted header fields.
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 8_192,
            max_header_bytes: 16_384,
            max_headers: 64,
        }
    }
}

impl HttpLimits {
    /// Ceiling on the receive buffer: a complete request must fit here.
    pub fn max_buffer(&self) -> usize {
        self.max_request_line + self.max_header_bytes
    }
}

/// A parse rejection, carrying the HTTP status to answer with before
/// closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Short human-readable reason (response body).
    pub message: &'static str,
}

impl HttpError {
    const fn new(status: u16, message: &'static str) -> Self {
        HttpError { status, message }
    }
}

/// One parsed request head (the front end accepts no bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim, including any query string.
    pub target: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Whether the connection should persist after the response,
    /// following the version default and any `Connection` header.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split(['?', '#']).next().unwrap_or_default()
    }

    /// The target's query component, if any.
    pub fn query(&self) -> Option<&str> {
        let (_, q) = self.target.split_once('?')?;
        Some(q.split('#').next().unwrap_or_default())
    }
}

/// Parses one request head from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete head is
/// present (`consumed` bytes of `buf` belong to it — pipelined requests
/// follow), `Ok(None)` when more bytes are needed, and `Err` when the
/// input can never become a request this server accepts.
pub fn parse_request(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(Request, usize)>, HttpError> {
    // Request line first: bounded scan for its CRLF.
    let Some(line_end) = find_crlf(buf, limits.max_request_line) else {
        return if buf.len() > limits.max_request_line {
            Err(HttpError::new(414, "request line too long"))
        } else {
            Ok(None)
        };
    };
    let request_line = std::str::from_utf8(buf.get(..line_end).unwrap_or_default())
        .map_err(|_| HttpError::new(400, "request line is not valid UTF-8"))?;
    let (method, target, http11) = parse_request_line(request_line)?;

    // Header section: everything between the request line and the blank
    // line, bounded by `max_header_bytes`.
    let headers_from = line_end + 2;
    let headers_buf = buf.get(headers_from..).unwrap_or_default();
    let Some((block_len, block_consumed)) =
        find_header_terminator(headers_buf, limits.max_header_bytes)
    else {
        return if headers_buf.len() > limits.max_header_bytes {
            Err(HttpError::new(431, "header section too large"))
        } else {
            Ok(None)
        };
    };
    let header_text = std::str::from_utf8(headers_buf.get(..block_len).unwrap_or_default())
        .map_err(|_| HttpError::new(400, "headers are not valid UTF-8"))?;
    let headers = parse_headers(header_text, limits.max_headers)?;

    // This server accepts no request bodies: any framing header that
    // announces one is rejected outright rather than half-read.
    for (name, value) in &headers {
        if name == "content-length" && value.trim() != "0" {
            return Err(HttpError::new(413, "request bodies are not accepted"));
        }
        if name == "transfer-encoding" {
            return Err(HttpError::new(413, "request bodies are not accepted"));
        }
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    let consumed = headers_from + block_consumed;
    Ok(Some((
        Request {
            method,
            target,
            http11,
            headers,
            keep_alive,
        },
        consumed,
    )))
}

/// Splits `GET /path HTTP/1.1` into its three parts, strictly.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, "malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(400, "request target must be absolute"));
    }
    if target.bytes().any(|b| b.is_ascii_control()) {
        return Err(HttpError::new(400, "control bytes in request target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => {
            return Err(HttpError::new(505, "only HTTP/1.0 and HTTP/1.1 are served"))
        }
        _ => return Err(HttpError::new(400, "malformed HTTP version")),
    };
    Ok((method.to_string(), target.to_string(), http11))
}

/// Parses the header block (CRLF-separated, no trailing blank line).
fn parse_headers(text: &str, max_headers: usize) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    if text.is_empty() {
        return Ok(headers);
    }
    for line in text.split("\r\n") {
        if headers.len() >= max_headers {
            return Err(HttpError::new(431, "too many header fields"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::new(400, "header field without a colon"))?;
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(HttpError::new(400, "malformed header name"));
        }
        if value.bytes().any(|b| b.is_ascii_control() && b != b'\t') {
            return Err(HttpError::new(400, "control bytes in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// Index of the first CRLF within the first `limit + 2` bytes.
fn find_crlf(buf: &[u8], limit: usize) -> Option<usize> {
    let horizon = buf.len().min(limit + 2);
    buf.get(..horizon)
        .unwrap_or_default()
        .windows(2)
        .position(|w| w == b"\r\n")
}

/// Locates the blank line terminating the header block: returns
/// `(block_len, consumed)` where `block_len` bytes of headers (without
/// their final CRLF) are followed by `consumed − block_len` terminator
/// bytes — a leading `\r\n` for an empty block, `\r\n\r\n` otherwise.
fn find_header_terminator(buf: &[u8], limit: usize) -> Option<(usize, usize)> {
    if buf.starts_with(b"\r\n") {
        return Some((0, 2));
    }
    let horizon = buf.len().min(limit + 4);
    buf.get(..horizon)
        .unwrap_or_default()
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, p + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
        parse_request(bytes, &HttpLimits::default())
    }

    #[test]
    fn parses_minimal_get() {
        let (req, consumed) = parse(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("valid")
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert!(req.keep_alive);
        assert!(req.headers.is_empty());
        assert_eq!(consumed, 25);
    }

    #[test]
    fn parses_headers_and_query() {
        let raw = b"GET /arrivals/2?route=0 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
        let (req, consumed) = parse(raw).expect("valid").expect("complete");
        assert_eq!(req.path(), "/arrivals/2");
        assert_eq!(req.query(), Some("route=0"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn http10_defaults_to_close() {
        let (req, _) = parse(b"GET / HTTP/1.0\r\n\r\n")
            .expect("valid")
            .expect("done");
        assert!(!req.http11);
        assert!(!req.keep_alive);
        let (req, _) = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .expect("valid")
            .expect("done");
        assert!(req.keep_alive);
        let (req, _) = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("valid")
            .expect("done");
        assert!(!req.keep_alive);
    }

    #[test]
    fn partial_input_is_incomplete_not_an_error() {
        for raw in [
            &b"G"[..],
            b"GET /healthz HTT",
            b"GET /healthz HTTP/1.1",
            b"GET /healthz HTTP/1.1\r\n",
            b"GET /healthz HTTP/1.1\r\nHost: x",
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n",
        ] {
            assert_eq!(parse(raw), Ok(None), "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn pipelined_requests_report_consumed_per_request() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse(raw).expect("valid").expect("complete");
        assert_eq!(first.target, "/healthz");
        let (second, rest) = parse(&raw[consumed..]).expect("valid").expect("complete");
        assert_eq!(second.target, "/metrics");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn malformed_lines_are_400() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x FTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
        ] {
            let got = parse(raw).expect_err(&String::from_utf8_lossy(raw));
            assert_eq!(got.status, 400, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn unsupported_version_is_505() {
        assert_eq!(
            parse(b"GET /x HTTP/2.0\r\n\r\n")
                .expect_err("rejected")
                .status,
            505
        );
        assert_eq!(
            parse(b"GET /x HTTP/0.9\r\n\r\n")
                .expect_err("rejected")
                .status,
            505
        );
    }

    #[test]
    fn bodies_are_413() {
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .expect_err("rejected")
                .status,
            413
        );
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .expect_err("rejected")
                .status,
            413
        );
        // An explicit zero-length body is fine.
        assert!(parse(b"GET /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .expect("valid")
            .is_some());
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 9_000));
        assert_eq!(parse(&raw).expect_err("rejected").status, 414);
    }

    #[test]
    fn oversized_header_section_is_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(
            std::iter::repeat_n(&b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n"[..], 400)
                .flatten(),
        );
        assert_eq!(parse(&raw).expect_err("rejected").status, 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..70 {
            raw.extend(format!("H{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert_eq!(parse(&raw).expect_err("rejected").status, 431);
    }

    #[test]
    fn control_bytes_in_target_are_400() {
        assert_eq!(
            parse(b"GET /x\x07y HTTP/1.1\r\n\r\n")
                .expect_err("rejected")
                .status,
            400
        );
    }

    #[test]
    fn non_utf8_is_400_not_a_panic() {
        assert_eq!(
            parse(b"GET /\xff\xfe HTTP/1.1\r\n\r\n")
                .expect_err("rejected")
                .status,
            400
        );
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nX: \xff\xfe\r\n\r\n")
                .expect_err("rejected")
                .status,
            400
        );
    }
}

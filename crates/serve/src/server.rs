//! The TCP front end: a `std::net` listener feeding a fixed worker
//! pool.
//!
//! # Thread-pool sizing
//!
//! Workers default to 4. A worker is only ever blocked on socket I/O or
//! doing CPU-light snapshot reads (an `Arc` clone plus JSON rendering),
//! so a small pool saturates the read path long before it contends with
//! ingest — the `query_scaling` bench shows a single snapshot cell
//! sustaining dozens of reader threads. Connections beyond the pool
//! wait in the accept queue; riders see latency, not errors, under
//! overload.
//!
//! # Shutdown
//!
//! `ServerHandle::shutdown` flips the stop flag, wakes the acceptor
//! with a self-connection, wakes idle workers via the condvar, and
//! joins every thread. Workers notice the flag between requests and
//! via read timeouts, so shutdown is bounded by one timeout interval.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wilocator_core::WiLocator;

use crate::http::{parse_request, HttpError, HttpLimits};
use crate::service::{respond, Response};

/// Transport configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Parser limits applied to every connection.
    pub limits: HttpLimits,
    /// Socket read timeout; also bounds how long an idle keep-alive
    /// connection can hold a worker, and the shutdown latency.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            limits: HttpLimits::default(),
            read_timeout_ms: 5_000,
        }
    }
}

/// Connections handed from the acceptor to the workers.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running front end; dropping it without calling
/// [`ServerHandle::shutdown`] detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the concrete port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes every thread, and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so the acceptor returns from `accept`.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn unpoisoned<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and starts
/// the acceptor and worker threads.
pub fn serve(
    server: Arc<WiLocator>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(ConnQueue {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });

    let mut threads = Vec::new();
    for _ in 0..config.workers.max(1) {
        let server = Arc::clone(&server);
        let conns = Arc::clone(&conns);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            worker_loop(&server, &conns, &stop, config)
        }));
    }
    {
        let conns = Arc::clone(&conns);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &conns, &stop)
        }));
    }
    Ok(ServerHandle {
        addr,
        stop,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, conns: &ConnQueue, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    // The wake-up self-connection (or a late client);
                    // drop it and wake the workers so they drain out.
                    conns.ready.notify_all();
                    return;
                }
                unpoisoned(conns.queue.lock()).push_back(stream);
                conns.ready.notify_one();
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    conns.ready.notify_all();
                    return;
                }
                // Transient accept errors (e.g. ECONNABORTED) are
                // expected under load; keep serving.
            }
        }
    }
}

fn worker_loop(server: &WiLocator, conns: &ConnQueue, stop: &AtomicBool, config: ServeConfig) {
    loop {
        let stream = {
            let mut queue = unpoisoned(conns.queue.lock());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Timed wait: survives a missed notification during
                // shutdown without spinning in steady state.
                let (guard, _timed_out) =
                    unpoisoned(conns.ready.wait_timeout(queue, Duration::from_millis(100)));
                queue = guard;
            }
        };
        handle_connection(server, stream, &config, stop);
    }
}

/// Serves one connection until close, error, or shutdown. Never
/// panics: every I/O failure ends with a best-effort close.
fn handle_connection(
    server: &WiLocator,
    mut stream: TcpStream,
    config: &ServeConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms.max(1))));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete pipelined request already buffered
        // before reading more bytes.
        match parse_request(&buf, &config.limits) {
            Ok(Some((request, consumed))) => {
                let response = respond(server, &request);
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
                buf.drain(..consumed.min(buf.len()));
                continue;
            }
            Ok(None) => {
                if buf.len() > config.limits.max_buffer() {
                    let error = HttpError {
                        status: 431,
                        message: "request too large",
                    };
                    write_error(&mut stream, server, error);
                    return;
                }
            }
            Err(error) => {
                write_error(&mut stream, server, error);
                return;
            }
        }
        match stream.read(&mut chunk) {
            // Orderly close (or abrupt disconnect mid-request).
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Timeout or hard error: drop the connection quietly.
            Err(_) => return,
        }
        if stop.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
    }
}

/// Answers a parse rejection and counts it as a bad request. The
/// connection always closes afterwards: framing is unknown.
fn write_error(stream: &mut TcpStream, server: &WiLocator, error: HttpError) {
    server.query_metrics().bad_request_total.inc();
    let response = Response {
        status: error.status,
        content_type: "application/json",
        body: format!(
            "{{\"status\":{},\"error\":\"{}\"}}",
            error.status, error.message
        ),
    };
    let _ = write_response(stream, &response, false);
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Reason phrases for every status the front end emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_text_covers_parser_statuses() {
        for status in [200u16, 400, 404, 405, 413, 414, 431, 505] {
            assert_ne!(status_text(status), "Error", "{status}");
        }
        assert_eq!(status_text(599), "Error");
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = ServeConfig::default();
        assert!(config.workers >= 1);
        assert!(config.read_timeout_ms > 0);
        assert!(config.limits.max_buffer() > config.limits.max_request_line);
    }
}

//! Request routing: maps parsed HTTP requests onto the query snapshot.
//!
//! `respond` is a pure function of the server state and the request —
//! the transport in [`crate::server`] only moves bytes. Every data
//! endpoint reads exactly one [`QuerySnapshot`] (a single `Arc` clone;
//! never a shard ingest lock), so a response is internally consistent
//! even while ingest is rewriting tracker state. Queries are metered
//! through [`wilocator_core::QueryMetrics`] and traced through the
//! flight recorder like ingest batches, so `tracedump` can interleave
//! rider queries with the pipeline spans they raced against.

use std::sync::Arc;

use wilocator_core::{BusKey, QualitySections, QueryEndpoint, QuerySnapshot, WiLocator};
use wilocator_obs::{SeriesView, WindowAgg};
use wilocator_road::{RouteId, StopId};

use crate::json::{JsonArr, JsonObj};

/// Upper bound on a `/subscribe` long-poll, milliseconds: long enough
/// to ride out a publish gap, short enough that an abandoned connection
/// never pins a transport thread for more than half a minute.
pub const MAX_SUBSCRIBE_TIMEOUT_MS: u64 = 30_000;

/// Default `/subscribe` timeout when the client does not pass one.
pub const DEFAULT_SUBSCRIBE_TIMEOUT_MS: u64 = 25_000;

/// A fully rendered response, transport-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Value for the `Content-Type` header.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; version=0.0.4";

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: JSON,
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            JsonObj::new()
                .u64_field("status", u64::from(status))
                .str_field("error", message)
                .finish(),
        )
    }
}

/// Routes one request against the server's published snapshot.
///
/// Never takes a shard ingest lock: data endpoints read the epoch cell
/// once and answer entirely from the immutable snapshot. Records the
/// request in the query ledger and opens a keyed `query` root span so
/// the flight recorder tail-samples slow or failing queries.
pub fn respond(server: &WiLocator, request: &crate::http::Request) -> Response {
    let metrics = server.query_metrics();
    let t0 = metrics.clock().now_us();
    // Query tracing is sampled (`QueryPlaneConfig::trace_every`) and the
    // sampled spans are spread across the recorder's rings by key:
    // rider traffic is orders of magnitude denser than ingest, and
    // pushing every query trace through one ring mutex would serialise
    // the otherwise lock-free read path (the query_scaling bench
    // flatlined exactly that way before sampling).
    let key = target_key(&request.target);
    let trace_every = u64::from(server.query_config().trace_every);
    let ctx = if trace_every > 0 && key.is_multiple_of(trace_every) {
        let shard = (key % server.shard_count().max(1) as u64) as usize;
        // Span stamps come from the tracer's own clock, which in replays
        // is the deterministic span clock — never mix it with the query
        // clock.
        let span_start = server.tracer().clock().now_us();
        server
            .tracer()
            .start_root_span_keyed(shard, "query", span_start, key)
    } else {
        None
    };
    if let Some(ctx) = &ctx {
        ctx.field("method", is_get(request));
    }

    let response = route(server, request, ctx.as_ref());

    metrics
        .latency_us
        .record(metrics.clock().now_us().saturating_sub(t0));
    if let Some(ctx) = ctx {
        ctx.field("status", u64::from(response.status));
        if response.status >= 400 {
            ctx.flag_anomaly(if response.status == 404 {
                "query_not_found"
            } else {
                "query_bad_request"
            });
        }
        let end = server.tracer().clock().now_us();
        ctx.finish_at(end);
    }
    response
}

fn is_get(request: &crate::http::Request) -> bool {
    request.method == "GET"
}

fn route(
    server: &WiLocator,
    request: &crate::http::Request,
    ctx: Option<&wilocator_obs::TraceCtx<'_>>,
) -> Response {
    if !is_get(request) {
        server.query_metrics().bad_request_total.inc();
        return Response::error(405, "only GET is supported");
    }
    let path = request.path();
    let (endpoint, rest) = match split_endpoint(path) {
        Some(pair) => pair,
        None => {
            server.query_metrics().bad_request_total.inc();
            return Response::error(404, "no such endpoint");
        }
    };
    server.query_metrics().record_query(endpoint);
    if let Some(ctx) = ctx {
        ctx.field("endpoint", endpoint.label());
    }
    let response = match endpoint {
        QueryEndpoint::Healthz => healthz(server),
        QueryEndpoint::Metrics => Response {
            status: 200,
            content_type: TEXT,
            // lint: allow(read_path_purity) — diagnostic endpoint, not a rider read: the registry mutex is uncontended off the ingest path
            body: server.metrics_text(),
        },
        QueryEndpoint::Arrivals => arrivals(server, rest, request.query()),
        QueryEndpoint::Position => position(server, rest),
        QueryEndpoint::Traffic => traffic(server, rest),
        QueryEndpoint::DebugTimeseries => debug_timeseries(server),
        QueryEndpoint::DebugQuality => debug_quality(server, request.query()),
        QueryEndpoint::DebugSlo => debug_slo(server),
        QueryEndpoint::Subscribe => subscribe(server, request.query()),
    };
    match response.status {
        404 => server.query_metrics().not_found_total.inc(),
        400 => server.query_metrics().bad_request_total.inc(),
        _ => {}
    }
    response
}

/// Splits `/arrivals/3` into the endpoint and its trailing id segment.
/// Returns `None` for unknown paths. `/metrics` and `/healthz` take no
/// id; a trailing segment on them is unknown, not a bad id.
fn split_endpoint(path: &str) -> Option<(QueryEndpoint, &str)> {
    match path {
        "/metrics" => return Some((QueryEndpoint::Metrics, "")),
        "/healthz" => return Some((QueryEndpoint::Healthz, "")),
        "/debug/timeseries" => return Some((QueryEndpoint::DebugTimeseries, "")),
        "/debug/quality" => return Some((QueryEndpoint::DebugQuality, "")),
        "/debug/slo" => return Some((QueryEndpoint::DebugSlo, "")),
        "/subscribe" => return Some((QueryEndpoint::Subscribe, "")),
        _ => {}
    }
    let rest = path.strip_prefix('/')?;
    let (head, id) = rest.split_once('/')?;
    let endpoint = match head {
        "arrivals" => QueryEndpoint::Arrivals,
        "position" => QueryEndpoint::Position,
        "traffic" => QueryEndpoint::Traffic,
        _ => return None,
    };
    Some((endpoint, id))
}

fn healthz(server: &WiLocator) -> Response {
    let snap = server.query_snapshot();
    let metrics = server.query_metrics();
    Response::json(
        200,
        JsonObj::new()
            .str_field("status", "ok")
            .u64_field("epoch", snap.epoch)
            .f64_field("published_at_s", snap.published_at_s)
            .u64_field("staleness_us", metrics.staleness_us())
            .finish(),
    )
}

fn arrivals(server: &WiLocator, id: &str, query: Option<&str>) -> Response {
    let stop = match parse_u32(id) {
        Some(stop) => StopId(stop),
        None => return Response::error(400, "stop id must be a decimal integer"),
    };
    let route_filter = match route_param(query) {
        Ok(filter) => filter,
        Err(response) => return response,
    };
    let snap = server.query_snapshot();
    let mut routes = JsonArr::new();
    let mut seen = false;
    for (route, entries) in snap.arrivals_at_stop(stop) {
        if route_filter.is_some_and(|want| want != route) {
            continue;
        }
        seen = true;
        let mut list = JsonArr::new();
        for entry in entries {
            list.push_raw(
                JsonObj::new()
                    .str_field("bus", &entry.bus.to_string())
                    .f64_field("eta_s", entry.eta_s)
                    .f64_field("from_fix_time_s", entry.from_fix_time_s)
                    .finish(),
            );
        }
        routes.push_raw(
            JsonObj::new()
                .str_field("route", &route.to_string())
                .raw_field("arrivals", &list.finish())
                .finish(),
        );
    }
    if !seen {
        return Response::error(404, "unknown stop");
    }
    Response::json(
        200,
        JsonObj::new()
            .str_field("stop", &stop.to_string())
            .u64_field("epoch", snap.epoch)
            .f64_field("as_of_s", snap.published_at_s)
            .raw_field("routes", &routes.finish())
            .finish(),
    )
}

/// Extracts an optional `route=<decimal>` filter from the query string.
fn route_param(query: Option<&str>) -> Result<Option<RouteId>, Response> {
    let Some(query) = query else {
        return Ok(None);
    };
    for pair in query.split('&') {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "route" {
            continue;
        }
        return match parse_u32(value) {
            Some(route) => Ok(Some(RouteId(route))),
            None => Err(Response::error(
                400,
                "route filter must be a decimal integer",
            )),
        };
    }
    Ok(None)
}

fn position(server: &WiLocator, id: &str) -> Response {
    let bus = match parse_u64(id) {
        Some(bus) => BusKey(bus),
        None => return Response::error(400, "bus id must be a decimal integer"),
    };
    let snap = server.query_snapshot();
    let Some(view) = snap.position(bus) else {
        return Response::error(404, "unknown bus");
    };
    let fix = &view.fix;
    let mut interval = String::from("[");
    crate::json::write_f64(&mut interval, fix.interval.0);
    interval.push(',');
    crate::json::write_f64(&mut interval, fix.interval.1);
    interval.push(']');
    let fix_json = JsonObj::new()
        .f64_field("s", fix.s)
        .f64_field("x", fix.point.x)
        .f64_field("y", fix.point.y)
        .raw_field("interval", &interval)
        .str_field("method", fix.method.label())
        .f64_field("time_s", fix.time_s)
        .finish();
    Response::json(
        200,
        JsonObj::new()
            .str_field("bus", &bus.to_string())
            .str_field("route", &view.route.to_string())
            .u64_field("epoch", snap.epoch)
            .raw_field("fix", &fix_json)
            .finish(),
    )
}

fn traffic(server: &WiLocator, id: &str) -> Response {
    let route = match parse_u32(id) {
        Some(route) => RouteId(route),
        None => return Response::error(400, "route id must be a decimal integer"),
    };
    let snap = server.query_snapshot();
    let Some(segments) = snap.traffic(route) else {
        return Response::error(404, "unknown route");
    };
    let mut list = JsonArr::new();
    for segment in segments {
        list.push_raw(
            JsonObj::new()
                .str_field("edge", &segment.edge.to_string())
                .str_field("state", &segment.state.to_string())
                .f64_field("z", segment.z)
                .finish(),
        );
    }
    Response::json(
        200,
        JsonObj::new()
            .str_field("route", &route.to_string())
            .u64_field("epoch", snap.epoch)
            .f64_field("as_of_s", snap.published_at_s)
            .raw_field("segments", &list.finish())
            .finish(),
    )
}

/// `/debug/timeseries`: the windowed metric aggregates published with
/// the snapshot — closed windows oldest first, the open window last.
fn debug_timeseries(server: &WiLocator) -> Response {
    let snap = server.query_snapshot();
    Response::json(
        200,
        JsonObj::new()
            .u64_field("epoch", snap.epoch)
            .f64_field("as_of_s", snap.published_at_s)
            .f64_field("evaluated_at_s", snap.quality.evaluated_at_s)
            .raw_field("series", &series_json(&snap.quality.series))
            .finish(),
    )
}

fn series_json(series: &[SeriesView]) -> String {
    let mut out = JsonArr::new();
    for view in series {
        let mut points = JsonArr::new();
        for point in &view.points {
            let obj = JsonObj::new().u64_field("start_us", point.start_us);
            points.push_raw(match point.agg {
                WindowAgg::Counter { delta, rate_per_s } => obj
                    .u64_field("delta", delta)
                    .f64_field("rate_per_s", rate_per_s)
                    .finish(),
                WindowAgg::Gauge { value } => obj.i64_field("value", value).finish(),
                WindowAgg::Histogram {
                    count,
                    p50,
                    p90,
                    p99,
                } => obj
                    .u64_field("count", count)
                    .u64_field("p50", p50)
                    .u64_field("p90", p90)
                    .u64_field("p99", p99)
                    .finish(),
            });
        }
        out.push_raw(
            JsonObj::new()
                .str_field("family", &view.family)
                .str_field("kind", view.kind.label())
                .raw_field("points", &points.finish())
                .finish(),
        );
    }
    out.finish()
}

/// `/debug/quality[?route=N]`: live per-route ETA accuracy from the
/// retro-prediction ledger.
fn debug_quality(server: &WiLocator, query: Option<&str>) -> Response {
    let route_filter = match route_param(query) {
        Ok(filter) => filter,
        Err(response) => return response,
    };
    if let Some(route) = route_filter {
        if server.route(route).is_none() {
            return Response::error(404, "unknown route");
        }
    }
    let snap = server.query_snapshot();
    Response::json(
        200,
        JsonObj::new()
            .u64_field("epoch", snap.epoch)
            .f64_field("as_of_s", snap.published_at_s)
            .f64_field("evaluated_at_s", snap.quality.evaluated_at_s)
            .raw_field("routes", &routes_json(&snap.quality, route_filter))
            .finish(),
    )
}

fn routes_json(quality: &QualitySections, filter: Option<RouteId>) -> String {
    let mut out = JsonArr::new();
    for (route, rq) in &quality.routes {
        if filter.is_some_and(|want| want != *route) {
            continue;
        }
        let mut horizons = JsonArr::new();
        for h in &rq.horizons {
            horizons.push_raw(
                JsonObj::new()
                    .f64_field("horizon_s", h.horizon_s)
                    .u64_field("confirmed_total", h.confirmed_total)
                    .f64_field("mean_abs_error_s", h.mean_abs_error_s)
                    .f64_field("p50_s", h.p50_s)
                    .f64_field("p90_s", h.p90_s)
                    .f64_field("p99_s", h.p99_s)
                    .f64_field("p90_abs_s", h.p90_abs_s)
                    .u64_field("recent_confirmed", h.recent_confirmed)
                    .f64_field("recent_p90_s", h.recent_p90_s)
                    .f64_field("recent_p90_abs_s", h.recent_p90_abs_s)
                    .finish(),
            );
        }
        out.push_raw(
            JsonObj::new()
                .str_field("route", &route.to_string())
                .raw_field("horizons", &horizons.finish())
                .finish(),
        );
    }
    out.finish()
}

/// `/debug/slo`: drift-detector statuses with exemplar trace ids, plus
/// the live staleness reading.
fn debug_slo(server: &WiLocator) -> Response {
    let snap = server.query_snapshot();
    Response::json(
        200,
        JsonObj::new()
            .u64_field("epoch", snap.epoch)
            .f64_field("as_of_s", snap.published_at_s)
            .f64_field("evaluated_at_s", snap.quality.evaluated_at_s)
            .f64_field("staleness_s", server.query_metrics().staleness_s())
            .raw_field("detectors", &detectors_json(&snap.quality))
            .finish(),
    )
}

fn detectors_json(quality: &QualitySections) -> String {
    let mut out = JsonArr::new();
    for d in &quality.slo {
        let mut exemplars = JsonArr::new();
        for id in &d.exemplar_trace_ids {
            exemplars.push_raw(id.to_string());
        }
        out.push_raw(
            JsonObj::new()
                .str_field("name", d.name)
                .bool_field("fired", d.fired)
                .f64_field("short_burn", d.short_burn)
                .f64_field("long_burn", d.long_burn)
                .f64_field("threshold", d.threshold)
                .u64_field("short_events", d.short_events)
                .u64_field("long_events", d.long_events)
                .raw_field("exemplar_trace_ids", &exemplars.finish())
                .finish(),
        );
    }
    out.finish()
}

/// `/subscribe?epoch=N[&timeout_ms=M]`: long-poll that blocks until a
/// snapshot newer than `N` is published or the (bounded) timeout
/// elapses. Waiters park outside both the publish gate and the
/// lock-free read path, so a slow subscriber never slows a publisher or
/// another reader.
fn subscribe(server: &WiLocator, query: Option<&str>) -> Response {
    let mut epoch: Option<u64> = None;
    let mut timeout_ms = DEFAULT_SUBSCRIBE_TIMEOUT_MS;
    for pair in query.unwrap_or_default().split('&') {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "epoch" => match parse_u64(value) {
                Some(e) => epoch = Some(e),
                None => return Response::error(400, "epoch must be a decimal integer"),
            },
            "timeout_ms" => match parse_u64(value) {
                Some(ms) => timeout_ms = ms.min(MAX_SUBSCRIBE_TIMEOUT_MS),
                None => return Response::error(400, "timeout_ms must be a decimal integer"),
            },
            _ => {}
        }
    }
    let Some(epoch) = epoch else {
        return Response::error(400, "epoch parameter is required");
    };
    // lint: allow(read_path_purity) — long-poll endpoint: parking on the publish condvar is its documented contract, bounded by the client timeout
    let current = server.wait_past_epoch(epoch, std::time::Duration::from_millis(timeout_ms));
    Response::json(
        200,
        JsonObj::new()
            .u64_field("epoch", current)
            .bool_field("advanced", current > epoch)
            .finish(),
    )
}

/// One self-contained JSON document with all three `/debug` sections —
/// what `vancouver_day --debug-out` writes and `wilocator-dash` renders
/// offline. Byte-identical to stitching the three endpoint bodies.
pub fn debug_dump(server: &WiLocator) -> String {
    let snap = server.query_snapshot();
    JsonObj::new()
        .u64_field("epoch", snap.epoch)
        .f64_field("as_of_s", snap.published_at_s)
        .f64_field("evaluated_at_s", snap.quality.evaluated_at_s)
        .f64_field("staleness_s", server.query_metrics().staleness_s())
        .raw_field("series", &series_json(&snap.quality.series))
        .raw_field("routes", &routes_json(&snap.quality, None))
        .raw_field("detectors", &detectors_json(&snap.quality))
        .finish()
}

/// Strict non-negative decimal: ASCII digits only, must fit the type.
fn parse_u32(s: &str) -> Option<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn parse_u64(s: &str) -> Option<u64> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// Content-derived sampling key for the trace detail decision: a small
/// FNV-1a over the request target, so identical queries sample alike in
/// deterministic replays.
fn target_key(target: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in target.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Exposes the snapshot a response was served from; handy for tests
/// that assert fix/arrival coherence against a response body.
pub fn current_snapshot(server: &WiLocator) -> Arc<QuerySnapshot> {
    server.query_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(target: &str) -> crate::http::Request {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let (request, _) = crate::http::parse_request(&raw.into_bytes(), &Default::default())
            .expect("well-formed")
            .expect("complete");
        request
    }

    #[test]
    fn split_endpoint_covers_all_routes() {
        assert_eq!(
            split_endpoint("/metrics"),
            Some((QueryEndpoint::Metrics, ""))
        );
        assert_eq!(
            split_endpoint("/healthz"),
            Some((QueryEndpoint::Healthz, ""))
        );
        assert_eq!(
            split_endpoint("/arrivals/3"),
            Some((QueryEndpoint::Arrivals, "3"))
        );
        assert_eq!(
            split_endpoint("/position/12"),
            Some((QueryEndpoint::Position, "12"))
        );
        assert_eq!(
            split_endpoint("/traffic/0"),
            Some((QueryEndpoint::Traffic, "0"))
        );
        assert_eq!(
            split_endpoint("/debug/timeseries"),
            Some((QueryEndpoint::DebugTimeseries, ""))
        );
        assert_eq!(
            split_endpoint("/debug/quality"),
            Some((QueryEndpoint::DebugQuality, ""))
        );
        assert_eq!(
            split_endpoint("/debug/slo"),
            Some((QueryEndpoint::DebugSlo, ""))
        );
        assert_eq!(
            split_endpoint("/subscribe"),
            Some((QueryEndpoint::Subscribe, ""))
        );
        assert_eq!(split_endpoint("/debug"), None);
        assert_eq!(split_endpoint("/debug/nope"), None);
        assert_eq!(split_endpoint("/"), None);
        assert_eq!(split_endpoint("/arrivals"), None);
        assert_eq!(split_endpoint("/metrics/extra"), None);
        assert_eq!(split_endpoint("/nope/1"), None);
    }

    #[test]
    fn strict_decimal_ids() {
        assert_eq!(parse_u32("0"), Some(0));
        assert_eq!(parse_u32("42"), Some(42));
        assert_eq!(parse_u32(""), None);
        assert_eq!(parse_u32("-1"), None);
        assert_eq!(parse_u32("+1"), None);
        assert_eq!(parse_u32("1e3"), None);
        assert_eq!(parse_u32("4294967296"), None);
        assert_eq!(parse_u64("4294967296"), Some(4_294_967_296));
    }

    #[test]
    fn route_param_parses_and_rejects() {
        assert_eq!(route_param(None), Ok(None));
        assert_eq!(route_param(Some("limit=5")), Ok(None));
        assert_eq!(route_param(Some("route=2")), Ok(Some(RouteId(2))));
        assert_eq!(route_param(Some("limit=5&route=7")), Ok(Some(RouteId(7))));
        assert!(route_param(Some("route=abc")).is_err());
        assert!(route_param(Some("route=")).is_err());
    }

    #[test]
    fn request_helpers_route_targets() {
        let request = get("/arrivals/3?route=1");
        assert_eq!(request.path(), "/arrivals/3");
        assert_eq!(request.query(), Some("route=1"));
    }

    #[test]
    fn target_key_is_stable() {
        assert_eq!(target_key("/healthz"), target_key("/healthz"));
        assert_ne!(target_key("/healthz"), target_key("/metrics"));
    }
}

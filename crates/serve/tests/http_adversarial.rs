//! Adversarial transport tests: the front end faces untrusted bytes,
//! so every malformed, truncated, oversized or abusive input must end
//! in a 4xx/5xx or a clean close — never a panic, and never a wedged
//! server. Each socket test re-checks that the server still answers
//! `/healthz` afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use wilocator_core::{WiLocator, WiLocatorConfig};
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
use wilocator_road::{NetworkBuilder, Route, RouteId};
use wilocator_serve::{parse_request, serve, HttpLimits, ServeConfig, ServerHandle};

/// A one-street, one-route server with no traffic: the adversarial
/// tests exercise the transport, not the pipeline.
fn tiny_server() -> Arc<WiLocator> {
    let mut b = NetworkBuilder::new();
    let a = b.add_node(Point::new(0.0, 0.0));
    let c = b.add_node(Point::new(600.0, 0.0));
    let edge = b.add_edge(a, c, None).expect("distinct nodes");
    let network = b.build();
    let mut route = Route::new(RouteId(0), "9", vec![edge], &network).expect("connected");
    route.add_stops_evenly(2);
    let aps = vec![
        AccessPoint::new(ApId(0), Point::new(100.0, 10.0)),
        AccessPoint::new(ApId(1), Point::new(400.0, -10.0)),
    ];
    let field = HomogeneousField::new(aps);
    let server = WiLocator::new(&field, vec![route], WiLocatorConfig::default());
    // Publish an (empty) snapshot so the data endpoints know the route.
    server.publish_snapshot(0.0);
    Arc::new(server)
}

fn boot() -> ServerHandle {
    let config = ServeConfig {
        read_timeout_ms: 300,
        ..ServeConfig::default()
    };
    serve(tiny_server(), "127.0.0.1:0", config).expect("bind ephemeral port")
}

/// Sends raw bytes on a fresh connection and returns everything the
/// server answers before closing (or before the read times out).
fn exchange(handle: &ServerHandle, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    stream.write_all(raw).expect("send");
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one response (headers + Content-Length body) from a stream
/// that stays open. `buf` persists across calls so pipelined responses
/// that arrive in one TCP segment are not lost.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String) {
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read headers");
        assert!(n > 0, "connection closed before a full response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .and_then(|v| v.parse().ok())
        .expect("Content-Length present");
    while buf.len() < header_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let text = String::from_utf8_lossy(&buf[..header_end + content_length]).into_owned();
    buf.drain(..header_end + content_length);
    (status, text)
}

fn assert_alive(handle: &ServerHandle) {
    let reply = exchange(
        handle,
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "server wedged: {reply:?}"
    );
}

#[test]
fn malformed_inputs_get_4xx_and_close() {
    let handle = boot();
    for (raw, status) in [
        (&b"BOGUS\r\n\r\n"[..], "400"),
        (b"GET /x HTTP/1.1 junk\r\n\r\n", "400"),
        (b"get /lowercase HTTP/1.1\r\n\r\n", "400"),
        (b"GET nopath HTTP/1.1\r\n\r\n", "400"),
        (b"GET /x HTTP/9.9\r\n\r\n", "505"),
        (b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n", "400"),
        (b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", "413"),
        (b"\xff\xfe\xfd\r\n\r\n", "400"),
    ] {
        let reply = exchange(&handle, raw);
        assert!(
            reply.starts_with(&format!("HTTP/1.1 {status}")),
            "{:?} answered {reply:?}",
            String::from_utf8_lossy(raw)
        );
        assert!(reply.contains("Connection: close"), "{reply:?}");
    }
    assert_alive(&handle);
    handle.shutdown();
}

#[test]
fn method_not_allowed_is_405() {
    let handle = boot();
    let reply = exchange(
        &handle,
        b"DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 405"), "{reply:?}");
    assert_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_request_line_is_414() {
    let handle = boot();
    let mut raw = b"GET /".to_vec();
    raw.resize(raw.len() + 9_000, b'a');
    let reply = exchange(&handle, &raw);
    assert!(reply.starts_with("HTTP/1.1 414"), "{reply:?}");
    assert_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_header_section_is_431() {
    let handle = boot();
    let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..500 {
        raw.extend(format!("X-Filler-{i}: {}\r\n", "a".repeat(40)).into_bytes());
    }
    raw.extend(b"\r\n");
    let reply = exchange(&handle, &raw);
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply:?}");
    assert_alive(&handle);
    handle.shutdown();
}

#[test]
fn partial_sends_reassemble_into_one_request() {
    let handle = boot();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    for piece in [&b"GET /hea"[..], b"lthz HTT", b"P/1.1\r\n", b"\r\n"] {
        stream.write_all(piece).expect("send piece");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut buf = Vec::new();
    let (status, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn pipelined_requests_each_get_a_response() {
    let handle = boot();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /traffic/0 HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("send pipeline");
    let mut buf = Vec::new();
    let (s1, body1) = read_one_response(&mut stream, &mut buf);
    let (s2, body2) = read_one_response(&mut stream, &mut buf);
    let (s3, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert!(body1.contains("\"status\":\"ok\""), "{body1:?}");
    assert!(body2.contains("\"route\":\"R0\""), "{body2:?}");
    // The final request asked to close; the stream must now drain.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(
        buf.is_empty() && rest.is_empty(),
        "bytes after the final response"
    );
    handle.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests() {
    let handle = boot();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let mut buf = Vec::new();
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send");
        let (status, _) = read_one_response(&mut stream, &mut buf);
        assert_eq!(status, 200);
    }
    handle.shutdown();
}

#[test]
fn abrupt_disconnects_leave_the_server_healthy() {
    let handle = boot();
    for raw in [&b"GET /heal"[..], b"GET /healthz HTTP/1.1\r\nHost:", b""] {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        if !raw.is_empty() {
            stream.write_all(raw).expect("send partial");
        }
        drop(stream); // mid-request hangup
    }
    assert_alive(&handle);
    handle.shutdown();
}

#[test]
fn idle_connections_time_out_without_wedging_workers() {
    let handle = boot();
    // Hold more silent connections than there are workers.
    let idle: Vec<TcpStream> = (0..6)
        .map(|_| TcpStream::connect(handle.local_addr()).expect("connect"))
        .collect();
    // After the 300 ms read timeout every worker is free again.
    std::thread::sleep(Duration::from_millis(700));
    assert_alive(&handle);
    drop(idle);
    handle.shutdown();
}

#[test]
fn unknown_ids_are_404_and_bad_ids_are_400() {
    let handle = boot();
    for (target, status) in [
        ("/position/999", "404"),
        ("/arrivals/999", "404"),
        ("/traffic/7", "404"),
        ("/position/abc", "400"),
        ("/arrivals/1?route=x", "400"),
        ("/traffic/-1", "400"),
        ("/unknown/1", "404"),
    ] {
        let reply = exchange(
            &handle,
            format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
        );
        assert!(
            reply.starts_with(&format!("HTTP/1.1 {status}")),
            "{target} answered {reply:?}"
        );
    }
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_request(&bytes, &HttpLimits::default());
    }

    /// Feeding a valid request one prefix at a time never produces an
    /// error before the request is complete, and parses at the end.
    #[test]
    fn prefixes_of_a_valid_request_never_error(cut in 0usize..44) {
        let raw: &[u8] = b"GET /arrivals/1?route=0 HTTP/1.1\r\nHost: x\r\n\r\n";
        prop_assert_eq!(raw.len(), 45);
        let prefix = &raw[..cut.min(raw.len())];
        let parsed = parse_request(prefix, &HttpLimits::default());
        prop_assert!(matches!(parsed, Ok(None)), "prefix {:?}", cut);
        let full = parse_request(raw, &HttpLimits::default());
        prop_assert!(matches!(full, Ok(Some((_, 45)))));
    }

    /// Tight limits change the verdict, never the safety: any byte
    /// soup against tiny limits still returns instead of panicking.
    #[test]
    fn parser_never_panics_under_tiny_limits(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let limits = HttpLimits { max_request_line: 8, max_header_bytes: 8, max_headers: 1 };
        let _ = parse_request(&bytes, &limits);
    }
}

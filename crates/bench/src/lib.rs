//! Benchmark harness support for the WiLocator reproduction.
//!
//! The real content lives in `benches/`: one `harness = false` bench per
//! table and figure of the paper (each prints the same rows or series the
//! paper reports), plus a Criterion suite for the performance-critical
//! kernels. Run everything with `cargo bench --workspace`; select workload
//! size with `WILOCATOR_SCALE` ∈ `smoke` / `medium` (default) / `paper`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::time::Instant;

/// Runs one experiment body with a standard banner and timing footer.
pub fn run_experiment(name: &str, paper_reference: &str, body: impl FnOnce() -> String) {
    let scale = wilocator_eval::Scale::from_env();
    println!("================================================================");
    println!("{name} — {paper_reference}");
    println!("scale: {scale} (set WILOCATOR_SCALE=smoke|medium|paper)");
    println!("================================================================");
    let start = Instant::now();
    let output = body();
    println!("{output}");
    println!(
        "[{name} completed in {:.1} s]\n",
        start.elapsed().as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_experiment_executes_body() {
        let mut ran = false;
        run_experiment("t", "p", || {
            ran = true;
            String::from("ok")
        });
        assert!(ran);
    }
}

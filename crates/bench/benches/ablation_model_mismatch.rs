//! Ablation: propagation-model mismatch ("no RF propagation model is
//! required").

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::ablation;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Ablation: propagation-model mismatch",
        "rank positioning vs model inversion as the true path-loss exponent drifts",
        || ablation::render_mismatch(&ablation::model_mismatch(Scale::from_env(), 11)),
    );
}

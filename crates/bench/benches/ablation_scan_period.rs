//! Ablation: scan-period sensitivity (the prototype fixed 10 s).

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::{ablation, fig9};
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Ablation: scan period",
        "mean positioning error vs WiFi scan period (prototype used 10 s)",
        || {
            let sweep = ablation::scan_period_sweep(Scale::from_env(), 11);
            fig9::render("scan period sweep", &sweep)
        },
    );
}

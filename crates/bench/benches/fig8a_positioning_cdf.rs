//! Fig. 8(a): CDF of positioning errors per route.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig8;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 8(a)",
        "positioning error CDF per route (paper: median < 3 m)",
        || fig8::run(Scale::from_env(), 42).render_fig8a(),
    );
}

//! Fig. 8(b): CDF of arrival-time prediction errors during rush hours.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig8;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 8(b)",
        "rush-hour prediction error CDF, WiLocator vs Transit Agency (paper max: 500 s vs 800 s)",
        || fig8::run(Scale::from_env(), 42).render_fig8b(),
    );
}

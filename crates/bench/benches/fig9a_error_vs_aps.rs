//! Fig. 9(a): positioning error vs the number of WiFi APs.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig9;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 9(a)",
        "mean positioning error vs number of APs (paper: slow decrease, 3.15 m -> 2.8 m)",
        || {
            let sweep = fig9::run_fig9a(Scale::from_env(), 3);
            fig9::render("Fig. 9(a): error vs number of WiFi APs", &sweep)
        },
    );
}

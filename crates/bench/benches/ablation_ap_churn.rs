//! Ablation: AP churn robustness (paper SSIII-B, "AP b is out of function").

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::ablation;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Ablation: AP churn",
        "stale SVD vs rebuilt SVD vs stale fingerprint database under AP churn",
        || ablation::render_churn(&ablation::ap_churn(Scale::from_env(), 11)),
    );
}

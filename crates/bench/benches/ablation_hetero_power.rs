//! Ablation: heterogeneous transmit power (true SVD vs Euclidean VD).

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::ablation;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Ablation: heterogeneous TX power",
        "cost of the server's homogeneous-propagation assumption as the true TX spread grows",
        || ablation::render_hetero(&ablation::hetero_power(Scale::from_env(), 11)),
    );
}

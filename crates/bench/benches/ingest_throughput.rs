//! Ingestion throughput: the sharded server against a replica of the old
//! single-global-lock design.
//!
//! The baseline reproduces the pre-shard hot path faithfully: one
//! `RwLock` over all buses plus the store, and a full
//! `segment_traversals` re-scan (with route and trajectory clones) on
//! every report. The sharded server commits incrementally from
//! `committed_upto` with no clones, and `ingest_batch` amortises lock
//! traffic over a whole chunk of reports.

use std::collections::HashMap;
use std::sync::RwLock;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wilocator_core::{
    segment_traversals, BusKey, BusTracker, ScanReport, TravelTimeStore, Traversal, WiLocator,
    WiLocatorConfig,
};
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};

const COMMIT_MARGIN_M: f64 = 30.0;

/// Two disjoint streets, one route each — the scene the sharded server
/// splits in two.
fn scene() -> (Vec<Route>, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let mut aps = Vec::new();
    let mut ap_id = 0u32;
    let mut per_street_edges = Vec::new();
    for y in [0.0f64, 900.0] {
        let mut prev = b.add_node(Point::new(0.0, y));
        let mut edges = Vec::new();
        for k in 1..=8 {
            let node = b.add_node(Point::new(k as f64 * 300.0, y));
            edges.push(b.add_edge(prev, node, None).expect("distinct"));
            prev = node;
        }
        let mut x = 30.0;
        while x < 2_400.0 {
            aps.push(AccessPoint::new(
                ApId(ap_id),
                Point::new(x, y + if ap_id.is_multiple_of(2) { 18.0 } else { -18.0 }),
            ));
            ap_id += 1;
            x += 55.0;
        }
        per_street_edges.push(edges);
    }
    let net = b.build();
    let routes = per_street_edges
        .into_iter()
        .enumerate()
        .map(|(i, edges)| {
            let mut r = Route::new(
                RouteId(i as u32),
                if i == 0 { "9" } else { "14" },
                edges,
                &net,
            )
            .expect("connected");
            r.add_stops_evenly(4);
            r
        })
        .collect();
    (routes, HomogeneousField::new(aps))
}

/// A day's worth of interleaved reports: `buses_per_route` buses per
/// route at staggered departures, scanning every 10 s at 8 m/s.
fn reports(routes: &[Route], field: &HomogeneousField, buses_per_route: usize) -> Vec<ScanReport> {
    let mut out = Vec::new();
    for (ri, route) in routes.iter().enumerate() {
        for b in 0..buses_per_route {
            let bus = (ri * buses_per_route + b) as u64;
            let t0 = b as f64 * 120.0;
            let mut t = t0;
            loop {
                let s = (t - t0) * 8.0;
                if s > route.length() {
                    break;
                }
                let p = route.point_at(s);
                let readings: Vec<Reading> = field
                    .detectable_at(p, -90.0)
                    .into_iter()
                    .map(|(ap, rss)| Reading {
                        ap,
                        bssid: Bssid::from_ap_id(ap),
                        rss_dbm: rss.round() as i32,
                    })
                    .collect();
                out.push(ScanReport {
                    bus: BusKey(bus),
                    time_s: t,
                    scans: vec![Scan::new(t, readings)],
                });
                t += 10.0;
            }
        }
    }
    out.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite"));
    out
}

struct BaselineBus {
    route: RouteId,
    tracker: BusTracker,
    committed_upto: usize,
}

#[derive(Default)]
struct BaselineState {
    buses: HashMap<BusKey, BaselineBus>,
    store: TravelTimeStore,
}

/// Replica of the old server: every route and bus behind one global lock,
/// with the old per-report full-trajectory commit scan.
struct GlobalLockServer {
    state: RwLock<BaselineState>,
}

impl GlobalLockServer {
    fn new(routes: &[Route], field: &HomogeneousField, buses_per_route: usize) -> Self {
        let config = WiLocatorConfig::default();
        let mut state = BaselineState::default();
        for (ri, route) in routes.iter().enumerate() {
            let index = wilocator_svd::RouteTileIndex::build(
                field,
                route,
                config.svd,
                config.sample_step_m,
            );
            let positioner =
                wilocator_svd::RoutePositioner::new(route.clone(), index, config.positioner);
            for b in 0..buses_per_route {
                let bus = (ri * buses_per_route + b) as u64;
                state.buses.insert(
                    BusKey(bus),
                    BaselineBus {
                        route: route.id(),
                        tracker: BusTracker::new(positioner.clone()),
                        committed_upto: 0,
                    },
                );
            }
        }
        GlobalLockServer {
            state: RwLock::new(state),
        }
    }

    fn ingest(&self, report: &ScanReport) {
        let mut st = self.state.write().expect("global lock");
        let bus = st.buses.get_mut(&report.bus).expect("registered");
        let Some(fix) = bus.tracker.ingest(report) else {
            return;
        };
        // The old hot path: clone route + trajectory, re-derive every
        // traversal, skip the already-committed prefix.
        let route = bus.tracker.route().clone();
        let route_id = bus.route;
        let fixes = bus.tracker.trajectory().fixes().to_vec();
        let mut committed_upto = bus.committed_upto;
        let mut new_records = Vec::new();
        for tr in segment_traversals(&route, &fixes) {
            if tr.edge_index < committed_upto {
                continue;
            }
            if route.edge_end_s(tr.edge_index) + COMMIT_MARGIN_M > fix.s {
                break;
            }
            new_records.push((route.edges()[tr.edge_index], tr));
            committed_upto = tr.edge_index + 1;
        }
        st.buses
            .get_mut(&report.bus)
            .expect("present")
            .committed_upto = committed_upto;
        for (edge, tr) in new_records {
            st.store.record(
                edge,
                Traversal {
                    route: route_id,
                    t_enter: tr.t_enter,
                    t_exit: tr.t_exit,
                },
            );
        }
    }
}

fn sharded_server(routes: &[Route], field: &HomogeneousField, buses_per_route: usize) -> WiLocator {
    sharded_server_with(routes, field, buses_per_route, WiLocatorConfig::default())
}

fn sharded_server_with(
    routes: &[Route],
    field: &HomogeneousField,
    buses_per_route: usize,
    config: WiLocatorConfig,
) -> WiLocator {
    let server = WiLocator::new(field, routes.to_vec(), config);
    for (ri, route) in routes.iter().enumerate() {
        for b in 0..buses_per_route {
            let bus = (ri * buses_per_route + b) as u64;
            server
                .register_bus(BusKey(bus), route.id())
                .expect("served route");
        }
    }
    server
}

fn bench_ingest_throughput(c: &mut Criterion) {
    const BUSES_PER_ROUTE: usize = 4;
    let (routes, field) = scene();
    let workload = reports(&routes, &field, BUSES_PER_ROUTE);
    let n = workload.len();
    println!("workload: {n} reports, 2 routes, {BUSES_PER_ROUTE} buses/route");

    c.bench_function("ingest_global_lock_baseline", |b| {
        b.iter_batched(
            || GlobalLockServer::new(&routes, &field, BUSES_PER_ROUTE),
            |server| {
                for report in &workload {
                    server.ingest(report);
                }
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("ingest_sharded_sequential", |b| {
        b.iter_batched(
            || sharded_server(&routes, &field, BUSES_PER_ROUTE),
            |server| {
                for report in &workload {
                    server.ingest(report).expect("registered");
                }
            },
            BatchSize::LargeInput,
        )
    });

    // The same replay with the flight recorder switched off isolates the
    // tracing cost from the rest of the instrumented hot path.
    let untraced = || {
        let mut config = WiLocatorConfig::default();
        config.trace.enabled = false;
        sharded_server_with(&routes, &field, BUSES_PER_ROUTE, config)
    };
    c.bench_function("ingest_sharded_sequential_untraced", |b| {
        b.iter_batched(
            untraced,
            |server| {
                for report in &workload {
                    server.ingest(report).expect("registered");
                }
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("ingest_sharded_batch64", |b| {
        b.iter_batched(
            || sharded_server(&routes, &field, BUSES_PER_ROUTE),
            |server| {
                for chunk in workload.chunks(64) {
                    for result in server.ingest_batch(chunk) {
                        result.expect("registered");
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    // One untimed replay to show what the instrumented hot path recorded —
    // the per-report accounting and the lock-hold distribution the
    // observability layer exists to expose.
    let server = sharded_server(&routes, &field, BUSES_PER_ROUTE);
    for chunk in workload.chunks(64) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered");
        }
    }
    let snapshot = server.metrics();
    println!("post-run metrics (one batch64 replay):");
    for family in [
        "wilocator_reports_total",
        "wilocator_fixes_total",
        "wilocator_traversals_committed_total",
        "svd_fix_exact_total",
        "svd_fix_dead_reckoned_total",
    ] {
        println!("  {family} = {}", snapshot.counter_family_total(family));
    }
    for shard in 0..2 {
        let key = format!("wilocator_shard_lock_hold_us{{shard=\"{shard}\"}}");
        if let Some(h) = snapshot.histogram(&key) {
            println!(
                "  {key}: count {}, p50 ~{} us, p99 ~{} us",
                h.count,
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
    }
}

criterion_group!(ingest_throughput, bench_ingest_throughput);
criterion_main!(ingest_throughput);

//! Table I: information of the four investigated bus routes.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::table1;

fn main() {
    run_experiment(
        "Table I",
        "route inventory: stops, lengths, overlapped lengths",
        || {
            let rows = table1::run(7);
            table1::render(&rows)
        },
    );
}

//! Fig. 9(b): positioning error vs the order of the SVD.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig9;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 9(b)",
        "mean positioning error vs SVD order (paper: no significant change; order 2 is enough)",
        || {
            let sweep = fig9::run_fig9b(Scale::from_env(), 3);
            fig9::render("Fig. 9(b): error vs SVD order", &sweep)
        },
    );
}

//! Fig. 10 / §V-B.1: campus drive-by positioning at locations A, B, C.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig10;

fn main() {
    run_experiment(
        "Fig. 10",
        "campus experiment (paper: 2 m error at each of A, B, C)",
        || fig10::render(&fig10::run(1)),
    );
}

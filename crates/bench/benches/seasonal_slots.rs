//! §V-B.2: seasonal index and the discovered time-slot structure.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::seasonal_slots;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Seasonal slots (§V-B.2)",
        "seasonal index over the day (paper: 5 slots discovered, rush 8-10 and 18-19)",
        || seasonal_slots::render(&seasonal_slots::run(Scale::from_env(), 23)),
    );
}

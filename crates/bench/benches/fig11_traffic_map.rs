//! Fig. 11: rush-hour traffic map generation + anomaly localisation.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig11;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 11",
        "traffic map during a rush-hour incident (paper: no covered segment unmarked; anomaly localised)",
        || fig11::render(&fig11::run(Scale::from_env(), 17)),
    );
}

//! Extension (§VII): hybrid WiFi/GPS tracking through a coverage gap.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::ablation;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Extension: hybrid WiFi/GPS",
        "adaptive GPS activation in WiFi coverage gaps (paper SSVII future work)",
        || ablation::render_hybrid(ablation::hybrid_gap(Scale::from_env(), 11)),
    );
}

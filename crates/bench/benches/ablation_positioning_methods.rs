//! Ablation: SVD vs every baseline positioning scheme.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::ablation;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Ablation: positioning methods",
        "SVD vs nearest-AP / fingerprint / trilateration / GPS / Cell-ID (paper SSII motivation)",
        || ablation::render_methods(&ablation::positioning_methods(Scale::from_env(), 11)),
    );
}

//! Criterion benchmarks for the performance-critical kernels:
//! SVD rasterisation, route tile-index construction, rank-lookup
//! positioning, and arrival prediction. These are the operations the
//! paper's back-end server runs continuously ("we shift the computation
//! burden to the server").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wilocator_core::{ArrivalPredictor, PredictorConfig, TravelTimeStore, Traversal};
use wilocator_geo::{BoundingBox, Point};
use wilocator_rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};
use wilocator_svd::{
    LocateScratch, PositionerConfig, RoutePositioner, RouteTileIndex, SignalVoronoiDiagram,
    SvdConfig,
};

fn street(len: f64) -> (Route, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let mut prev = n0;
    let mut edges = Vec::new();
    let n = (len / 250.0) as usize;
    for i in 1..=n {
        let node = b.add_node(Point::new(i as f64 * 250.0, 0.0));
        edges.push(b.add_edge(prev, node, None).expect("distinct"));
        prev = node;
    }
    let net = b.build();
    let route = Route::new(RouteId(0), "bench", edges, &net).expect("connected");
    let mut aps = Vec::new();
    let mut x = 25.0;
    let mut i = 0u32;
    while x < len {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
        ));
        i += 1;
        x += 55.0;
    }
    (route, HomogeneousField::new(aps))
}

fn bench_svd_raster(c: &mut Criterion) {
    let (_, field) = street(1_000.0);
    let bbox = BoundingBox::new(Point::new(0.0, -150.0), Point::new(1_000.0, 150.0));
    c.bench_function("svd_raster_1km_2m", |b| {
        b.iter(|| {
            SignalVoronoiDiagram::build(
                &field,
                bbox,
                SvdConfig {
                    resolution_m: 2.0,
                    ..SvdConfig::default()
                },
            )
        })
    });
}

fn bench_route_index(c: &mut Criterion) {
    let (route, field) = street(10_000.0);
    c.bench_function("route_tile_index_10km_2m", |b| {
        b.iter(|| RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0))
    });
}

fn bench_locate(c: &mut Criterion) {
    let (route, field) = street(10_000.0);
    let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0);
    let pos = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
    // Pre-compute ranked lists along the route.
    let ranked: Vec<Vec<(ApId, i32)>> = (0..100)
        .map(|i| {
            let p = route.point_at(i as f64 * 97.0);
            field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect()
        })
        .collect();
    c.bench_function("locate_100_scans", |b| {
        b.iter(|| {
            let mut last = None;
            for (i, r) in ranked.iter().enumerate() {
                last = pos.locate(r, i as f64 * 10.0, None);
            }
            last
        })
    });
    // The steady-state server shape: one scratch reused across the whole
    // scan stream, so the hot loop is allocation-free.
    c.bench_function("locate_100_scans_scratch", |b| {
        let mut scratch = LocateScratch::new();
        b.iter(|| {
            let mut last = None;
            for (i, r) in ranked.iter().enumerate() {
                last = pos.locate_with(&mut scratch, r, i as f64 * 10.0, None, None);
            }
            last
        })
    });
}

fn bench_churn_patch(c: &mut Criterion) {
    let (_, field) = street(1_000.0);
    let bbox = BoundingBox::new(Point::new(0.0, -150.0), Point::new(1_000.0, 150.0));
    let cfg = SvdConfig {
        resolution_m: 2.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    // One mid-street AP dies: the patch re-evaluates only the cells that
    // heard it, where a full rebuild re-rasters the whole bbox.
    let dead = ApId(9);
    let post = field.without_aps(&[dead]);
    c.bench_function("svd_churn_death_patch", |b| {
        b.iter_batched(
            || diagram.clone(),
            |mut d| {
                let touched = d.apply_churn(&post, &[dead]);
                (d, touched)
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_predict(c: &mut Criterion) {
    let (route, _) = street(10_000.0);
    let mut store = TravelTimeStore::new();
    for day in 0..7 {
        for hour in 6..22 {
            for (i, &edge) in route.edges().iter().enumerate() {
                let t0 = day as f64 * 86_400.0 + hour as f64 * 3_600.0 + i as f64 * 30.0;
                store.record(
                    edge,
                    Traversal {
                        route: RouteId(0),
                        t_enter: t0,
                        t_exit: t0 + 28.0 + (i % 5) as f64,
                    },
                );
            }
        }
    }
    let mut predictor = ArrivalPredictor::new(PredictorConfig::default());
    predictor.train(&store, 7.0 * 86_400.0);
    c.bench_function("predict_arrival_full_route", |b| {
        b.iter_batched(
            || (),
            |_| {
                predictor.predict_arrival(
                    &store,
                    &route,
                    120.0,
                    7.0 * 86_400.0 + 9.0 * 3_600.0,
                    9_800.0,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_svd_raster, bench_route_index, bench_locate, bench_churn_patch, bench_predict
}
criterion_main!(kernels);

//! Intro claim: real-time tracking and prediction cut rider waiting time.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::waiting_time;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Rider waiting time",
        "expected wait: uninformed vs agency vs WiLocator predictions (paper SSI motivation)",
        || waiting_time::render(&waiting_time::run(Scale::from_env(), 42)),
    );
}

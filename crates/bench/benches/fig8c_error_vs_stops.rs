//! Fig. 8(c): mean prediction error vs number of bus stops ahead.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::fig8;
use wilocator_eval::Scale;

fn main() {
    run_experiment(
        "Fig. 8(c)",
        "mean rush-hour prediction error vs stops ahead (paper: increasing, Rapid lowest, max 210 s)",
        || fig8::run(Scale::from_env(), 42).render_fig8c(),
    );
}

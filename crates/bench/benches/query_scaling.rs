//! Reader scaling on the query plane: N rider threads answering
//! arrivals/position/traffic queries from the epoch-published snapshot
//! while one writer thread keeps ingesting and republishing.
//!
//! This is the load shape the query plane was built for — queries
//! outnumber ingest by orders of magnitude (`RiderLoad` defaults to
//! 1000:1) — and the property under test is that readers never touch a
//! shard ingest lock: each query is one epoch load, one slot `RwLock`
//! read, one `Arc` clone, then JSON rendering off the immutable
//! snapshot. Throughput should therefore scale near-linearly with
//! reader threads, writer or no writer.
//!
//! Run with `cargo bench --bench query_scaling`; the table feeds
//! EXPERIMENTS.md.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wilocator_core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator_road::{RouteId, Schedule};
use wilocator_serve::{respond, Request};
use wilocator_sim::{
    simple_street, simulate, CityConfig, LoadPlan, RiderLoad, SimulationConfig, TrafficConfig,
    TrafficModel,
};

const QUERIES_PER_READER: u64 = 50_000;
const READER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One simulated morning on a single street, plus the rider load that
/// would ride on it.
fn scenario() -> (Arc<WiLocator>, LoadPlan, RiderLoad) {
    let city = simple_street(2_400.0, 8, 1, &CityConfig::default());
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 5);
    let mut schedule = Schedule::new();
    schedule.add_headway_service(RouteId(0), 8.0 * 3_600.0, 9.5 * 3_600.0, 900.0);
    let config = SimulationConfig {
        days: 1,
        seed: 5,
        ..SimulationConfig::default()
    };
    let dataset = simulate(&city, &schedule, &traffic, &config);
    let plan = LoadPlan::for_day(&dataset, 0);
    let riders = RiderLoad::new(&plan, &city.routes, 1_000, 5);
    let server = Arc::new(WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    ));
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    (server, plan, riders)
}

fn to_report(plan: &LoadPlan, i: usize, day: u64) -> ScanReport {
    let event = &plan.events[i];
    ScanReport {
        bus: BusKey(event.trip_id as u64),
        time_s: event.time_s + day as f64 * 86_400.0,
        scans: event.scans.clone(),
    }
}

/// A pre-parsed GET for a rider query target.
fn request_for(target: String) -> Request {
    Request {
        method: "GET".to_string(),
        target,
        http11: true,
        headers: Vec::new(),
        keep_alive: true,
    }
}

/// Runs `readers` query threads to completion, with or without a
/// concurrent ingest writer. Returns (wall_seconds, queries_done).
fn run(
    server: &Arc<WiLocator>,
    riders: &RiderLoad,
    plan: &LoadPlan,
    readers: usize,
    with_writer: bool,
) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        if with_writer {
            let server = Arc::clone(server);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                // Cycle the day (time-shifted per pass) in 32-report
                // batches; every batch republishes the snapshot.
                let mut day = 0u64;
                'outer: loop {
                    let reports: Vec<ScanReport> = (0..plan.events.len())
                        .map(|i| to_report(plan, i, day))
                        .collect();
                    for chunk in reports.chunks(32) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        for result in server.ingest_batch(chunk) {
                            let _ = result;
                        }
                    }
                    day += 1;
                }
            });
        }
        for reader in 0..readers {
            let server = Arc::clone(server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let base = reader as u64 * QUERIES_PER_READER;
                let mut checksum = 0usize;
                for i in 0..QUERIES_PER_READER {
                    let op = riders.op((base + i) % riders.len().max(1));
                    let request = request_for(op.target());
                    let response = respond(&server, &request);
                    checksum += response.body.len();
                }
                assert!(checksum > 0, "responses rendered");
                done.fetch_add(QUERIES_PER_READER, Ordering::Relaxed);
            });
        }
        // Writer stops once every reader thread has finished.
        while done.load(Ordering::Relaxed) < (readers as u64) * QUERIES_PER_READER {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });
    (
        start.elapsed().as_secs_f64(),
        (readers as u64) * QUERIES_PER_READER,
    )
}

fn main() {
    let (server, plan, riders) = scenario();
    // Seed the snapshot with real state: replay the day once, train,
    // and publish, so queries render non-trivial bodies.
    for chunk_start in (0..plan.events.len()).step_by(32) {
        let chunk: Vec<ScanReport> = (chunk_start..(chunk_start + 32).min(plan.events.len()))
            .map(|i| to_report(&plan, i, 0))
            .collect();
        for result in server.ingest_batch(&chunk) {
            result.expect("registered bus");
        }
    }
    server.train(10.0 * 3_600.0);
    println!(
        "scene: {} ingest events, {} rider queries addressable, snapshot epoch {}",
        plan.events.len(),
        riders.len(),
        server.snapshot_epoch()
    );

    for with_writer in [false, true] {
        println!(
            "\nquery throughput, {} ({} queries/reader):",
            if with_writer {
                "with concurrent ingest writer"
            } else {
                "readers only"
            },
            QUERIES_PER_READER
        );
        println!(
            "{:>8} {:>12} {:>12} {:>9}",
            "readers", "total qps", "qps/reader", "speedup"
        );
        let mut base_qps = 0.0f64;
        for &readers in READER_COUNTS.iter() {
            let (secs, queries) = run(&server, &riders, &plan, readers, with_writer);
            let qps = queries as f64 / secs;
            if readers == 1 {
                base_qps = qps;
            }
            println!(
                "{readers:>8} {qps:>12.0} {:>12.0} {:>8.2}x",
                qps / readers as f64,
                qps / base_qps.max(1.0)
            );
        }
    }
    let snapshot = server.metrics();
    println!("\nquery-plane counters after the run:");
    for family in [
        "wilocator_queries_total",
        "wilocator_snapshot_publish_total",
        "wilocator_query_not_found_total",
        "wilocator_query_bad_request_total",
    ] {
        println!("  {family} = {}", snapshot.counter_family_total(family));
    }
}

//! Table II: measured RSSI from surrounding APs at campus locations A–C.

use wilocator_bench::run_experiment;
use wilocator_eval::experiments::table2;

fn main() {
    run_experiment(
        "Table II",
        "campus RSSI lists at probe locations A, B, C",
        || {
            let rows = table2::run(1);
            table2::render(&rows)
        },
    );
}

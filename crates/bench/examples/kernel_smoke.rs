//! CI bench-regression guard for the flat positioning kernels.
//!
//! Runs the fix kernel (100 rank-vector lookups), the full 1 km SVD
//! raster, and the incremental churn patch with plain `Instant` timing
//! (criterion is too slow and too statistical for a CI smoke), then
//! compares against the checked-in baseline:
//!
//! ```text
//! cargo run --release -p wilocator-bench --example kernel_smoke -- --check
//! cargo run --release -p wilocator-bench --example kernel_smoke -- --bless
//! ```
//!
//! `--check` exits non-zero when any kernel is more than [`TOLERANCE`]×
//! slower than its baseline — deliberately loose, because CI runs on
//! noisy shared single-core containers; the goal is catching
//! order-of-magnitude regressions (an accidental `clone` in the hot
//! loop, a map probe reintroduced), not 10% drift. Methodology notes
//! live in `EXPERIMENTS.md`.

use std::time::Instant;

use wilocator_geo::{BoundingBox, Point};
use wilocator_rf::{AccessPoint, ApId, HomogeneousField, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};
use wilocator_svd::{
    PositionerConfig, RoutePositioner, RouteTileIndex, SignalVoronoiDiagram, SvdConfig,
};

/// Maximum tolerated slowdown vs. the blessed baseline.
const TOLERANCE: f64 = 2.0;

/// Names must stay aligned with the criterion rows in `perf_kernels.rs`
/// so EXPERIMENTS.md rows and smoke rows are directly comparable.
const KERNELS: [&str; 3] = [
    "locate_100_scans",
    "svd_raster_1km_2m",
    "svd_churn_death_patch",
];

fn street(len: f64) -> (Route, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let mut prev = n0;
    let mut edges = Vec::new();
    let n = (len / 250.0) as usize;
    for i in 1..=n {
        let node = b.add_node(Point::new(i as f64 * 250.0, 0.0));
        edges.push(b.add_edge(prev, node, None).expect("distinct"));
        prev = node;
    }
    let net = b.build();
    let route = Route::new(RouteId(0), "smoke", edges, &net).expect("connected");
    let mut aps = Vec::new();
    let mut x = 25.0;
    let mut i = 0u32;
    while x < len {
        aps.push(AccessPoint::new(
            ApId(i),
            Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
        ));
        i += 1;
        x += 55.0;
    }
    (route, HomogeneousField::new(aps))
}

/// Best-of-`reps` wall time of `body` run `inner` times, in ns per run.
fn time_ns(reps: usize, inner: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            body();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / inner as f64);
    }
    best
}

fn measure() -> Vec<(&'static str, f64)> {
    let mut rows = Vec::new();

    // Fix kernel: 100 lookups along a 10 km street.
    let (route, field) = street(10_000.0);
    let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 2.0);
    let pos = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
    let ranked: Vec<Vec<(ApId, i32)>> = (0..100)
        .map(|i| {
            let p = route.point_at(i as f64 * 97.0);
            field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| (ap, rss.round() as i32))
                .collect()
        })
        .collect();
    rows.push((
        "locate_100_scans",
        time_ns(5, 200, || {
            for (i, r) in ranked.iter().enumerate() {
                std::hint::black_box(pos.locate(r, i as f64 * 10.0, None));
            }
        }),
    ));

    // Full raster of a 1 km strip at 2 m.
    let (_, field) = street(1_000.0);
    let bbox = BoundingBox::new(Point::new(0.0, -150.0), Point::new(1_000.0, 150.0));
    let cfg = SvdConfig {
        resolution_m: 2.0,
        ..SvdConfig::default()
    };
    rows.push((
        "svd_raster_1km_2m",
        time_ns(3, 3, || {
            std::hint::black_box(SignalVoronoiDiagram::build(&field, bbox, cfg));
        }),
    ));

    // Incremental patch after one AP death on the same strip.
    let diagram = SignalVoronoiDiagram::build(&field, bbox, cfg);
    let dead = ApId(9);
    let post = field.without_aps(&[dead]);
    rows.push((
        "svd_churn_death_patch",
        time_ns(3, 10, || {
            let mut d = diagram.clone();
            std::hint::black_box(d.apply_churn(&post, &[dead]));
        }),
    ));
    rows
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("kernel_baseline.json")
}

fn render_json(rows: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, ns)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("  \"{name}\": {:.0}{comma}\n", ns));
    }
    out.push_str("}\n");
    out
}

/// Reads `"name": <number>` out of the baseline file. Deliberately tiny:
/// the file is machine-written by `--bless` with exactly that shape, and
/// a parse failure is a hard error (a smoke that silently passes on a
/// corrupt baseline guards nothing).
fn parse_baseline(text: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let rest = &text[text.find(&key)? + key.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = measure();
    match args.first().map(String::as_str) {
        Some("--bless") => {
            let path = baseline_path();
            std::fs::write(&path, render_json(&rows)).expect("write baseline");
            println!("blessed {}:", path.display());
            for (name, ns) in &rows {
                println!("  {name:<24} {:>12.0} ns", ns);
            }
        }
        Some("--check") => {
            let path = baseline_path();
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing baseline {} ({e}) — bless it with --bless",
                    path.display()
                )
            });
            let mut failed = false;
            for name in KERNELS {
                let now = rows
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, ns)| ns)
                    .expect("kernel measured");
                let base = parse_baseline(&text, name)
                    .unwrap_or_else(|| panic!("baseline missing row {name} — re-bless"));
                let ratio = now / base;
                let verdict = if ratio > TOLERANCE { "FAIL" } else { "ok" };
                println!(
                    "{name:<24} {now:>12.0} ns  baseline {base:>12.0} ns  x{ratio:.2}  {verdict}"
                );
                failed |= ratio > TOLERANCE;
            }
            if failed {
                eprintln!(
                    "kernel regression: >{}x slower than baselines/kernel_baseline.json \
                     — investigate, or re-bless with --bless if intentional",
                    TOLERANCE
                );
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("usage: kernel_smoke --check | --bless (got {other:?})");
            std::process::exit(2);
        }
    }
}

//! CI gate for the quality plane's ingest overhead.
//!
//! Replays the same report stream into two otherwise-identical sharded
//! servers — quality plane enabled (ledger, residual sketches, drift
//! detectors) vs. disabled (every hook an early return, the PR 8 hot
//! path) — and compares wall time:
//!
//! ```text
//! cargo run --release -p wilocator-bench --example ingest_overhead -- --check
//! ```
//!
//! `--check` exits non-zero when the enabled arm's *ingest* path is
//! more than [`MAX_OVERHEAD`] slower than the disabled one. The two
//! arms run interleaved, best-of-[`REPS`], in one process on one core,
//! so the comparison is relative and largely immune to the
//! absolute-speed noise of shared CI containers.
//!
//! Both arms publish a snapshot every [`PUBLISH_EVERY`] reports, so the
//! ledger is live (issuances create the pending entries the ingest-path
//! confirmation hook then settles), but publication itself is timed
//! separately and reported as µs/publish rather than gated: its cost is
//! paid per publication cadence, not per report, so folding it into a
//! per-report gate would overprice it by whatever ratio the bench's
//! cadence differs from a deployment's.

use std::time::Instant;

use wilocator_core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
use wilocator_road::{NetworkBuilder, Route, RouteId};

/// Maximum tolerated quality-plane overhead on the ingest path.
const MAX_OVERHEAD: f64 = 0.05;
/// Interleaved off/on pairs. The gate scores the lower of two
/// estimators — best-on over best-off, and the median per-pair ratio —
/// because machine noise biases each of them *upward* (it can only add
/// time), while a real regression inflates both consistently. Sized so
/// a noise burst rarely covers every pair.
const REPS: usize = 12;
/// Snapshot publication cadence, in reports.
const PUBLISH_EVERY: usize = 2048;
/// Measurement attempts in `--check` mode. Noise on a shared CI core
/// can only *inflate* an attempt's estimate, so the gate passes if any
/// attempt lands under [`MAX_OVERHEAD`]; a real regression fails all
/// of them.
const ATTEMPTS: usize = 3;

/// One 2.4 km street, one route, APs every 55 m — the kernel-smoke
/// scene shape, sized so a replay takes tens of milliseconds.
fn scene() -> (Vec<Route>, HomogeneousField) {
    let mut b = NetworkBuilder::new();
    let mut prev = b.add_node(Point::new(0.0, 0.0));
    let mut edges = Vec::new();
    for k in 1..=8 {
        let node = b.add_node(Point::new(k as f64 * 300.0, 0.0));
        edges.push(b.add_edge(prev, node, None).expect("distinct"));
        prev = node;
    }
    let net = b.build();
    let mut route = Route::new(RouteId(0), "9", edges, &net).expect("connected");
    route.add_stops_evenly(4);
    let mut aps = Vec::new();
    let mut x = 30.0;
    let mut id = 0u32;
    while x < 2_400.0 {
        aps.push(AccessPoint::new(
            ApId(id),
            Point::new(x, if id.is_multiple_of(2) { 18.0 } else { -18.0 }),
        ));
        id += 1;
        x += 55.0;
    }
    (vec![route], HomogeneousField::new(aps))
}

/// Staggered buses scanning every 10 s at 8 m/s (the canonical
/// `ingest_throughput` cadence), time-sorted.
fn reports(routes: &[Route], field: &HomogeneousField, buses: usize) -> Vec<ScanReport> {
    let route = &routes[0];
    let mut out = Vec::new();
    for bus in 0..buses {
        let t0 = bus as f64 * 120.0;
        let mut t = t0;
        loop {
            let s = (t - t0) * 8.0;
            if s > route.length() {
                break;
            }
            let p = route.point_at(s);
            let readings: Vec<Reading> = field
                .detectable_at(p, -90.0)
                .into_iter()
                .map(|(ap, rss)| Reading {
                    ap,
                    bssid: Bssid::from_ap_id(ap),
                    rss_dbm: rss.round() as i32,
                })
                .collect();
            out.push(ScanReport {
                bus: BusKey(bus as u64),
                time_s: t,
                scans: vec![Scan::new(t, readings)],
            });
            t += 10.0;
        }
    }
    out.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite"));
    out
}

fn server(routes: &[Route], field: &HomogeneousField, buses: usize, quality: bool) -> WiLocator {
    let mut config = WiLocatorConfig::default();
    config.quality.enabled = quality;
    let server = WiLocator::new(field, routes.to_vec(), config);
    for bus in 0..buses {
        server
            .register_bus(BusKey(bus as u64), routes[0].id())
            .expect("served route");
    }
    server
}

/// One replay: every report ingested (timed), a snapshot published
/// every `PUBLISH_EVERY` reports and once at the end (timed apart).
/// Returns `(ingest_s, publish_s, publishes)`.
fn replay(server: &WiLocator, workload: &[ScanReport]) -> (f64, f64, usize) {
    let mut ingest_s = 0.0;
    let mut publish_s = 0.0;
    let mut publishes = 0usize;
    for chunk in workload.chunks(PUBLISH_EVERY) {
        let t = Instant::now();
        for report in chunk {
            server.ingest(report).expect("registered");
        }
        ingest_s += t.elapsed().as_secs_f64();
        let last_t = chunk.last().expect("non-empty chunk").time_s;
        let t = Instant::now();
        server.publish_snapshot(last_t);
        publish_s += t.elapsed().as_secs_f64();
        publishes += 1;
    }
    (ingest_s, publish_s, publishes)
}

/// One full measurement: REPS interleaved off/on pairs, scored by the
/// lower of the two upward-biased estimators.
fn measure(
    routes: &[Route],
    field: &HomogeneousField,
    buses: usize,
    workload: &[ScanReport],
) -> f64 {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let (mut pub_off, mut pub_on) = (f64::INFINITY, f64::INFINITY);
    let mut publishes = 0usize;
    let mut ratios = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let (off, p, n) = replay(&server(routes, field, buses, false), workload);
        best_off = best_off.min(off);
        pub_off = pub_off.min(p);
        publishes = n;
        let (on, p, _) = replay(&server(routes, field, buses, true), workload);
        best_on = best_on.min(on);
        pub_on = pub_on.min(p);
        ratios.push(on / off);
    }
    ratios.sort_by(f64::total_cmp);

    let of_mins = best_on / best_off - 1.0;
    let of_pairs = ratios[ratios.len() / 2] - 1.0;
    let overhead = of_mins.min(of_pairs);
    println!(
        "ingest, quality off: {:.2} ms  ({:.0} reports/s)",
        best_off * 1e3,
        workload.len() as f64 / best_off
    );
    println!(
        "ingest, quality on:  {:.2} ms  ({:.0} reports/s)",
        best_on * 1e3,
        workload.len() as f64 / best_on
    );
    println!(
        "publish ({publishes}x): {:.1} us each off, {:.1} us each on (not gated; amortised per cadence)",
        pub_off * 1e6 / publishes as f64,
        pub_on * 1e6 / publishes as f64
    );
    println!(
        "ingest overhead: {:+.2}% (best-of: {:+.2}%, median of {} pairs: {:+.2}%, gate: {:.0}%)",
        overhead * 100.0,
        of_mins * 100.0,
        ratios.len(),
        of_pairs * 100.0,
        MAX_OVERHEAD * 100.0
    );
    overhead
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    const BUSES: usize = 256;
    let (routes, field) = scene();
    let workload = reports(&routes, &field, BUSES);
    println!(
        "workload: {} reports, 1 route, {BUSES} buses, publish every {PUBLISH_EVERY}",
        workload.len()
    );

    // Warm-up replay (page-cache, allocator, branch predictors) on a
    // throwaway server.
    replay(&server(&routes, &field, BUSES, true), &workload);
    let attempts = if check { ATTEMPTS } else { 1 };
    let mut overhead = f64::INFINITY;
    for attempt in 1..=attempts {
        overhead = measure(&routes, &field, BUSES, &workload);
        if overhead <= MAX_OVERHEAD {
            break;
        }
        if attempt < attempts {
            println!("attempt {attempt}/{attempts} over the gate; remeasuring");
        }
    }

    if check && overhead > MAX_OVERHEAD {
        eprintln!(
            "FAIL: quality-plane ingest overhead {:.2}% exceeds {:.0}% in {ATTEMPTS} attempts",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    if check {
        println!("ingest_overhead: ok");
    }
}

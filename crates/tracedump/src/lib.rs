//! `wilocator-tracedump`: offline analyzer for the flight recorder's
//! Chrome trace-event JSON export.
//!
//! The server's [`Tracer`](https://ui.perfetto.dev)-loadable export is a
//! flat list of complete (`"ph":"X"`) events — one per span, `pid` =
//! shard, `tid` = trace id, `ts`/`dur` in microseconds, structured span
//! fields under `args`. This crate parses that export with a small
//! hand-rolled JSON reader (the workspace vendors no serde), validates
//! the event schema and span nesting, and renders the analyses the
//! on-call workflows need: top-K slowest spans, per-stage and per-route
//! latency breakdowns, and an anomaly summary.
//!
//! Run it as `cargo run -p wilocator-tracedump -- trace.json [--top K]`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object keys keep their input order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry the byte offset they were
/// detected at.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid token at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("non-utf8 number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| format!("unterminated escape at byte {start}"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (the export is valid UTF-8).
                let len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid utf-8 at byte {pos}", pos = *pos))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        out.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-event schema
// ---------------------------------------------------------------------------

/// One complete span event from the export.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: String,
    pub ph: String,
    /// Start, microseconds on the recorder's clock.
    pub ts: u64,
    /// Duration, microseconds.
    pub dur: u64,
    /// Shard index.
    pub pid: u64,
    /// Trace id.
    pub tid: u64,
    /// Structured span fields (`args`), in export order.
    pub args: Vec<(String, Json)>,
}

impl Event {
    pub fn arg(&self, key: &str) -> Option<&Json> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn end(&self) -> u64 {
        self.ts.saturating_add(self.dur)
    }
}

/// The Chrome trace-event keys every exported span must carry.
pub const REQUIRED_KEYS: [&str; 5] = ["ph", "ts", "pid", "tid", "name"];

/// Parses and schema-checks a whole export: the document must be an
/// object with a `traceEvents` array, and every event must carry the
/// [`REQUIRED_KEYS`] with the right types (`ph` is `"X"` — the recorder
/// only emits complete events).
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("document has no `traceEvents` member")?;
    let Json::Arr(items) = events else {
        return Err("`traceEvents` is not an array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        for key in REQUIRED_KEYS {
            if item.get(key).is_none() {
                return Err(format!("event {i} is missing required key `{key}`"));
            }
        }
        let field_str = |key: &str| -> Result<String, String> {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: `{key}` is not a string"))
        };
        let field_u64 = |key: &str| -> Result<u64, String> {
            item.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: `{key}` is not a non-negative integer"))
        };
        let ph = field_str("ph")?;
        if ph != "X" {
            return Err(format!("event {i}: phase `{ph}` is not a complete event"));
        }
        let args = match item.get("args") {
            Some(Json::Obj(members)) => members.clone(),
            Some(_) => return Err(format!("event {i}: `args` is not an object")),
            None => Vec::new(),
        };
        out.push(Event {
            name: field_str("name")?,
            ph,
            ts: field_u64("ts")?,
            dur: item.get("dur").and_then(Json::as_u64).unwrap_or(0),
            pid: field_u64("pid")?,
            tid: field_u64("tid")?,
            args,
        });
    }
    Ok(out)
}

/// Checks that the spans of every trace (`tid` group) nest: sorted by
/// start (longest first on ties), each span must sit entirely inside the
/// enclosing open span. A span that straddles its parent's end means the
/// recorder emitted a malformed tree. Spans that merely *touch* (one
/// starts in the microsecond the previous ended — routine at µs
/// resolution) count as disjoint siblings, not as nested.
pub fn validate_nesting(events: &[Event]) -> Result<(), String> {
    let mut by_tid: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        by_tid.entry(ev.tid).or_default().push(ev);
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.dur.cmp(&a.dur)));
        let mut stack: Vec<&Event> = Vec::new();
        for ev in spans {
            while stack
                .last()
                .is_some_and(|top| top.end() <= ev.ts && !(top.ts == ev.ts && ev.dur == 0))
            {
                stack.pop();
            }
            if let Some(top) = stack.last() {
                if ev.end() > top.end() {
                    return Err(format!(
                        "trace {tid}: span `{}` [{}, {}] straddles `{}` [{}, {}]",
                        ev.name,
                        ev.ts,
                        ev.end(),
                        top.name,
                        top.ts,
                        top.end()
                    ));
                }
            }
            stack.push(ev);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------------

/// Aggregated latency of one group (a stage name or a route).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStats {
    pub key: String,
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

impl GroupStats {
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

fn aggregate<'e>(events: impl IntoIterator<Item = (&'e Event, String)>) -> Vec<GroupStats> {
    let mut groups: BTreeMap<String, GroupStats> = BTreeMap::new();
    for (ev, key) in events {
        let entry = groups.entry(key.clone()).or_insert(GroupStats {
            key,
            count: 0,
            total_us: 0,
            max_us: 0,
        });
        entry.count += 1;
        entry.total_us = entry.total_us.saturating_add(ev.dur);
        entry.max_us = entry.max_us.max(ev.dur);
    }
    let mut out: Vec<GroupStats> = groups.into_values().collect();
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.key.cmp(&b.key)));
    out
}

/// Per-stage latency breakdown: every span grouped by name, sorted by
/// total time descending.
pub fn stage_breakdown(events: &[Event]) -> Vec<GroupStats> {
    aggregate(events.iter().map(|e| (e, e.name.clone())))
}

/// Per-route latency breakdown over root `ingest` spans (the only spans
/// stamped with a `route` arg), keyed `R<id>`.
pub fn route_breakdown(events: &[Event]) -> Vec<GroupStats> {
    aggregate(events.iter().filter_map(|e| {
        let route = e.arg("route")?.as_u64()?;
        Some((e, format!("R{route}")))
    }))
}

/// The `k` slowest spans, duration descending (ties break toward earlier
/// start, then lower trace id, so output is stable).
pub fn top_slowest(events: &[Event], k: usize) -> Vec<&Event> {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by(|a, b| {
        b.dur
            .cmp(&a.dur)
            .then(a.ts.cmp(&b.ts))
            .then(a.tid.cmp(&b.tid))
    });
    sorted.truncate(k);
    sorted
}

/// Anomaly kinds and how many retained traces carry each, sorted by
/// count descending then kind.
pub fn anomaly_summary(events: &[Event]) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        if let Some(kind) = ev.arg("anomaly").and_then(Json::as_str) {
            *counts.entry(kind.to_string()).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(String, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// The full text report the CLI prints.
pub fn render_report(events: &[Event], top_k: usize) -> String {
    let traces: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tracedump: {} spans across {} traces",
        events.len(),
        traces.len()
    );

    let _ = writeln!(out, "\ntop {top_k} slowest spans");
    let _ = writeln!(
        out,
        "  {:>9}  {:<16} {:>6} {:>8}",
        "dur_us", "name", "shard", "trace"
    );
    for ev in top_slowest(events, top_k) {
        let _ = writeln!(
            out,
            "  {:>9}  {:<16} {:>6} {:>8}",
            ev.dur, ev.name, ev.pid, ev.tid
        );
    }

    let _ = writeln!(out, "\nper-stage latency");
    let _ = writeln!(
        out,
        "  {:<16} {:>7} {:>10} {:>10} {:>9}",
        "stage", "count", "total_us", "mean_us", "max_us"
    );
    for g in stage_breakdown(events) {
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>10} {:>10.1} {:>9}",
            g.key,
            g.count,
            g.total_us,
            g.mean_us(),
            g.max_us
        );
    }

    let routes = route_breakdown(events);
    if !routes.is_empty() {
        let _ = writeln!(out, "\nper-route ingest latency");
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>10} {:>10} {:>9}",
            "route", "count", "total_us", "mean_us", "max_us"
        );
        for g in routes {
            let _ = writeln!(
                out,
                "  {:<16} {:>7} {:>10} {:>10.1} {:>9}",
                g.key,
                g.count,
                g.total_us,
                g.mean_us(),
                g.max_us
            );
        }
    }

    let anomalies = anomaly_summary(events);
    let _ = writeln!(out, "\nanomalies");
    if anomalies.is_empty() {
        let _ = writeln!(out, "  none recorded");
    }
    for (kind, n) in anomalies {
        let _ = writeln!(out, "  {kind:<24} {n:>5}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"displayTimeUnit":"ms","traceEvents":[
        {"name":"ingest","cat":"wilocator","ph":"X","ts":0,"dur":10,"pid":0,"tid":1,
         "args":{"bus":7,"route":0,"outcome":"fix"}},
        {"name":"track","cat":"wilocator","ph":"X","ts":1,"dur":8,"pid":0,"tid":1,
         "args":{"parent":0}},
        {"name":"ingest","cat":"wilocator","ph":"X","ts":20,"dur":4,"pid":0,"tid":2,
         "args":{"bus":9,"anomaly":"unknown_bus"}}
    ]}"#;

    #[test]
    fn parses_sample_and_validates_schema() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "ingest");
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[1].arg("parent").and_then(Json::as_u64), Some(0));
        validate_nesting(&events).expect("sample nests");
    }

    #[test]
    fn missing_required_key_is_rejected() {
        for key in REQUIRED_KEYS {
            let doc = parse_json(SAMPLE).expect("sample is json");
            // Re-render the doc with `key` dropped from the first event.
            let Json::Obj(mut members) = doc else {
                panic!("sample root is an object")
            };
            let Some((_, Json::Arr(events))) = members.iter_mut().find(|(k, _)| k == "traceEvents")
            else {
                panic!("sample has traceEvents")
            };
            let Json::Obj(first) = &mut events[0] else {
                panic!("event is an object")
            };
            first.retain(|(k, _)| k != key);
            let text = render_json(&Json::Obj(members));
            let err = parse_trace(&text).expect_err("schema check fires");
            assert!(err.contains(key), "error `{err}` names `{key}`");
        }
    }

    /// Test-only JSON renderer, just enough to re-serialize the sample.
    fn render_json(v: &Json) -> String {
        match v {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => format!("{s:?}"),
            Json::Arr(items) => format!(
                "[{}]",
                items.iter().map(render_json).collect::<Vec<_>>().join(",")
            ),
            Json::Obj(members) => format!(
                "{{{}}}",
                members
                    .iter()
                    .map(|(k, v)| format!("{k:?}:{}", render_json(v)))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }
    }

    #[test]
    fn straddling_span_fails_nesting() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}
        ]}"#;
        let events = parse_trace(text).expect("parses");
        assert!(validate_nesting(&events).is_err());
    }

    #[test]
    fn analyses_aggregate_and_rank() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        let stages = stage_breakdown(&events);
        assert_eq!(stages[0].key, "ingest");
        assert_eq!(stages[0].count, 2);
        assert_eq!(stages[0].total_us, 14);
        let routes = route_breakdown(&events);
        assert_eq!(
            routes,
            vec![GroupStats {
                key: "R0".to_string(),
                count: 1,
                total_us: 10,
                max_us: 10,
            }]
        );
        let top = top_slowest(&events, 2);
        assert_eq!(top[0].name, "ingest");
        assert_eq!(top[0].dur, 10);
        assert_eq!(top[1].name, "track");
        assert_eq!(
            anomaly_summary(&events),
            vec![("unknown_bus".to_string(), 1)]
        );
        let report = render_report(&events, 2);
        assert!(report.contains("3 spans across 2 traces"));
        assert!(report.contains("unknown_bus"));
        assert!(report.contains("per-route ingest latency"));
    }

    #[test]
    fn json_escapes_round_trip() {
        let text = r#"{"traceEvents":[
            {"name":"say \"hi\"\n\\","ph":"X","ts":1,"pid":0,"tid":1}
        ]}"#;
        let events = parse_trace(text).expect("parses");
        assert_eq!(events[0].name, "say \"hi\"\n\\");
        assert_eq!(events[0].dur, 0, "missing dur defaults to zero-width");
    }

    /// End-to-end against the real recorder: build a trace with the
    /// vendored obs crate, export, parse, and validate the schema the
    /// ISSUE pins (`ph`/`ts`/`pid`/`tid`/`name`) plus nesting.
    #[test]
    fn real_tracer_export_parses_and_nests() {
        use std::sync::Arc;
        use wilocator_obs::{SteppingClock, TraceConfig, Tracer};

        let tracer = Tracer::new(
            TraceConfig::default(),
            2,
            Arc::new(SteppingClock::new(0, 3)),
        );
        {
            let ctx = tracer.start_root_span(1, "ingest").expect("enabled");
            ctx.field("bus", 42u64);
            ctx.field("route", 0u64);
            {
                let span = ctx.child_span("track");
                span.field("ranked_aps", 5u64);
            }
            ctx.flag_anomaly("dead_reckoned");
        }
        let json = tracer.chrome_trace_json();
        let events = parse_trace(&json).expect("recorder export parses");
        assert_eq!(events.len(), 2);
        validate_nesting(&events).expect("recorder export nests");
        assert!(events.iter().all(|e| e.ph == "X" && e.pid == 1));
        let root = events.iter().find(|e| e.name == "ingest").expect("root");
        assert_eq!(
            root.arg("anomaly").and_then(Json::as_str),
            Some("dead_reckoned")
        );
        assert_eq!(root.arg("bus").and_then(Json::as_u64), Some(42));
        let report = render_report(&events, 5);
        assert!(report.contains("dead_reckoned"));
    }
}

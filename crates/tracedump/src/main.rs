//! `tracedump`: print the slowest stages, per-route latency breakdowns
//! and anomaly summary of a flight-recorder export.
//!
//! ```text
//! tracedump <trace.json> [--top K]
//! ```

use std::process::ExitCode;

use wilocator_tracedump::{parse_trace, render_report, validate_nesting};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut top_k = 10usize;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(k)) => top_k = k,
                _ => return usage("--top takes an integer"),
            },
            "--help" | "-h" => return usage(""),
            _ if path.is_none() => path = Some(arg),
            _ => return usage("more than one input file"),
        }
    }
    let Some(path) = path else {
        return usage("no input file");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracedump: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_trace(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("tracedump: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_nesting(&events) {
        eprintln!("tracedump: {path}: malformed span tree: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", render_report(&events, top_k));
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("tracedump: {problem}");
    }
    eprintln!("usage: tracedump <trace.json> [--top K]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

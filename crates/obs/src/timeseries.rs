//! Windowed time-series over the metric ledgers: fixed-memory rings of
//! per-window aggregates, rotated deterministically on the injectable
//! [`Clock`].
//!
//! The scrape model ([`crate::MetricsSnapshot`]) answers "how much has
//! ever happened"; dashboards and drift detectors need "how much
//! happened *lately*". [`TimeSeries`] closes that gap without a
//! time-series database: the caller samples a metrics snapshot
//! periodically (the WiLocator server samples at every snapshot
//! publication), and the series splits each tracked family's cumulative
//! value into per-window deltas:
//!
//! * **counter** families → per-window delta and rate (events/s),
//! * **gauge** families → last sampled value per window,
//! * **histogram** families → per-window [`HistogramSnapshot`] deltas,
//!   from which p50/p90/p99 are extracted via the log-bucket
//!   [`HistogramSnapshot::quantile`].
//!
//! # Memory bound
//!
//! Each tracked family holds at most `windows` completed windows plus
//! the open one — counters/gauges one word per window, histograms one
//! [`HistogramSnapshot`] (34 words) per window — so a fully tracked
//! series is a few KiB regardless of uptime. Rotation reuses the ring;
//! nothing grows with time.
//!
//! # Conservation
//!
//! Rotation never drops or double-counts: for a monotone counter, the
//! sum of all retained window deltas plus the evicted-delta remainder
//! equals the cumulative growth since tracking began. Change observed
//! between two samples is attributed to the window of the *later*
//! sample (the series cannot know how a gap distributed it); gap
//! windows close at zero. Property tests in `tests/timeseries_props.rs`
//! pin exactly this.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::clock::Clock;
use crate::histogram::HistogramSnapshot;
use crate::snapshot::MetricsSnapshot;

/// Ring geometry: window width and how many closed windows are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Window width in microseconds of the driving clock.
    pub window_us: u64,
    /// Closed windows retained per family (the open window rides on
    /// top). Clamped to at least 1.
    pub windows: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            window_us: 60_000_000,
            windows: 10,
        }
    }
}

/// What a tracked family aggregates per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone counter: per-window delta + rate.
    Counter,
    /// Instantaneous gauge: last sampled value per window.
    Gauge,
    /// Histogram: per-window snapshot delta, quantiles on demand.
    Histogram,
}

impl SeriesKind {
    /// The `kind` string in the `/debug/timeseries` exposition.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One window's aggregate for one family.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowAgg {
    /// Counter delta over the window and the implied rate.
    Counter {
        /// Cumulative growth inside the window.
        delta: u64,
        /// `delta / window_s`.
        rate_per_s: f64,
    },
    /// Last gauge value sampled in (or carried into) the window.
    Gauge {
        /// The value.
        value: i64,
    },
    /// Histogram delta over the window.
    Histogram {
        /// Values recorded inside the window.
        count: u64,
        /// Median upper bound (log-bucket resolution).
        p50: u64,
        /// 90th-percentile upper bound.
        p90: u64,
        /// 99th-percentile upper bound.
        p99: u64,
    },
}

/// One window of one family: start stamp plus the aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPoint {
    /// Window start on the driving clock, microseconds.
    pub start_us: u64,
    /// The aggregate.
    pub agg: WindowAgg,
}

/// A family's retained windows, oldest first; the last point is the
/// still-open window.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesView {
    /// The tracked metric family name.
    pub family: String,
    /// What the family aggregates.
    pub kind: SeriesKind,
    /// Retained windows, oldest → open.
    pub points: Vec<WindowPoint>,
}

#[derive(Debug, Clone)]
enum SeriesState {
    Counter {
        /// Cumulative value at the open window's start (set on first
        /// sample; deltas count from there).
        base: Option<u64>,
        /// Latest sampled cumulative value.
        latest: u64,
        /// Closed per-window deltas, oldest first.
        ring: VecDeque<(u64, u64)>,
    },
    Gauge {
        latest: Option<i64>,
        ring: VecDeque<(u64, i64)>,
    },
    Histogram {
        /// Boxed: a snapshot carries the full bucket array, an order of
        /// magnitude bigger than the other variants; boxing keeps every
        /// `SeriesState` in the map small.
        base: Option<Box<HistogramSnapshot>>,
        latest: Box<HistogramSnapshot>,
        ring: VecDeque<(u64, HistogramSnapshot)>,
    },
}

impl SeriesState {
    fn new(kind: SeriesKind) -> Self {
        match kind {
            SeriesKind::Counter => SeriesState::Counter {
                base: None,
                latest: 0,
                ring: VecDeque::new(),
            },
            SeriesKind::Gauge => SeriesState::Gauge {
                latest: None,
                ring: VecDeque::new(),
            },
            SeriesKind::Histogram => SeriesState::Histogram {
                base: None,
                latest: Box::default(),
                ring: VecDeque::new(),
            },
        }
    }

    fn kind(&self) -> SeriesKind {
        match self {
            SeriesState::Counter { .. } => SeriesKind::Counter,
            SeriesState::Gauge { .. } => SeriesKind::Gauge,
            SeriesState::Histogram { .. } => SeriesKind::Histogram,
        }
    }

    /// Closes the open window at `start_us` and opens the next one.
    fn rotate(&mut self, start_us: u64, capacity: usize) {
        match self {
            SeriesState::Counter { base, latest, ring } => {
                let delta = latest.saturating_sub(base.unwrap_or(*latest));
                push_capped(ring, (start_us, delta), capacity);
                *base = Some(*latest);
            }
            SeriesState::Gauge { latest, ring } => {
                push_capped(ring, (start_us, latest.unwrap_or(0)), capacity);
            }
            SeriesState::Histogram { base, latest, ring } => {
                let open = match base {
                    Some(b) => snapshot_delta(latest, b),
                    None => HistogramSnapshot::default(),
                };
                push_capped(ring, (start_us, open), capacity);
                *base = Some(latest.clone());
            }
        }
    }
}

fn push_capped<T>(ring: &mut VecDeque<T>, item: T, capacity: usize) {
    while ring.len() >= capacity.max(1) {
        ring.pop_front();
    }
    ring.push_back(item);
}

/// `a − b` per field, saturating — both snapshots come from the same
/// monotone histogram, so saturation only absorbs benign tearing skew.
fn snapshot_delta(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = HistogramSnapshot {
        count: a.count.saturating_sub(b.count),
        sum: a.sum.saturating_sub(b.sum),
        buckets: [0; crate::histogram::BUCKETS],
    };
    for (o, (x, y)) in out.buckets.iter_mut().zip(a.buckets.iter().zip(&b.buckets)) {
        *o = x.saturating_sub(*y);
    }
    out
}

/// Sum of every gauge whose family (key up to any `{`) equals `family`.
fn gauge_family_total(snapshot: &MetricsSnapshot, family: &str) -> i64 {
    snapshot
        .gauges()
        .iter()
        .filter(|(k, _)| k.as_str() == family || k.split('{').next() == Some(family))
        .map(|(_, &v)| v)
        .sum()
}

/// Merge of every histogram whose family equals `family`.
fn histogram_family_merged(snapshot: &MetricsSnapshot, family: &str) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    for (k, h) in snapshot.histograms() {
        if k.as_str() == family || k.split('{').next() == Some(family) {
            merged.merge(h);
        }
    }
    merged
}

/// The windowed time-series ring. Single-writer by design: the server
/// samples it from inside the (already serialized) snapshot publication
/// path, so the struct itself carries no locks.
#[derive(Debug)]
pub struct TimeSeries {
    config: TimeSeriesConfig,
    clock: Arc<dyn Clock>,
    /// Index (`start_us / window_us`) of the open window; `None` until
    /// the first sample anchors the ring.
    open_window: Option<u64>,
    series: BTreeMap<String, SeriesState>,
}

impl TimeSeries {
    /// An empty ring rotating on `clock`.
    pub fn new(config: TimeSeriesConfig, clock: Arc<dyn Clock>) -> Self {
        TimeSeries {
            config: TimeSeriesConfig {
                window_us: config.window_us.max(1),
                windows: config.windows.max(1),
            },
            clock,
            open_window: None,
            series: BTreeMap::new(),
        }
    }

    /// The ring geometry.
    pub fn config(&self) -> TimeSeriesConfig {
        self.config
    }

    /// Tracks a family (idempotent; the kind of an existing family is
    /// never changed).
    pub fn track(&mut self, family: &str, kind: SeriesKind) {
        self.series
            .entry(family.to_string())
            .or_insert_with(|| SeriesState::new(kind));
    }

    /// Samples every tracked family from `snapshot` at the clock's
    /// current reading.
    pub fn sample(&mut self, snapshot: &MetricsSnapshot) {
        let now_us = self.clock.now_us();
        self.sample_at(now_us, snapshot);
    }

    /// [`TimeSeries::sample`] at an explicit stamp — the deterministic
    /// entry point (the server passes stream time; tests pass literals).
    /// A stamp earlier than the open window is clamped into it, so a
    /// skewed clock can never rotate the ring backwards.
    pub fn sample_at(&mut self, now_us: u64, snapshot: &MetricsSnapshot) {
        let window = now_us / self.config.window_us;
        let open = match self.open_window {
            None => {
                self.open_window = Some(window);
                window
            }
            Some(open) => open,
        };
        if window > open {
            // Close the open window, zero-fill any skipped ones (their
            // start stamps keep the timeline honest), then land in the
            // new open window. Rotation count is bounded by the ring
            // capacity: older windows would be evicted immediately.
            let skipped = (window - open).min(self.config.windows as u64 + 1);
            let first = window - skipped + 1;
            for w in 0..skipped {
                let closing = first + w;
                let start_us = (closing - 1).saturating_mul(self.config.window_us);
                for state in self.series.values_mut() {
                    state.rotate(start_us, self.config.windows);
                }
            }
            self.open_window = Some(window);
        }
        for (family, state) in self.series.iter_mut() {
            match state {
                SeriesState::Counter { base, latest, .. } => {
                    *latest = snapshot.counter_family_total(family);
                    if base.is_none() {
                        *base = Some(*latest);
                    }
                }
                SeriesState::Gauge { latest, .. } => {
                    *latest = Some(gauge_family_total(snapshot, family));
                }
                SeriesState::Histogram { base, latest, .. } => {
                    **latest = histogram_family_merged(snapshot, family);
                    if base.is_none() {
                        *base = Some(latest.clone());
                    }
                }
            }
        }
    }

    /// Every tracked family's retained windows (closed windows oldest
    /// first, the open window last), families in name order.
    pub fn view(&self) -> Vec<SeriesView> {
        let window_s = self.config.window_us as f64 / 1e6;
        let open_start = self
            .open_window
            .unwrap_or(0)
            .saturating_mul(self.config.window_us);
        self.series
            .iter()
            .map(|(family, state)| {
                let mut points = Vec::new();
                match state {
                    SeriesState::Counter { base, latest, ring } => {
                        for &(start_us, delta) in ring {
                            points.push(WindowPoint {
                                start_us,
                                agg: WindowAgg::Counter {
                                    delta,
                                    rate_per_s: delta as f64 / window_s,
                                },
                            });
                        }
                        let open_delta = latest.saturating_sub(base.unwrap_or(*latest));
                        points.push(WindowPoint {
                            start_us: open_start,
                            agg: WindowAgg::Counter {
                                delta: open_delta,
                                rate_per_s: open_delta as f64 / window_s,
                            },
                        });
                    }
                    SeriesState::Gauge { latest, ring } => {
                        for &(start_us, value) in ring {
                            points.push(WindowPoint {
                                start_us,
                                agg: WindowAgg::Gauge { value },
                            });
                        }
                        points.push(WindowPoint {
                            start_us: open_start,
                            agg: WindowAgg::Gauge {
                                value: latest.unwrap_or(0),
                            },
                        });
                    }
                    SeriesState::Histogram { base, latest, ring } => {
                        for (start_us, delta) in ring {
                            points.push(WindowPoint {
                                start_us: *start_us,
                                agg: histogram_agg(delta),
                            });
                        }
                        let open = match base {
                            Some(b) => snapshot_delta(latest, b),
                            None => HistogramSnapshot::default(),
                        };
                        points.push(WindowPoint {
                            start_us: open_start,
                            agg: histogram_agg(&open),
                        });
                    }
                }
                SeriesView {
                    family: family.clone(),
                    kind: state.kind(),
                    points,
                }
            })
            .collect()
    }

    /// Sum of a counter family's deltas over the most recent `n`
    /// windows (open window included) — the detector-facing read.
    pub fn recent_counter_delta(&self, family: &str, n: usize) -> u64 {
        match self.series.get(family) {
            Some(SeriesState::Counter { base, latest, ring }) => {
                let open = latest.saturating_sub(base.unwrap_or(*latest));
                let closed: u64 = ring
                    .iter()
                    .rev()
                    .take(n.saturating_sub(1))
                    .map(|&(_, d)| d)
                    .sum();
                open + closed
            }
            _ => 0,
        }
    }
}

fn histogram_agg(delta: &HistogramSnapshot) -> WindowAgg {
    WindowAgg::Histogram {
        count: delta.count,
        p50: delta.quantile(0.5),
        p90: delta.quantile(0.9),
        p99: delta.quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SteppingClock;
    use crate::histogram::Histogram;

    fn series(window_us: u64, windows: usize) -> TimeSeries {
        TimeSeries::new(
            TimeSeriesConfig { window_us, windows },
            Arc::new(SteppingClock::frozen(0)),
        )
    }

    fn counter_snapshot(v: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.add_counter("hits_total{shard=\"0\"}", v / 2);
        s.add_counter("hits_total{shard=\"1\"}", v - v / 2);
        s
    }

    #[test]
    fn counter_deltas_split_by_window() {
        let mut ts = series(100, 4);
        ts.track("hits_total", SeriesKind::Counter);
        ts.sample_at(0, &counter_snapshot(10));
        ts.sample_at(50, &counter_snapshot(14));
        ts.sample_at(120, &counter_snapshot(20));
        ts.sample_at(130, &counter_snapshot(21));
        let view = ts.view();
        assert_eq!(view.len(), 1);
        let points = &view[0].points;
        assert_eq!(points.len(), 2, "one closed + the open window");
        assert_eq!(
            points[0].agg,
            WindowAgg::Counter {
                delta: 4,
                rate_per_s: 4.0 / 1e-4
            }
        );
        // The 14→20 growth spans the rotation and lands in the later
        // window: 6 + 1 = 7.
        assert_eq!(
            points[1].agg,
            WindowAgg::Counter {
                delta: 7,
                rate_per_s: 7.0 / 1e-4
            }
        );
    }

    #[test]
    fn conservation_across_rotation_and_gaps() {
        let mut ts = series(100, 64);
        ts.track("hits_total", SeriesKind::Counter);
        ts.sample_at(0, &counter_snapshot(3));
        ts.sample_at(10, &counter_snapshot(8));
        ts.sample_at(505, &counter_snapshot(40)); // 4-window gap
        ts.sample_at(710, &counter_snapshot(41));
        let total: u64 = ts.view()[0]
            .points
            .iter()
            .map(|p| match p.agg {
                WindowAgg::Counter { delta, .. } => delta,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 41 - 3, "deltas sum to cumulative growth");
    }

    #[test]
    fn ring_memory_is_bounded() {
        let mut ts = series(10, 3);
        ts.track("hits_total", SeriesKind::Counter);
        for i in 0..1_000u64 {
            ts.sample_at(i * 10, &counter_snapshot(i));
        }
        let points = &ts.view()[0].points;
        assert_eq!(points.len(), 4, "3 closed + open");
    }

    #[test]
    fn gauges_carry_last_value() {
        let mut ts = series(100, 4);
        ts.track("depth", SeriesKind::Gauge);
        let mut s = MetricsSnapshot::new();
        s.add_gauge("depth", 7);
        ts.sample_at(0, &s);
        ts.sample_at(250, &s); // two rotations, no new value
        let points = &ts.view()[0].points;
        assert_eq!(points.len(), 3);
        assert!(points
            .iter()
            .all(|p| p.agg == WindowAgg::Gauge { value: 7 }));
    }

    #[test]
    fn histogram_windows_expose_quantiles() {
        let mut ts = series(100, 4);
        ts.track("lat_us", SeriesKind::Histogram);
        let h = Histogram::new();
        let mut snap = MetricsSnapshot::new();
        snap.add_histogram("lat_us", h.snapshot());
        ts.sample_at(0, &snap);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::new();
        snap.add_histogram("lat_us", h.snapshot());
        ts.sample_at(50, &snap);
        let points = &ts.view()[0].points;
        match &points[0].agg {
            WindowAgg::Histogram {
                count, p50, p99, ..
            } => {
                assert_eq!(*count, 4);
                assert!(p50 <= p99);
                assert!(*p99 >= 100);
            }
            other => panic!("want histogram agg, got {other:?}"),
        }
    }

    #[test]
    fn clock_drives_rotation() {
        let clock = Arc::new(SteppingClock::new(0, 100));
        let mut ts = TimeSeries::new(
            TimeSeriesConfig {
                window_us: 100,
                windows: 4,
            },
            clock,
        );
        ts.track("hits_total", SeriesKind::Counter);
        ts.sample(&counter_snapshot(1)); // t=0
        ts.sample(&counter_snapshot(2)); // t=100 → rotation
        assert_eq!(ts.view()[0].points.len(), 2);
    }

    #[test]
    fn backwards_clock_never_rotates_backwards() {
        let mut ts = series(100, 4);
        ts.track("hits_total", SeriesKind::Counter);
        ts.sample_at(250, &counter_snapshot(5));
        ts.sample_at(40, &counter_snapshot(9)); // skewed early stamp
        let points = &ts.view()[0].points;
        assert_eq!(points.len(), 1, "no rotation on backwards stamp");
        assert_eq!(
            points[0].agg,
            WindowAgg::Counter {
                delta: 4,
                rate_per_s: 4.0 / 1e-4
            }
        );
    }

    #[test]
    fn recent_counter_delta_sums_latest_windows() {
        let mut ts = series(100, 8);
        ts.track("hits_total", SeriesKind::Counter);
        ts.sample_at(0, &counter_snapshot(0));
        ts.sample_at(150, &counter_snapshot(10));
        ts.sample_at(250, &counter_snapshot(30));
        // Closed windows: [0,?], [10]; open: 20.
        assert_eq!(ts.recent_counter_delta("hits_total", 1), 20);
        assert_eq!(ts.recent_counter_delta("hits_total", 2), 30);
        assert_eq!(ts.recent_counter_delta("hits_total", 16), 30);
        assert_eq!(ts.recent_counter_delta("absent_total", 3), 0);
    }
}

//! Lock-free scalar instruments: [`Counter`] and [`Gauge`].

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// All operations use relaxed atomics: counts are totals, never used to
/// synchronise other memory, and a snapshot only needs each counter to be
/// internally consistent. Incrementing costs one uncontended atomic add —
/// cheap enough for every hot path in the server.
///
/// Ordering: every op is Relaxed, deliberately. A lone counter is still
/// exact (RMW atomicity) and monotone per reader (same-location
/// coherence); what relaxed gives up is *cross-counter* consistency — a
/// scrape may see counter B's increment but not an earlier increment to
/// counter A. Both halves of that contract are pinned by the model tests
/// `relaxed_counter_is_exact_and_monotone` and
/// `relaxed_metrics_tear_within_documented_bound` in
/// crates/check/tests/model.rs.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions (active buses, queue depths).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(3);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn counter_is_shared_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
    }
}

//! Synchronization façade for the hot-path instruments.
//!
//! [`crate::counter`] imports its atomics from here instead of
//! `std::sync::atomic` (lint rule W010 `raw_sync` enforces it). A
//! normal build re-exports the `std` types unchanged; under
//! `RUSTFLAGS='--cfg wilocator_check'` they become `wilocator-check`'s
//! virtual atomics, so the documented relaxed-ordering tearing bound is
//! verified against the code that ships. See `crates/check` and
//! DESIGN.md §14.

pub use wilocator_check::sync::*;

//! Log-bucketed latency histogram and RAII span timer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::clock::Clock;

/// Number of power-of-two buckets. Bucket `i` counts values `v` with
/// `bucket_index(v) == i`; bucket 0 holds `v == 0`, bucket `i >= 1` holds
/// `2^(i-1) <= v < 2^i`, and the last bucket absorbs everything above.
/// With 32 buckets a microsecond-valued histogram spans sub-µs to ~35 min.
pub const BUCKETS: usize = 32;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`, for exposition.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket, lock-free histogram of non-negative integer values
/// (typically microseconds). Recording is three relaxed atomic adds; no
/// allocation, no locks, safe from any thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Starts a span whose elapsed wall-clock **microseconds** are recorded
    /// here when the returned guard drops.
    #[inline]
    pub fn time(&self) -> SpanTimer<'_> {
        SpanTimer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Like [`Histogram::time`], but reads the given [`Clock`] instead of
    /// `Instant` — inject a stepping clock to make timing goldens
    /// deterministic.
    #[inline]
    pub fn time_with<'a>(&'a self, clock: &'a dyn Clock) -> ClockSpanTimer<'a> {
        ClockSpanTimer {
            histogram: self,
            clock,
            start_us: clock.now_us(),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// # Tearing model
    ///
    /// The three fields are loaded with `Relaxed` ordering and no mutual
    /// synchronisation, so a snapshot taken concurrently with [`record`]
    /// calls can *tear*: it may observe a bucket increment without the
    /// matching `count`/`sum` update (or vice versa), and `sum` may lag
    /// `count` by in-flight values. Each field is individually atomic and
    /// monotonic, the skew is bounded by the number of in-flight `record`
    /// calls, and a quiescent histogram always snapshots exactly. Scrape
    /// consumers tolerate this by design; tests snapshot after joining
    /// writers.
    ///
    /// [`record`]: Histogram::record
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Measures one span of wall-clock time; records elapsed microseconds into
/// its histogram on drop. Obtain via [`Histogram::time`].
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl SpanTimer<'_> {
    /// Stops the span early (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram
            .record(self.start.elapsed().as_micros() as u64);
    }
}

/// Like [`SpanTimer`] but driven by an injected [`Clock`]. Obtain via
/// [`Histogram::time_with`].
#[derive(Debug)]
pub struct ClockSpanTimer<'a> {
    histogram: &'a Histogram,
    clock: &'a dyn Clock,
    start_us: u64,
}

impl ClockSpanTimer<'_> {
    /// Stops the span early (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for ClockSpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram
            .record(self.clock.now_us().saturating_sub(self.start_us));
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`BUCKETS`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`): the upper bound of the bucket
    /// containing the q-th value. Resolution is the bucket width (a factor
    /// of two), which is plenty for latency regression tracking.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// `(upper_bound, cumulative_count)` pairs over non-empty prefixes —
    /// the Prometheus `_bucket{le=...}` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if c > 0 {
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 107);
        assert!((s.mean() - 21.4).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let q50 = s.quantile(0.5);
        let q99 = s.quantile(0.99);
        assert!(q50 <= q99);
        // The median of 1..=1000 lies in the bucket containing 500.
        assert!((256..=1023).contains(&q50), "q50 = {q50}");
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.9), 0);
    }

    #[test]
    fn merge_adds_observations() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(5);
        b.record(7);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 15);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.time();
        }
        h.time().stop();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn clock_span_timer_records_deterministic_duration() {
        use crate::clock::SteppingClock;
        let h = Histogram::new();
        let clock = SteppingClock::new(0, 7);
        {
            let _t = h.time_with(&clock); // start 0, end 7
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 7);
    }

    #[test]
    fn cumulative_buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(100);
        let cum = h.snapshot().cumulative_buckets();
        assert_eq!(cum.len(), 2);
        assert_eq!(cum[0].1, 1);
        assert_eq!(cum[1].1, 2);
        assert!(cum[0].0 < cum[1].0);
    }
}

//! Zero-dependency observability primitives for the WiLocator workspace.
//!
//! Production-scale ingestion is only debuggable with per-stage
//! accounting: how many reports arrived, how many produced fixes, which
//! positioning fallbacks fired, how long shard locks were held. This
//! crate provides the instruments — built on `std::sync::atomic` only
//! (the build environment has no crates.io access, mirroring
//! `crates/compat/`):
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars;
//! * [`Histogram`] — lock-free log-bucketed value distribution, with a
//!   RAII [`SpanTimer`] for wall-clock latency spans;
//! * [`MetricsSnapshot`] — plain-data aggregation with merge semantics, a
//!   deterministic text form for golden tests, and Prometheus-style
//!   exposition;
//! * [`Collect`] / [`Registry`] — how per-shard and per-route metric
//!   structs are labelled and gathered into one snapshot;
//! * [`Clock`] — injectable microsecond time source ([`MonotonicClock`]
//!   in production, [`SteppingClock`] in deterministic goldens);
//! * [`TimeSeries`] — fixed-memory ring of windowed aggregates
//!   (counter deltas/rates, gauge values, histogram quantiles) sampled
//!   from [`MetricsSnapshot`]s, rotated deterministically on the
//!   injected [`Clock`];
//! * [`trace`] — causal span tracing with a tail-sampled flight
//!   recorder ([`Tracer`] / [`TraceCtx`] / [`SpanGuard`]), Chrome
//!   trace-event export and a deterministic text dump.
//!
//! # Design rules
//!
//! Recording never takes a lock and never allocates: hot paths pay a few
//! relaxed atomic adds (and, for spans, one `Instant` pair). Aggregation
//! (naming, labelling, sorting, formatting) happens only at snapshot
//! time. Counters and gauges count *events*, so under the server's
//! per-bus replay determinism they are bit-identical across thread
//! counts; histograms time *wall-clock spans* and are not — golden tests
//! compare [`MetricsSnapshot::deterministic_lines`], which excludes them.
//!
//! # Examples
//!
//! ```
//! use wilocator_obs::{Counter, Histogram, MetricsSnapshot, metric_key};
//!
//! let reports = Counter::new();
//! let lock_us = Histogram::new();
//! {
//!     let _span = lock_us.time(); // records elapsed µs on drop
//!     reports.inc();
//! }
//! let mut snap = MetricsSnapshot::new();
//! snap.add_counter(metric_key("reports_total", "shard=\"0\""), reports.get());
//! snap.add_histogram("lock_hold_us", lock_us.snapshot());
//! assert_eq!(snap.counter("reports_total{shard=\"0\"}"), 1);
//! assert!(snap.prometheus_text().contains("# TYPE reports_total counter"));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod clock;
pub mod counter;
pub mod histogram;
pub mod snapshot;
pub mod sync;
pub mod timeseries;
pub mod trace;

pub use clock::{Clock, MonotonicClock, SteppingClock};
pub use counter::{Counter, Gauge};
pub use histogram::{ClockSpanTimer, Histogram, HistogramSnapshot, SpanTimer, BUCKETS};
pub use snapshot::{
    escape_label_value, metric_key, validate_exposition_line, Collect, MetricsSnapshot, Registry,
};
pub use timeseries::{
    SeriesKind, SeriesView, TimeSeries, TimeSeriesConfig, WindowAgg, WindowPoint,
};
pub use trace::{
    FieldList, FieldValue, SpanData, SpanGuard, TraceConfig, TraceCtx, TraceData, Tracer,
};

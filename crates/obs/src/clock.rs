//! Time sources for span timing.
//!
//! Production code uses [`MonotonicClock`], a thin wrapper over
//! [`std::time::Instant`] anchored at construction. Golden tests inject a
//! [`SteppingClock`] whose reads advance by a fixed amount, which makes
//! span durations — and with [`Histogram::time_with`] the lock-hold
//! histograms — byte-identical across runs instead of stripped from
//! snapshots.
//!
//! [`Histogram::time_with`]: crate::Histogram::time_with

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A microsecond time source.
///
/// Implementations must be cheap (a handful of instructions) and safe to
/// call from any thread: the tracer reads the clock on every span open
/// and close while shard locks are held.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// The current time in microseconds since an arbitrary origin.
    ///
    /// Only differences between readings are meaningful. Readings taken
    /// on one thread are monotonically non-decreasing.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds elapsed since construction, read
/// from the OS monotonic clock.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of the call.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        // A u64 of microseconds wraps after ~584'000 years of uptime.
        self.origin.elapsed().as_micros() as u64
    }
}

/// A deterministic test clock: each reading returns the previous value
/// and advances the internal time by a fixed step.
///
/// A step of `0` freezes the clock (every reading identical); a step of
/// `1` makes consecutive readings `start, start+1, start+2, …`, so span
/// start/end stamps in a single-threaded replay are a pure function of
/// the event sequence.
///
/// The internal counter uses `Relaxed` ordering (per the W003 policy):
/// each reading is still unique and monotonic across threads, but
/// cross-thread ordering of stamps is unspecified — deterministic
/// goldens must replay single-threaded.
#[derive(Debug)]
pub struct SteppingClock {
    now_us: AtomicU64,
    step_us: u64,
}

impl SteppingClock {
    /// A clock whose first reading is `start_us`, advancing by `step_us`
    /// per reading.
    pub fn new(start_us: u64, step_us: u64) -> Self {
        Self {
            now_us: AtomicU64::new(start_us),
            step_us,
        }
    }

    /// A frozen clock: every reading returns `at_us`.
    pub fn frozen(at_us: u64) -> Self {
        Self::new(at_us, 0)
    }
}

impl Clock for SteppingClock {
    fn now_us(&self) -> u64 {
        self.now_us.fetch_add(self.step_us, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepping_clock_is_deterministic() {
        let c = SteppingClock::new(100, 10);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.now_us(), 110);
        assert_eq!(c.now_us(), 120);
    }

    #[test]
    fn frozen_clock_never_moves() {
        let c = SteppingClock::frozen(42);
        assert_eq!(c.now_us(), 42);
        assert_eq!(c.now_us(), 42);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}

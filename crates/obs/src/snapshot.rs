//! Point-in-time metric aggregation: [`MetricsSnapshot`] and the
//! [`Collect`]/[`Registry`] plumbing that assembles one from many
//! per-shard metric structs.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::HistogramSnapshot;

/// Builds a metric key from a family name and a label set, in Prometheus
/// text form: `family{labels}`, or just `family` when `labels` is empty.
///
/// `labels` is passed pre-rendered (e.g. `shard="0"`); the callers of this
/// crate only ever need one or two static labels, so a full label map
/// would be weight without value.
pub fn metric_key(family: &str, labels: &str) -> String {
    if labels.is_empty() {
        family.to_string()
    } else {
        format!("{family}{{{labels}}}")
    }
}

/// A plain-data, mergeable snapshot of every metric the system exposes.
///
/// Counters and gauges are *deterministic* under the server's replay
/// guarantees (they count events, and event streams are reproducible);
/// histograms record wall-clock timings and are not. Consumers that need
/// bit-identical comparisons across runs (golden tests, multi-thread
/// replay identity) should compare [`MetricsSnapshot::deterministic_lines`]
/// and leave histograms to human eyes and dashboards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `key` (creating it at zero).
    pub fn add_counter(&mut self, key: impl Into<String>, v: u64) {
        *self.counters.entry(key.into()).or_insert(0) += v;
    }

    /// Adds `v` to the gauge `key` (creating it at zero).
    pub fn add_gauge(&mut self, key: impl Into<String>, v: i64) {
        *self.gauges.entry(key.into()).or_insert(0) += v;
    }

    /// Merges a histogram snapshot into `key`.
    pub fn add_histogram(&mut self, key: impl Into<String>, h: HistogramSnapshot) {
        self.histograms.entry(key.into()).or_default().merge(&h);
    }

    /// The counter value at `key` (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The gauge value at `key` (0 when absent).
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// The histogram at `key`, if recorded.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> &BTreeMap<String, i64> {
        &self.gauges
    }

    /// All histograms, sorted by key.
    pub fn histograms(&self) -> &BTreeMap<String, HistogramSnapshot> {
        &self.histograms
    }

    /// Sums every counter whose family (the key up to any `{`) equals
    /// `family` — the all-labels total.
    pub fn counter_family_total(&self, family: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.as_str() == family || family_of(k) == family)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Folds another snapshot into this one (counters and gauges add,
    /// histograms merge).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            self.add_counter(k.clone(), v);
        }
        for (k, &v) in &other.gauges {
            self.add_gauge(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.add_histogram(k.clone(), h.clone());
        }
    }

    /// The deterministic subset (counters and gauges) as sorted
    /// `key value` lines — the canonical form for golden fixtures and
    /// cross-thread identity assertions. Histograms (timings) are omitted.
    pub fn deterministic_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (k, v) in &self.gauges {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition (one `# HELP` + `# TYPE` pair per
    /// family, then the samples; histograms expand to
    /// `_bucket`/`_sum`/`_count` series). Every emitted line conforms to
    /// the exposition grammar checked by [`validate_exposition_line`].
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, key: &str, ty: &str| {
            let fam = family_of(key).to_string();
            if fam != last_family {
                out.push_str(&format!("# HELP {fam} {}\n", help_of(ty)));
                out.push_str(&format!("# TYPE {fam} {ty}\n"));
                last_family = fam;
            }
        };
        for (k, v) in &self.counters {
            type_line(&mut out, k, "counter");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            type_line(&mut out, k, "gauge");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let fam = family_of(k);
            let labels = labels_of(k);
            type_line(&mut out, k, "histogram");
            for (le, cum) in h.cumulative_buckets() {
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                let sep = if labels.is_empty() { "" } else { "," };
                out.push_str(&format!("{fam}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}\n"));
            }
            let lb = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            out.push_str(&format!("{fam}_sum{lb} {}\n", h.sum));
            out.push_str(&format!("{fam}_count{lb} {}\n", h.count));
        }
        out
    }
}

/// The family name of a key: everything before the label block.
fn family_of(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The rendered labels of a key (without braces), or `""`.
fn labels_of(key: &str) -> &str {
    key.find('{')
        .map(|i| &key[i + 1..key.len() - 1])
        .unwrap_or("")
}

/// The `# HELP` docstring for a metric type. Per-family prose lives in
/// DESIGN.md; the exposition carries the type contract, which is what
/// scrapers act on.
fn help_of(ty: &str) -> &'static str {
    match ty {
        "counter" => "Monotonically increasing event count.",
        "gauge" => "Instantaneous value; may decrease.",
        _ => "Distribution of recorded values (microseconds for *_us families).",
    }
}

/// Escapes a label *value* for embedding in `name{label="value"}`: the
/// exposition format requires `\\`, `\"` and `\n` escapes inside quoted
/// label values. Use when a label value comes from runtime data (route
/// names, field ids) rather than a literal.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn validate_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => return Err(format!("invalid metric name {name:?}")),
    }
    if chars.all(is_name_char) {
        Ok(())
    } else {
        Err(format!("invalid metric name {name:?}"))
    }
}

fn validate_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return Err(format!("invalid label name {name:?}")),
    }
    if chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(format!("invalid label name {name:?}"))
    }
}

/// Checks one line of Prometheus text exposition against the format
/// grammar: `# HELP`/`# TYPE` directives, free comments, or a sample
/// `name[{label="value",…}] value` with properly escaped label values
/// and a parseable sample value. Empty lines are legal separators.
pub fn validate_exposition_line(line: &str) -> Result<(), String> {
    if line.is_empty() {
        return Ok(());
    }
    if let Some(comment) = line.strip_prefix('#') {
        let body = comment.trim_start();
        if let Some(meta) = body.strip_prefix("TYPE ") {
            let mut parts = meta.split(' ');
            validate_metric_name(parts.next().unwrap_or(""))?;
            let ty = parts.next().unwrap_or("");
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                return Err(format!("unknown metric type {ty:?}"));
            }
            if parts.next().is_some() {
                return Err(format!("trailing tokens after TYPE: {line:?}"));
            }
            return Ok(());
        }
        if let Some(meta) = body.strip_prefix("HELP ") {
            let name = meta.split(' ').next().unwrap_or("");
            return validate_metric_name(name);
        }
        // Any other comment is legal free text.
        return Ok(());
    }
    // Sample line: metric name, optional label block, space, value.
    let name_end = line.find(|c: char| !is_name_char(c)).unwrap_or(line.len());
    validate_metric_name(line.get(..name_end).unwrap_or(""))?;
    let rest = line.get(name_end..).unwrap_or("");
    let rest = if let Some(labels) = rest.strip_prefix('{') {
        validate_label_block(labels)?
    } else {
        rest
    };
    let value = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("missing space before sample value: {line:?}"))?;
    let mut tokens = value.split(' ');
    let sample = tokens.next().unwrap_or("");
    let numeric = sample.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&sample);
    if !numeric {
        return Err(format!("unparseable sample value {sample:?}"));
    }
    // An optional integer timestamp may follow.
    if let Some(ts) = tokens.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp {ts:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("trailing tokens after sample: {line:?}"));
    }
    Ok(())
}

/// Validates `label="value",…}` (the part after the opening brace) and
/// returns the remainder of the line after the closing brace.
fn validate_label_block(mut rest: &str) -> Result<&str, String> {
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok(after);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in {rest:?}"))?;
        validate_label_name(rest.get(..eq).unwrap_or(""))?;
        let mut chars = rest.get(eq + 1..).unwrap_or("").char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("unquoted label value in {rest:?}"));
        }
        let mut close = None;
        let mut escaped = false;
        for (i, c) in chars.by_ref() {
            if escaped {
                if !['\\', '"', 'n'].contains(&c) {
                    return Err(format!("invalid escape `\\{c}` in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("unterminated label value in {rest:?}"))?;
        rest = rest.get(eq + 1 + close + 1..).unwrap_or("");
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err(format!(
                "expected `,` or `}}` after label value in {rest:?}"
            ));
        }
    }
}

/// Anything that can dump its metrics into a snapshot under a label set.
pub trait Collect: Send + Sync {
    /// Appends this collector's metrics to `out`, attaching `labels`
    /// (pre-rendered, e.g. `shard="3"`) to every key.
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot);
}

/// A list of labelled collectors gathered into one snapshot on demand.
///
/// Registration and gathering take a mutex; recording never does — the
/// collectors themselves are lock-free atomics. Register once at
/// construction, gather on scrape.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Arc<dyn Collect>)>>,
}

/// Enters the registry mutex even when a previous holder panicked: the
/// entry list is append-only plain data, so it is consistent at every
/// point a panic can unwind through, and a metrics scrape must never
/// panic just because some earlier scrape did.
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("collectors", &n).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collector under a label set (may be empty).
    pub fn register(&self, labels: impl Into<String>, collector: Arc<dyn Collect>) {
        unpoisoned(self.entries.lock()).push((labels.into(), collector));
    }

    /// Gathers every registered collector into one snapshot.
    pub fn gather(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (labels, c) in unpoisoned(self.entries.lock()).iter() {
            c.collect_into(labels, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counter, Gauge};
    use crate::histogram::Histogram;

    #[test]
    fn metric_key_forms() {
        assert_eq!(metric_key("a_total", ""), "a_total");
        assert_eq!(metric_key("a_total", "shard=\"0\""), "a_total{shard=\"0\"}");
    }

    #[test]
    fn counters_merge_by_sum() {
        let mut a = MetricsSnapshot::new();
        a.add_counter("x_total", 2);
        let mut b = MetricsSnapshot::new();
        b.add_counter("x_total", 3);
        b.add_gauge("g", -1);
        a.merge(&b);
        assert_eq!(a.counter("x_total"), 5);
        assert_eq!(a.gauge("g"), -1);
    }

    #[test]
    fn family_total_sums_labels() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("f_total{shard=\"0\"}", 2);
        s.add_counter("f_total{shard=\"1\"}", 3);
        s.add_counter("g_total", 7);
        assert_eq!(s.counter_family_total("f_total"), 5);
        assert_eq!(s.counter_family_total("g_total"), 7);
        assert_eq!(s.counter_family_total("h_total"), 0);
    }

    #[test]
    fn deterministic_lines_sorted_and_stable() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("b_total", 1);
        s.add_counter("a_total", 2);
        s.add_gauge("z", 3);
        let h = Histogram::new();
        h.record(10);
        s.add_histogram("lat_us", h.snapshot());
        let lines = s.deterministic_lines();
        assert_eq!(lines, "a_total 2\nb_total 1\nz 3\n");
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("req_total{shard=\"0\"}", 4);
        s.add_counter("req_total{shard=\"1\"}", 6);
        s.add_gauge("buses", 2);
        let h = Histogram::new();
        h.record(5);
        s.add_histogram("lock_us{shard=\"0\"}", h.snapshot());
        let text = s.prometheus_text();
        assert!(text.contains("# TYPE req_total counter"));
        // TYPE emitted once for the family, not once per label set.
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
        assert!(text.contains("req_total{shard=\"1\"} 6"));
        assert!(text.contains("# TYPE buses gauge"));
        assert!(text.contains("lock_us_bucket{shard=\"0\",le=\"7\"} 1"));
        assert!(text.contains("lock_us_sum{shard=\"0\"} 5"));
        assert!(text.contains("lock_us_count{shard=\"0\"} 1"));
    }

    #[test]
    fn prometheus_text_emits_help_once_per_family() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("req_total{shard=\"0\"}", 4);
        s.add_counter("req_total{shard=\"1\"}", 6);
        let text = s.prometheus_text();
        assert_eq!(text.matches("# HELP req_total").count(), 1);
        let help_idx = text.find("# HELP req_total").unwrap();
        let type_idx = text.find("# TYPE req_total").unwrap();
        assert!(help_idx < type_idx);
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn exposition_grammar_accepts_legal_lines() {
        for line in [
            "",
            "# free comment",
            "# HELP req_total Total requests.",
            "# TYPE req_total counter",
            "# TYPE lat_us histogram",
            "req_total 3",
            "req_total{shard=\"0\"} 3",
            "req_total{shard=\"0\",route=\"9 \\\"B\\\" line\"} 3 1700000000",
            "lat_us_bucket{le=\"+Inf\"} 4",
            "temp -3.5",
            "odd NaN",
        ] {
            assert!(
                validate_exposition_line(line).is_ok(),
                "rejected legal line {line:?}: {:?}",
                validate_exposition_line(line)
            );
        }
    }

    #[test]
    fn exposition_grammar_rejects_malformed_lines() {
        for line in [
            "1bad_name 3",
            "name",
            "name{unclosed=\"x\" 3",
            "name{a=\"1\"b=\"2\"} 3",
            "name{a=unquoted} 3",
            "name{a=\"bad \\q escape\"} 3",
            "name notanumber",
            "name 3 extra tokens",
            "# TYPE name rainbow",
            "# HELP 1bad docs",
        ] {
            assert!(
                validate_exposition_line(line).is_err(),
                "accepted malformed line {line:?}"
            );
        }
    }

    #[test]
    fn every_rendered_line_passes_the_grammar() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("req_total{shard=\"0\"}", 4);
        s.add_counter(
            metric_key(
                "route_total",
                &format!("route=\"{}\"", escape_label_value("9 \"B\"\nline")),
            ),
            1,
        );
        s.add_gauge("buses", -2);
        let h = Histogram::new();
        h.record(5);
        s.add_histogram("lock_us{shard=\"0\"}", h.snapshot());
        for line in s.prometheus_text().lines() {
            validate_exposition_line(line)
                .unwrap_or_else(|e| panic!("line {line:?} fails grammar: {e}"));
        }
    }

    struct Demo {
        hits: Counter,
        depth: Gauge,
    }

    impl Collect for Demo {
        fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
            out.add_counter(metric_key("demo_hits_total", labels), self.hits.get());
            out.add_gauge(metric_key("demo_depth", labels), self.depth.get());
        }
    }

    #[test]
    fn registry_gathers_labelled_collectors() {
        let registry = Registry::new();
        let a = Arc::new(Demo {
            hits: Counter::new(),
            depth: Gauge::new(),
        });
        let b = Arc::new(Demo {
            hits: Counter::new(),
            depth: Gauge::new(),
        });
        a.hits.add(3);
        b.hits.add(4);
        b.depth.set(2);
        registry.register("shard=\"0\"", a.clone());
        registry.register("shard=\"1\"", b);
        let snap = registry.gather();
        assert_eq!(snap.counter("demo_hits_total{shard=\"0\"}"), 3);
        assert_eq!(snap.counter("demo_hits_total{shard=\"1\"}"), 4);
        assert_eq!(snap.counter_family_total("demo_hits_total"), 7);
        assert_eq!(snap.gauge("demo_depth{shard=\"1\"}"), 2);
        // Recording after registration is visible on the next gather.
        a.hits.inc();
        assert_eq!(registry.gather().counter("demo_hits_total{shard=\"0\"}"), 4);
    }
}

//! Causal tracing and the flight recorder.
//!
//! # Span model
//!
//! A *trace* is the causal record of one request through the server —
//! one ingested reading or one arrival prediction. It is a tree of
//! *spans*: the root span covers the whole request, child spans cover
//! stages (`track`, `locate`, `tile_map`, `predict`, `commit`). Spans
//! carry a name, start/end microsecond stamps from an injected
//! [`Clock`], and a small set of structured fields (bus id, outcome,
//! fix method, tile id, residual-borrow count).
//!
//! Within one request, spans are built thread-confined inside a
//! [`TraceCtx`] (a `RefCell`, no atomics at all); [`SpanGuard`] closes
//! its span on drop, so nesting follows scope nesting. Only when the
//! root context drops does the finished trace touch shared state.
//!
//! # Tail sampling
//!
//! Every *published* trace lands in a bounded per-shard ring buffer and
//! is eventually overwritten — that is the flight recorder's steady
//! state. A trace is additionally *retained* (copied into a byte-capped
//! retention buffer that survives ring churn) only when it is worth
//! keeping:
//!
//! * its root span exceeded [`TraceConfig::latency_threshold_us`], or
//! * it carries an anomaly flag (dead-reckoned fix, tile-mapping miss,
//!   unknown bus, lock-poison recovery).
//!
//! Retention decisions happen at trace finish, after the root span has
//! closed — i.e. sampling on the *tail* of the request, when its
//! latency and outcome are known.
//!
//! Orthogonally, only ~1 in [`TraceConfig::detail_every`] traces is
//! *detailed* — records clock-stamped child spans. The choice hashes a
//! content key (bus id ⊕ timestamp bits), never wall time or arrival
//! order, so replays are stable across runs and thread counts. A trace
//! that is neither detailed, anomalous, nor slow is counted and dropped
//! at finish without entering a ring: the steady-state cost per request
//! is a handful of relaxed atomics, no lock, no allocation, and zero
//! extra clock reads (the root shares its stamps with the lock-hold
//! histogram).
//!
//! # Ordering and tearing (W003)
//!
//! All tracer atomics use `Relaxed` ordering: trace ids only need
//! uniqueness, counters are totals, and the rings/retention buffer are
//! guarded by their own mutexes. Exports lock one ring at a time, so a
//! [`Tracer::text_dump`] taken while traffic is in flight is a
//! consistent set of *finished* traces but not a point-in-time cut —
//! the same tearing model as metric snapshots.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::counter::{Counter, Gauge};
use crate::snapshot::{metric_key, Collect, MetricsSnapshot};

/// Sentinel parent for root spans.
const ROOT_PARENT: u32 = u32::MAX;
/// Sentinel end stamp for spans still open.
const OPEN_END: u64 = u64::MAX;

/// Flight-recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Master switch; when false, no contexts are created and the hot
    /// path pays a single branch per request.
    pub enabled: bool,
    /// Finished traces kept per shard ring before overwrite.
    pub ring_capacity: usize,
    /// Byte budget of the retention buffer (approximate, see
    /// [`TraceData::approx_bytes`]).
    pub retained_bytes: usize,
    /// Root spans at least this long are retained (tail sampling).
    pub latency_threshold_us: u64,
    /// Roughly one in this many keyed traces is *detailed* — records
    /// individually clock-stamped child spans. The rest record only
    /// their root span (with fields and anomaly flags intact), keeping
    /// the steady-state cost near zero. `0` or `1` details every trace;
    /// other values are rounded up to a power of two so the hot-path
    /// check is a mask instead of a division.
    ///
    /// The choice is a hash of the caller-supplied key
    /// ([`Tracer::start_root_span_keyed`]), not of the trace id, so it
    /// is a pure function of request content — identical replays make
    /// identical choices at any thread count.
    pub detail_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            ring_capacity: 256,
            retained_bytes: 1 << 20,
            latency_threshold_us: 1_000,
            detail_every: 16,
        }
    }
}

impl TraceConfig {
    /// A configuration that details every trace — full child-span
    /// timing, as golden tests and offline replays want.
    pub fn detailed() -> Self {
        Self {
            detail_every: 1,
            ..Self::default()
        }
    }
}

/// A structured span field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'static str),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            // Fixed precision keeps text dumps byte-stable.
            FieldValue::F64(v) => write!(f, "{v:.2}"),
            FieldValue::Str(s) => write!(f, "{s}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl FieldValue {
    /// The value as a JSON literal (non-finite floats become strings,
    /// which plain JSON cannot carry as numbers).
    fn json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v:.2}"),
            FieldValue::F64(v) => format!("\"{v}\""),
            FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
            FieldValue::Bool(b) => b.to_string(),
        }
    }
}

/// Number of span fields stored inline before spilling to the heap.
/// Hot-path spans annotate at most three fields, so the common case
/// allocates nothing.
const INLINE_FIELDS: usize = 3;

/// A span's structured fields: a small inline array that spills to a
/// `Vec` only past [`INLINE_FIELDS`] entries. Iteration order is
/// insertion order.
#[derive(Debug, Clone)]
pub struct FieldList {
    inline: [(&'static str, FieldValue); INLINE_FIELDS],
    inline_len: u8,
    spill: Vec<(&'static str, FieldValue)>,
}

impl Default for FieldList {
    fn default() -> Self {
        Self::new()
    }
}

impl FieldList {
    /// An empty list (no allocation).
    pub fn new() -> Self {
        Self {
            inline: [("", FieldValue::U64(0)); INLINE_FIELDS],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends a field.
    pub fn push(&mut self, name: &'static str, value: FieldValue) {
        let len = usize::from(self.inline_len);
        match self.inline.get_mut(len) {
            Some(slot) => {
                *slot = (name, value);
                self.inline_len += 1;
            }
            None => self.spill.push((name, value)),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        usize::from(self.inline_len) + self.spill.len()
    }

    /// True when no fields have been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(&'static str, FieldValue)> {
        self.inline
            .iter()
            .take(usize::from(self.inline_len))
            .chain(self.spill.iter())
    }
}

impl PartialEq for FieldList {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<'a> IntoIterator for &'a FieldList {
    type Item = &'a (&'static str, FieldValue);
    type IntoIter = std::iter::Chain<
        std::iter::Take<std::slice::Iter<'a, (&'static str, FieldValue)>>,
        std::slice::Iter<'a, (&'static str, FieldValue)>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline
            .iter()
            .take(usize::from(self.inline_len))
            .chain(self.spill.iter())
    }
}

/// One finished (or still open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Position in the trace's span list; the root is always 0.
    pub seq: u32,
    /// `seq` of the parent span, or `u32::MAX` for the root.
    pub parent: u32,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// Stage name (`ingest`, `track`, `locate`, …).
    pub name: &'static str,
    /// Start stamp in clock microseconds.
    pub start_us: u64,
    /// End stamp, or `u64::MAX` while the span is open.
    pub end_us: u64,
    /// Structured annotations, in the order they were added.
    pub fields: FieldList,
}

impl SpanData {
    /// True for the trace's root span.
    pub fn is_root(&self) -> bool {
        self.parent == ROOT_PARENT
    }

    /// Span duration in microseconds (0 while open).
    pub fn duration_us(&self) -> u64 {
        if self.end_us == OPEN_END {
            0
        } else {
            self.end_us.saturating_sub(self.start_us)
        }
    }

    /// The value of the named field, if annotated.
    pub fn field(&self, name: &str) -> Option<FieldValue> {
        self.fields
            .iter()
            .find_map(|(k, v)| (*k == name).then_some(*v))
    }

    /// An inert root span left behind when the real one is moved out of
    /// a finishing context.
    fn placeholder() -> Self {
        SpanData {
            seq: 0,
            parent: ROOT_PARENT,
            depth: 0,
            name: "",
            start_us: 0,
            end_us: 0,
            fields: FieldList::new(),
        }
    }
}

/// One finished trace: a span tree plus identity and anomaly state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Unique, monotonically assigned id.
    pub trace_id: u64,
    /// Shard whose ring recorded the trace.
    pub shard: usize,
    /// First anomaly flagged on the trace, if any.
    pub anomaly: Option<&'static str>,
    /// Spans in creation order; the root is first.
    pub spans: Vec<SpanData>,
}

impl TraceData {
    /// The root span (absent only for a degenerate empty trace).
    pub fn root(&self) -> Option<&SpanData> {
        self.spans.first()
    }

    /// Root-span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.root().map(SpanData::duration_us).unwrap_or(0)
    }

    /// The root span's field `name` as a `u64`, if annotated so.
    pub fn root_field_u64(&self, name: &str) -> Option<u64> {
        match self.root()?.field(name) {
            Some(FieldValue::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Approximate heap+inline footprint, the unit of the retention
    /// byte cap. Deterministic: a pure function of the span tree shape.
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<TraceData>();
        for sp in &self.spans {
            n += std::mem::size_of::<SpanData>();
            n += sp.fields.len() * std::mem::size_of::<(&'static str, FieldValue)>();
        }
        n
    }
}

/// Retention buffer state (guarded by one mutex).
#[derive(Debug, Default)]
struct Retention {
    traces: VecDeque<TraceData>,
    bytes: usize,
}

/// Enters a tracer mutex even when a previous holder panicked: rings and
/// the retention buffer hold plain owned data, consistent at every point
/// a panic can unwind through, and the recorder must keep recording
/// through (and especially during) failures.
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One shard's ring, padded to a cache line so neighbouring shards'
/// rings don't false-share when batch threads publish concurrently.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ShardRing(Mutex<VecDeque<TraceData>>);

/// The flight recorder: per-shard rings of recent traces plus the
/// tail-sampled retention buffer, with its own accounting counters.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    /// `detail_every` rounded up to a power of two, minus one: the
    /// sampling check is `mix64(key) & detail_mask == 0`.
    detail_mask: u64,
    clock: Arc<dyn Clock>,
    next_trace_id: AtomicU64,
    rings: Vec<ShardRing>,
    retention: Mutex<Retention>,
    traces_total: Counter,
    spans_total: Counter,
    ring_evicted_total: Counter,
    retained_anomaly_total: Counter,
    retained_slow_total: Counter,
    retention_evicted_total: Counter,
    retained_bytes: Gauge,
}

impl Tracer {
    /// A tracer with one ring per shard (at least one).
    pub fn new(config: TraceConfig, shards: usize, clock: Arc<dyn Clock>) -> Self {
        let rings = (0..shards.max(1)).map(|_| ShardRing::default()).collect();
        let detail_mask = if config.detail_every <= 1 {
            0
        } else {
            config.detail_every.next_power_of_two() - 1
        };
        Self {
            config,
            detail_mask,
            clock,
            next_trace_id: AtomicU64::new(0),
            rings,
            retention: Mutex::default(),
            traces_total: Counter::new(),
            spans_total: Counter::new(),
            ring_evicted_total: Counter::new(),
            retained_anomaly_total: Counter::new(),
            retained_slow_total: Counter::new(),
            retention_evicted_total: Counter::new(),
            retained_bytes: Gauge::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// The clock stamps are read from.
    pub fn clock(&self) -> &dyn Clock {
        // lint: allow(read_path_purity) — dyn Clock dispatch defaults to ⊤; every Clock impl is a pure time read, no locks or blocking
        self.clock.as_ref()
    }

    /// Opens a trace rooted at a new span, or `None` when tracing is
    /// disabled. The context is thread-confined; the trace publishes to
    /// the shard's ring when the context drops. Traces opened this way
    /// are always detailed (child spans individually clock-stamped) —
    /// the hot path uses [`Tracer::start_root_span_keyed`] instead.
    pub fn start_root_span(&self, shard: usize, name: &'static str) -> Option<TraceCtx<'_>> {
        if !self.config.enabled {
            return None;
        }
        let start_us = self.clock.now_us();
        Some(self.open_root(shard, name, start_us, true))
    }

    /// The hot-path variant: the caller supplies the root's start stamp
    /// (typically shared with a histogram timer, so tracing adds no
    /// clock reads) and a content-derived sampling key that decides
    /// whether this trace records detailed child spans
    /// ([`TraceConfig::detail_every`]). Close with
    /// [`TraceCtx::finish_at`] to share the end stamp too.
    pub fn start_root_span_keyed(
        &self,
        shard: usize,
        name: &'static str,
        start_us: u64,
        key: u64,
    ) -> Option<TraceCtx<'_>> {
        if !self.config.enabled {
            return None;
        }
        let detailed = mix64(key) & self.detail_mask == 0;
        Some(self.open_root(shard, name, start_us, detailed))
    }

    fn open_root(
        &self,
        shard: usize,
        name: &'static str,
        start_us: u64,
        detailed: bool,
    ) -> TraceCtx<'_> {
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let root = SpanData {
            seq: 0,
            parent: ROOT_PARENT,
            depth: 0,
            name,
            start_us,
            end_us: OPEN_END,
            fields: FieldList::new(),
        };
        self.spans_total.inc();
        TraceCtx {
            tracer: self,
            shard: shard.min(self.rings.len().saturating_sub(1)),
            trace_id,
            detailed,
            inner: RefCell::new(CtxInner {
                root,
                // A non-detailed trace records no children, so it never
                // needs the heap (or the pool) at all.
                children: if detailed {
                    pooled_children()
                } else {
                    Vec::new()
                },
                open: Vec::new(),
                anomaly: None,
                root_end: None,
            }),
        }
    }

    /// Publishes a finished trace (already counted by its context's
    /// drop): tail-sampling decision first, then the ring insert
    /// (evicting the oldest entries beyond capacity).
    fn finish(&self, trace: TraceData) {
        let anomalous = trace.anomaly.is_some();
        let slow = !anomalous && trace.duration_us() >= self.config.latency_threshold_us;
        if anomalous || slow {
            self.retain(trace.clone(), anomalous);
        }
        let Some(ring) = self.rings.get(trace.shard).map(|r| &r.0) else {
            return;
        };
        if self.config.ring_capacity == 0 {
            self.ring_evicted_total.inc();
            return;
        }
        let mut ring = unpoisoned(ring.lock());
        while ring.len() >= self.config.ring_capacity {
            if let Some(old) = ring.pop_front() {
                recycle_spans(old.spans);
            }
            self.ring_evicted_total.inc();
        }
        ring.push_back(trace);
    }

    /// Admits a trace to the retention buffer, evicting the oldest
    /// retained traces until it fits. A trace larger than the whole
    /// budget is rejected outright (counted as evicted) — a
    /// content-deterministic decision, so anomaly-retention counts stay
    /// replay-stable.
    fn retain(&self, trace: TraceData, anomalous: bool) {
        let bytes = trace.approx_bytes();
        if bytes > self.config.retained_bytes {
            self.retention_evicted_total.inc();
            return;
        }
        let mut r = unpoisoned(self.retention.lock());
        while r.bytes.saturating_add(bytes) > self.config.retained_bytes {
            match r.traces.pop_front() {
                Some(old) => {
                    r.bytes = r.bytes.saturating_sub(old.approx_bytes());
                    self.retention_evicted_total.inc();
                }
                None => break,
            }
        }
        r.bytes += bytes;
        r.traces.push_back(trace);
        self.retained_bytes.set(r.bytes as i64);
        if anomalous {
            self.retained_anomaly_total.inc();
        } else {
            self.retained_slow_total.inc();
        }
    }

    /// Every retained trace, oldest first.
    pub fn retained(&self) -> Vec<TraceData> {
        unpoisoned(self.retention.lock())
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// Current byte footprint of the retention buffer.
    pub fn retention_bytes(&self) -> usize {
        unpoisoned(self.retention.lock()).bytes
    }

    /// Current length of each shard ring.
    pub fn ring_lens(&self) -> Vec<usize> {
        self.rings
            .iter()
            .map(|r| unpoisoned(r.0.lock()).len())
            .collect()
    }

    /// Total traces finished so far.
    pub fn traces_finished(&self) -> u64 {
        self.traces_total.get()
    }

    /// Every trace still in a ring, ordered by trace id.
    pub fn recent(&self) -> Vec<TraceData> {
        let mut out = Vec::new();
        for ring in &self.rings {
            out.extend(unpoisoned(ring.0.lock()).iter().cloned());
        }
        out.sort_by_key(|t| t.trace_id);
        out
    }

    /// Union of retained and recent traces, deduplicated, ordered by
    /// trace id — the export set.
    pub fn export_traces(&self) -> Vec<TraceData> {
        let mut all = self.retained();
        all.extend(self.recent());
        all.sort_by_key(|t| t.trace_id);
        all.dedup_by_key(|t| t.trace_id);
        all
    }

    /// Exported traces whose root span carries `field = value` — the
    /// per-bus timeline query when `field` is `"bus"`.
    pub fn timeline_for(&self, field: &str, value: u64) -> Vec<TraceData> {
        self.export_traces()
            .into_iter()
            .filter(|t| t.root_field_u64(field) == Some(value))
            .collect()
    }

    /// The export set as Chrome trace-event JSON (`chrome://tracing` /
    /// Perfetto loadable): one complete `"X"` event per span, `pid` =
    /// shard, `tid` = trace id, `ts`/`dur` in microseconds.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for t in &self.export_traces() {
            for sp in &t.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                chrome_event(&mut out, t, sp);
            }
        }
        out.push_str("]}");
        out
    }

    /// The export set in a deterministic line-oriented text form, for
    /// golden tests and terminal inspection: one header line per trace,
    /// one indented line per span.
    pub fn text_dump(&self) -> String {
        let mut out = String::new();
        for t in &self.export_traces() {
            out.push_str(&format!(
                "trace {} shard {} anomaly {}\n",
                t.trace_id,
                t.shard,
                t.anomaly.unwrap_or("-")
            ));
            for sp in &t.spans {
                for _ in 0..=sp.depth {
                    out.push_str("  ");
                }
                let parent = if sp.is_root() {
                    "-".to_string()
                } else {
                    sp.parent.to_string()
                };
                let end = if sp.end_us == OPEN_END {
                    "-".to_string()
                } else {
                    sp.end_us.to_string()
                };
                out.push_str(&format!(
                    "span {} parent {} {} start {} end {}",
                    sp.seq, parent, sp.name, sp.start_us, end
                ));
                for (k, v) in &sp.fields {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

impl Collect for Tracer {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        out.add_counter(
            metric_key("wilocator_trace_traces_total", labels),
            self.traces_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_trace_spans_total", labels),
            self.spans_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_trace_ring_evicted_total", labels),
            self.ring_evicted_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_trace_retained_anomaly_total", labels),
            self.retained_anomaly_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_trace_retained_slow_total", labels),
            self.retained_slow_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_trace_retention_evicted_total", labels),
            self.retention_evicted_total.get(),
        );
        out.add_gauge(
            metric_key("wilocator_trace_retained_bytes", labels),
            self.retained_bytes.get(),
        );
    }
}

/// Renders one span as a Chrome trace-event object.
fn chrome_event(out: &mut String, t: &TraceData, sp: &SpanData) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"wilocator\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
        json_escape(sp.name),
        sp.start_us,
        sp.duration_us(),
        t.shard,
        t.trace_id
    ));
    let mut first = true;
    if sp.is_root() {
        if let Some(a) = t.anomaly {
            out.push_str(&format!("\"anomaly\":\"{}\"", json_escape(a)));
            first = false;
        }
    } else {
        out.push_str(&format!("\"parent\":{}", sp.parent));
        first = false;
    }
    for (k, v) in &sp.fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(k), v.json()));
    }
    out.push_str("}}");
}

std::thread_local! {
    /// Recycled span vectors (capacity retained, contents cleared):
    /// ring eviction feeds the pool, [`Tracer::open_root`] drains it, so
    /// a warmed-up recorder opens traces without touching the allocator.
    /// Purely an allocation cache — trace *content* never flows through
    /// it, so replay determinism is unaffected.
    static SPAN_POOL: RefCell<Vec<Vec<SpanData>>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on pooled vectors per thread; beyond this they are freed.
const SPAN_POOL_CAP: usize = 64;

/// An empty span vector for a detailed trace's children, reusing a
/// pooled allocation when one is available.
fn pooled_children() -> Vec<SpanData> {
    let mut v = SPAN_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v
}

/// Returns a retired span vector to this thread's pool.
fn recycle_spans(mut v: Vec<SpanData>) {
    if v.capacity() == 0 {
        return;
    }
    v.clear();
    SPAN_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SPAN_POOL_CAP {
            pool.push(v);
        }
    });
}

/// SplitMix64 finalizer: spreads a structured sampling key (bus id ⊕
/// timestamp bits) uniformly so `mix64(key) % detail_every` samples
/// evenly even when keys share low bits.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Mutable trace state, thread-confined behind the context's `RefCell`.
///
/// The root span lives inline — a non-detailed trace that ends neither
/// anomalous nor slow is dropped without ever materialising a span
/// vector, taking a lock, or touching the pool.
#[derive(Debug)]
struct CtxInner {
    root: SpanData,
    /// Child spans in open order; `children[i]` has `seq == i + 1`.
    /// Empty (capacity 0) on a non-detailed trace.
    children: Vec<SpanData>,
    /// Stack of open child indices (into `children`); the innermost is
    /// last. The root sits implicitly below the stack — it stays open
    /// for the trace's whole life, and an empty stack means the root is
    /// innermost. Starting empty keeps the hot path free of this
    /// allocation.
    open: Vec<usize>,
    anomaly: Option<&'static str>,
    /// Caller-supplied root end stamp ([`TraceCtx::finish_at`]); when
    /// unset, the drop handler reads the clock itself.
    root_end: Option<u64>,
}

/// One in-flight trace. Dropping the context closes every open span and
/// publishes the finished trace to the tracer.
///
/// The context is deliberately `!Sync` (interior `RefCell`): a trace
/// belongs to the one thread serving its request.
#[derive(Debug)]
pub struct TraceCtx<'t> {
    tracer: &'t Tracer,
    shard: usize,
    trace_id: u64,
    detailed: bool,
    inner: RefCell<CtxInner>,
}

impl TraceCtx<'_> {
    /// The trace's unique id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// True when this trace records clock-stamped child spans; sampled
    /// by [`Tracer::start_root_span_keyed`], always true otherwise.
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }

    /// Closes the trace using a caller-supplied root end stamp instead
    /// of a fresh clock read — the hot path shares one stamp between
    /// the trace and its lock-hold histogram.
    pub fn finish_at(self, end_us: u64) {
        self.inner.borrow_mut().root_end = Some(end_us);
    }

    /// Annotates the innermost open span (the root when no child is
    /// open) with a structured field.
    pub fn field(&self, name: &'static str, value: impl Into<FieldValue>) {
        let mut inner = self.inner.borrow_mut();
        let CtxInner {
            root,
            children,
            open,
            ..
        } = &mut *inner;
        let sp = match open.last() {
            Some(&idx) => match children.get_mut(idx) {
                Some(sp) => sp,
                None => return,
            },
            None => root,
        };
        sp.fields.push(name, value.into());
    }

    /// Flags the trace as anomalous (first flag wins), guaranteeing
    /// retention regardless of latency.
    pub fn flag_anomaly(&self, kind: &'static str) {
        let mut inner = self.inner.borrow_mut();
        if inner.anomaly.is_none() {
            inner.anomaly = Some(kind);
        }
    }

    /// Opens a child span under the innermost open span. Bind the
    /// returned guard for the whole traced region (W006): the span
    /// closes when the guard drops. On a non-detailed trace the guard
    /// is inert — no span is recorded and no clock is read.
    pub fn child_span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.detailed {
            return SpanGuard {
                ctx: self,
                idx: NOOP_SPAN,
            };
        }
        // lint: allow(hot_path_effects) — stamp runs only under a detailed trace ctx; hot paths pass trace=None or sampled keyed spans
        let now = self.tracer.clock.now_us();
        let mut inner = self.inner.borrow_mut();
        let CtxInner { children, open, .. } = &mut *inner;
        // The root (seq 0) is the implicit bottom of the open stack;
        // children[i] carries seq i + 1.
        let parent = open.last().map(|&i| i as u32 + 1).unwrap_or(0);
        let depth = open.len() as u32 + 1;
        let idx = children.len();
        children.push(SpanData {
            seq: idx as u32 + 1,
            parent,
            depth,
            name,
            start_us: now,
            end_us: OPEN_END,
            fields: FieldList::new(),
        });
        open.push(idx);
        self.tracer.spans_total.inc();
        SpanGuard { ctx: self, idx }
    }
}

impl Drop for TraceCtx<'_> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.root_end.unwrap_or_else(|| self.tracer.clock.now_us());
        let CtxInner {
            root,
            children,
            open,
            anomaly,
            ..
        } = &mut *inner;
        // Close any children left open, then the implicitly open root.
        for &idx in open.iter() {
            if let Some(sp) = children.get_mut(idx) {
                if sp.end_us == OPEN_END {
                    sp.end_us = now;
                }
            }
        }
        open.clear();
        if root.end_us == OPEN_END {
            root.end_us = now;
        }
        self.tracer.traces_total.inc();
        // The flight recorder keeps detailed (sampled) traces plus
        // anything the tail sampler would retain; every other trace is
        // accounted and dropped right here — no span vector, no ring
        // lock, no pool traffic.
        let anomalous = anomaly.is_some();
        let slow = !anomalous && root.duration_us() >= self.tracer.config.latency_threshold_us;
        if !self.detailed && !anomalous && !slow {
            return;
        }
        let mut spans = std::mem::take(children);
        spans.insert(0, std::mem::replace(root, SpanData::placeholder()));
        let data = TraceData {
            trace_id: self.trace_id,
            shard: self.shard,
            anomaly: *anomaly,
            spans,
        };
        drop(inner);
        self.tracer.finish(data);
    }
}

/// Marker index for a guard on a non-detailed trace: every operation on
/// it is a no-op.
const NOOP_SPAN: usize = usize::MAX;

/// RAII guard for a child span: the span's end stamp is taken when the
/// guard drops (or [`SpanGuard::stop`] consumes it).
#[derive(Debug)]
pub struct SpanGuard<'c> {
    ctx: &'c TraceCtx<'c>,
    idx: usize,
}

impl SpanGuard<'_> {
    /// Annotates this span with a structured field.
    pub fn field(&self, name: &'static str, value: impl Into<FieldValue>) {
        if self.idx == NOOP_SPAN {
            return;
        }
        let mut inner = self.ctx.inner.borrow_mut();
        if let Some(sp) = inner.children.get_mut(self.idx) {
            sp.fields.push(name, value.into());
        }
    }

    /// Closes the span now (sugar for dropping the guard).
    pub fn stop(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.idx == NOOP_SPAN {
            return;
        }
        let now = self.ctx.tracer.clock.now_us();
        let mut inner = self.ctx.inner.borrow_mut();
        let CtxInner { children, open, .. } = &mut *inner;
        // Drop order can diverge from stack order only if a guard is
        // moved out of scope; truncating to this span's stack position
        // keeps later field() calls from attaching to a closed span.
        if let Some(pos) = open.iter().rposition(|&i| i == self.idx) {
            open.truncate(pos);
        }
        if let Some(sp) = children.get_mut(self.idx) {
            if sp.end_us == OPEN_END {
                sp.end_us = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SteppingClock;

    fn tracer(config: TraceConfig) -> Tracer {
        Tracer::new(config, 2, Arc::new(SteppingClock::new(0, 10)))
    }

    #[test]
    fn spans_nest_and_close_in_scope_order() {
        let t = tracer(TraceConfig::default());
        {
            let ctx = t.start_root_span(0, "ingest").unwrap();
            ctx.field("bus", 7u64);
            {
                let track = ctx.child_span("track");
                track.field("ranked_aps", 3u64);
                let locate = ctx.child_span("locate");
                locate.field("method", "exact");
            }
            ctx.child_span("commit").stop();
        }
        let traces = t.recent();
        assert_eq!(traces.len(), 1);
        let spans = &traces[0].spans;
        assert_eq!(spans.len(), 4);
        assert!(spans[0].is_root());
        assert_eq!(spans[1].name, "track");
        assert_eq!(spans[1].parent, 0);
        assert_eq!(spans[2].name, "locate");
        assert_eq!(spans[2].parent, 1);
        assert_eq!(spans[2].depth, 2);
        assert_eq!(spans[3].name, "commit");
        assert_eq!(spans[3].parent, 0);
        // Stepping clock: every stamp distinct, children inside parent.
        for sp in spans {
            assert!(sp.end_us >= sp.start_us);
            assert_ne!(sp.end_us, OPEN_END);
        }
        assert!(spans[1].start_us > spans[0].start_us);
        assert!(spans[0].end_us > spans[3].end_us);
        assert_eq!(traces[0].root_field_u64("bus"), Some(7));
    }

    #[test]
    fn tail_sampling_retains_slow_and_anomalous_only() {
        let config = TraceConfig {
            latency_threshold_us: 50,
            ..TraceConfig::default()
        };
        // Step 10 and a root with no children: duration 10 (fast).
        let t = tracer(config);
        drop(t.start_root_span(0, "fast"));
        assert!(t.retained().is_empty());
        // Enough child spans push the root past the threshold.
        {
            let ctx = t.start_root_span(0, "slow").unwrap();
            for _ in 0..4 {
                ctx.child_span("stage").stop();
            }
        }
        assert_eq!(t.retained().len(), 1);
        assert_eq!(t.retained_slow_total.get(), 1);
        // Anomalies retain regardless of latency.
        {
            let ctx = t.start_root_span(1, "bad").unwrap();
            ctx.flag_anomaly("unknown_bus");
            ctx.flag_anomaly("second_flag_ignored");
        }
        let retained = t.retained();
        assert_eq!(retained.len(), 2);
        assert_eq!(retained[1].anomaly, Some("unknown_bus"));
        assert_eq!(t.retained_anomaly_total.get(), 1);
        assert_eq!(t.traces_finished(), 3);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let config = TraceConfig {
            ring_capacity: 3,
            latency_threshold_us: u64::MAX,
            ..TraceConfig::default()
        };
        let t = tracer(config);
        for _ in 0..5 {
            drop(t.start_root_span(0, "r"));
        }
        let lens = t.ring_lens();
        assert_eq!(lens, vec![3, 0]);
        assert_eq!(t.ring_evicted_total.get(), 2);
        let recent = t.recent();
        assert_eq!(
            recent.iter().map(|x| x.trace_id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn zero_capacity_ring_records_nothing_and_does_not_hang() {
        let config = TraceConfig {
            ring_capacity: 0,
            latency_threshold_us: u64::MAX,
            ..TraceConfig::default()
        };
        let t = tracer(config);
        drop(t.start_root_span(0, "r"));
        assert!(t.recent().is_empty());
        assert_eq!(t.ring_evicted_total.get(), 1);
    }

    #[test]
    fn retention_respects_byte_cap() {
        let probe = tracer(TraceConfig::default());
        {
            let ctx = probe.start_root_span(0, "probe").unwrap();
            ctx.flag_anomaly("x");
        }
        let one = probe.retained()[0].approx_bytes();
        let config = TraceConfig {
            retained_bytes: one * 2 + one / 2,
            ..TraceConfig::default()
        };
        let t = tracer(config);
        for _ in 0..5 {
            let ctx = t.start_root_span(0, "a").unwrap();
            ctx.flag_anomaly("x");
        }
        assert_eq!(t.retained().len(), 2);
        assert!(t.retention_bytes() <= config.retained_bytes);
        assert_eq!(t.retained_anomaly_total.get(), 5);
        assert_eq!(t.retention_evicted_total.get(), 3);
        // Newest retained traces survive.
        assert_eq!(
            t.retained().iter().map(|x| x.trace_id).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn disabled_tracer_creates_no_contexts() {
        let config = TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        };
        let t = tracer(config);
        assert!(t.start_root_span(0, "r").is_none());
        assert_eq!(t.traces_finished(), 0);
    }

    #[test]
    fn timeline_filters_by_root_field() {
        let t = tracer(TraceConfig::default());
        for bus in [1u64, 2, 1] {
            let ctx = t.start_root_span(0, "ingest").unwrap();
            ctx.field("bus", bus);
        }
        let line = t.timeline_for("bus", 1);
        assert_eq!(line.len(), 2);
        assert_eq!(line[0].trace_id, 0);
        assert_eq!(line[1].trace_id, 2);
        assert!(t.timeline_for("bus", 9).is_empty());
    }

    #[test]
    fn chrome_export_has_required_keys_and_escapes() {
        let t = tracer(TraceConfig::default());
        {
            let ctx = t.start_root_span(1, "ingest").unwrap();
            ctx.field("bus", 7u64);
            ctx.flag_anomaly("unknown_bus");
            let sp = ctx.child_span("track");
            sp.field("note", "has \"quotes\"");
            sp.field("nan", f64::NAN);
        }
        let json = t.chrome_trace_json();
        for key in [
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":0",
            "\"name\":\"ingest\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"anomaly\":\"unknown_bus\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"nan\":\"NaN\""));
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn text_dump_is_deterministic() {
        let make = || {
            let t = tracer(TraceConfig::default());
            {
                let ctx = t.start_root_span(0, "ingest").unwrap();
                ctx.field("bus", 3u64);
                let sp = ctx.child_span("track");
                sp.field("s", 12.345f64);
            }
            t.text_dump()
        };
        let a = make();
        assert_eq!(a, make());
        assert!(a.contains("trace 0 shard 0 anomaly -"));
        assert!(a.contains("span 1 parent 0 track"));
        assert!(a.contains("s=12.35"));
    }

    #[test]
    fn collect_exports_trace_counter_families() {
        let t = tracer(TraceConfig::default());
        {
            let ctx = t.start_root_span(0, "r").unwrap();
            ctx.flag_anomaly("x");
        }
        let mut snap = MetricsSnapshot::new();
        t.collect_into("", &mut snap);
        assert_eq!(snap.counter("wilocator_trace_traces_total"), 1);
        assert_eq!(snap.counter("wilocator_trace_spans_total"), 1);
        assert_eq!(snap.counter("wilocator_trace_retained_anomaly_total"), 1);
        assert!(snap.gauge("wilocator_trace_retained_bytes") > 0);
    }
}

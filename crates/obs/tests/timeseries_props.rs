//! Property tests for the windowed time-series ring: conservation of
//! counter increments across arbitrary sampling cadences, window
//! monotonicity, and quantile sanity — the invariants the quality
//! plane's detectors lean on.

use std::sync::Arc;

use proptest::prelude::*;
use wilocator_obs::{
    MetricsSnapshot, SeriesKind, SteppingClock, TimeSeries, TimeSeriesConfig, WindowAgg,
};

const FAMILY: &str = "wilocator_props_total";

fn series(window_us: u64, windows: usize) -> TimeSeries {
    let mut ts = TimeSeries::new(
        TimeSeriesConfig { window_us, windows },
        Arc::new(SteppingClock::frozen(0)),
    );
    ts.track(FAMILY, SeriesKind::Counter);
    ts
}

fn counter_snapshot(total: u64) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    snap.add_counter(FAMILY, total);
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the sampling cadence and gaps, retained counter deltas
    /// never invent or double-count increments: the sum of every
    /// retained window's delta is at most (final − first) observed, and
    /// exactly that when nothing rotated out of the ring.
    #[test]
    fn counter_deltas_conserve_increments(
        window_us in 1_000u64..1_000_000,
        windows in 2usize..12,
        steps in proptest::collection::vec((1u64..500_000, 0u64..1_000), 1..40),
    ) {
        let mut ts = series(window_us, windows);
        let mut now = 0u64;
        let mut total = 0u64;
        ts.sample_at(now, &counter_snapshot(total));
        let mut rotated_out = false;
        let first_seen = total;
        for (advance, inc) in steps {
            now += advance;
            total += inc;
            ts.sample_at(now, &counter_snapshot(total));
            if now / window_us >= windows as u64 {
                rotated_out = true;
            }
        }
        let view = ts.view();
        let points = &view.iter().find(|v| v.family == FAMILY).expect("tracked").points;
        let sum: u64 = points
            .iter()
            .map(|p| match p.agg {
                WindowAgg::Counter { delta, .. } => delta,
                _ => 0,
            })
            .sum();
        prop_assert!(sum <= total - first_seen, "sum {sum} > {}", total - first_seen);
        if !rotated_out {
            prop_assert_eq!(sum, total - first_seen);
        }
    }

    /// Window starts are strictly increasing, aligned to the window
    /// grid, and never more than `windows + 1` are retained.
    #[test]
    fn windows_are_monotone_aligned_and_bounded(
        window_us in 1_000u64..1_000_000,
        windows in 1usize..10,
        steps in proptest::collection::vec(1u64..2_000_000, 1..50),
    ) {
        let mut ts = series(window_us, windows);
        let mut now = 0u64;
        for advance in steps {
            now += advance;
            ts.sample_at(now, &counter_snapshot(now / 7));
        }
        let view = ts.view();
        let points = &view.iter().find(|v| v.family == FAMILY).expect("tracked").points;
        prop_assert!(points.len() <= windows + 1, "{} points", points.len());
        let mut prev: Option<u64> = None;
        for p in points {
            prop_assert_eq!(p.start_us % window_us, 0, "unaligned window start");
            if let Some(prev) = prev {
                prop_assert!(p.start_us > prev, "non-monotone window starts");
            }
            prev = Some(p.start_us);
        }
    }

    /// `recent_counter_delta(n)` equals summing the last `n` retained
    /// points by hand — the detector arithmetic and the published view
    /// must agree.
    #[test]
    fn recent_delta_matches_view(
        window_us in 10_000u64..200_000,
        steps in proptest::collection::vec((1u64..300_000, 0u64..100), 1..30),
        n in 1usize..8,
    ) {
        let mut ts = series(window_us, 6);
        let mut now = 0u64;
        let mut total = 0u64;
        ts.sample_at(now, &counter_snapshot(total));
        for (advance, inc) in steps {
            now += advance;
            total += inc;
            ts.sample_at(now, &counter_snapshot(total));
        }
        let view = ts.view();
        let points = &view.iter().find(|v| v.family == FAMILY).expect("tracked").points;
        let by_hand: u64 = points
            .iter()
            .rev()
            .take(n)
            .map(|p| match p.agg {
                WindowAgg::Counter { delta, .. } => delta,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(ts.recent_counter_delta(FAMILY, n), by_hand);
    }

    /// Histogram window quantiles are monotone (p50 <= p90 <= p99) and
    /// bounded by the window's recorded extremes' bucket uppers.
    #[test]
    fn histogram_quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let mut ts = TimeSeries::new(
            TimeSeriesConfig { window_us: 1_000_000, windows: 4 },
            Arc::new(SteppingClock::frozen(0)),
        );
        ts.track("wilocator_props_us", SeriesKind::Histogram);
        let hist = wilocator_obs::Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut snap = MetricsSnapshot::new();
        snap.add_histogram("wilocator_props_us", hist.snapshot());
        let mut ts2 = ts;
        ts2.sample_at(0, &MetricsSnapshot::new());
        ts2.sample_at(1, &snap);
        let view = ts2.view();
        let points = &view
            .iter()
            .find(|v| v.family == "wilocator_props_us")
            .expect("tracked")
            .points;
        let Some(&WindowAgg::Histogram { count, p50, p90, p99 }) =
            points.last().map(|p| &p.agg)
        else {
            panic!("open histogram window must exist");
        };
        prop_assert_eq!(count, values.len() as u64);
        prop_assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
    }
}

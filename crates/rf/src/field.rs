//! Mean signal fields: the contract between the channel and the SVD.

use wilocator_geo::{GridIndex, Point};

use crate::ap::{AccessPoint, ApId};
use crate::pathloss::{LogDistance, PathLoss};
use crate::shadowing::ShadowingField;
use crate::NOISE_FLOOR_DBM;

/// A deterministic mean-RSS field over a set of access points.
///
/// `expected_rss` must return the *mean* received signal strength (dBm) a
/// device at `p` would measure from `ap` — fast fading is added separately
/// per scan. The Signal Voronoi Diagram (Definition 1 of the paper) is the
/// partition of the plane induced by `argmax` over APs of this function.
pub trait SignalField: std::fmt::Debug + Send + Sync {
    /// The access points generating this field, indexable by [`ApId`].
    fn aps(&self) -> &[AccessPoint];

    /// Mean RSS (dBm) from `ap` at point `p`.
    fn expected_rss(&self, ap: &AccessPoint, p: Point) -> f64;

    /// Looks an AP up by id (ids are dense indices in this crate).
    fn ap(&self, id: ApId) -> Option<&AccessPoint> {
        self.aps().get(id.0 as usize)
    }

    /// All APs whose mean RSS at `p` exceeds `threshold_dbm`, strongest
    /// first, as `(ApId, rss)` pairs.
    fn detectable_at(&self, p: Point, threshold_dbm: f64) -> Vec<(ApId, f64)> {
        let mut out: Vec<(ApId, f64)> = self
            .aps()
            .iter()
            .map(|ap| (ap.id(), self.expected_rss(ap, p)))
            .filter(|&(_, rss)| rss >= threshold_dbm)
            .collect();
        // RSS values can be arbitrary field outputs; `total_cmp` orders
        // them without a panic path (NaN sorts below every number here,
        // i.e. weakest).
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// Builds a bucket index over AP positions for radius queries.
///
/// Shared helper for scanners and the SVD rasteriser: both repeatedly ask
/// "which APs could possibly be heard here?".
pub fn ap_index(aps: &[AccessPoint], bucket_m: f64) -> GridIndex<ApId> {
    let mut idx = GridIndex::new(bucket_m);
    for ap in aps {
        idx.insert(ap.position(), ap.id());
    }
    idx
}

/// The server-side field: homogeneous propagation from geo-tags only.
///
/// This encodes the paper's §V-A assumption — the back end knows AP
/// positions (from Google Maps / Shaw Go WiFi geo-tags) but not their
/// transmit powers or environments, so it "simply regard\[s\] that all the
/// factors affecting signal propagation are the same for APs". APs without
/// a geo-tag are excluded, as in the paper.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_rf::{AccessPoint, ApId, HomogeneousField, SignalField};
///
/// let aps = vec![
///     AccessPoint::new(ApId(0), Point::new(0.0, 0.0)),
///     AccessPoint::new(ApId(1), Point::new(100.0, 0.0)),
/// ];
/// let field = HomogeneousField::new(aps);
/// // Close to AP0, it dominates.
/// let ranked = field.detectable_at(Point::new(10.0, 0.0), -90.0);
/// assert_eq!(ranked[0].0, ApId(0));
/// ```
#[derive(Debug, Clone)]
pub struct HomogeneousField {
    aps: Vec<AccessPoint>,
    model: LogDistance,
    assumed_tx_dbm: f64,
}

impl HomogeneousField {
    /// Creates the field with the default urban model and 20 dBm assumed
    /// transmit power. APs are indexable by id: `aps[i].id() == ApId(i)` is
    /// expected (the deployment generators uphold this).
    pub fn new(aps: Vec<AccessPoint>) -> Self {
        HomogeneousField {
            aps,
            model: LogDistance::urban(),
            assumed_tx_dbm: 20.0,
        }
    }

    /// Overrides the propagation model (builder style).
    pub fn with_model(mut self, model: LogDistance) -> Self {
        self.model = model;
        self
    }

    /// Overrides the assumed common transmit power (builder style).
    pub fn with_assumed_tx_dbm(mut self, dbm: f64) -> Self {
        self.assumed_tx_dbm = dbm;
        self
    }

    /// Returns a copy of this field without the given APs — the paper's AP
    /// dynamics scenario ("suppose that the AP b is out of function").
    pub fn without_aps(&self, dead: &[ApId]) -> HomogeneousField {
        let mut f = self.clone();
        f.aps.retain(|ap| !dead.contains(&ap.id()));
        f
    }
}

impl SignalField for HomogeneousField {
    fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    fn ap(&self, id: ApId) -> Option<&AccessPoint> {
        // Ids may be sparse after `without_aps`; fall back to a scan.
        self.aps
            .get(id.0 as usize)
            .filter(|ap| ap.id() == id)
            .or_else(|| self.aps.iter().find(|ap| ap.id() == id))
    }

    fn expected_rss(&self, ap: &AccessPoint, p: Point) -> f64 {
        if !ap.is_geo_tagged() {
            return NOISE_FLOOR_DBM - 100.0;
        }
        self.model
            .rss_dbm(self.assumed_tx_dbm, ap.position().distance(p))
    }
}

/// The simulator-side ground-truth field: per-AP transmit power, an
/// arbitrary path-loss model and correlated shadowing.
///
/// The mean channel a real phone experiences; [`crate::Scanner`] adds fast
/// fading and quantisation on top.
#[derive(Debug, Clone)]
pub struct PhysicalField<M: PathLoss = LogDistance> {
    aps: Vec<AccessPoint>,
    model: M,
    shadowing: ShadowingField,
}

impl<M: PathLoss> PhysicalField<M> {
    /// Creates the ground-truth field.
    pub fn new(aps: Vec<AccessPoint>, model: M, shadowing: ShadowingField) -> Self {
        PhysicalField {
            aps,
            model,
            shadowing,
        }
    }

    /// The shadowing component.
    pub fn shadowing(&self) -> &ShadowingField {
        &self.shadowing
    }

    /// The path-loss model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Returns a copy of this field without the given APs (AP churn).
    pub fn without_aps(&self, dead: &[ApId]) -> PhysicalField<M>
    where
        M: Clone,
    {
        let mut f = self.clone();
        f.aps.retain(|ap| !dead.contains(&ap.id()));
        f
    }
}

impl<M: PathLoss> SignalField for PhysicalField<M> {
    fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    fn ap(&self, id: ApId) -> Option<&AccessPoint> {
        self.aps
            .get(id.0 as usize)
            .filter(|ap| ap.id() == id)
            .or_else(|| self.aps.iter().find(|ap| ap.id() == id))
    }

    fn expected_rss(&self, ap: &AccessPoint, p: Point) -> f64 {
        self.model
            .rss_dbm(ap.tx_power_dbm(), ap.position().distance(p))
            + self.shadowing.shadow_db(ap.id(), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_aps() -> Vec<AccessPoint> {
        vec![
            AccessPoint::new(ApId(0), Point::new(0.0, 0.0)),
            AccessPoint::new(ApId(1), Point::new(100.0, 0.0)),
        ]
    }

    #[test]
    fn homogeneous_nearest_ap_dominates() {
        let f = HomogeneousField::new(two_aps());
        let near0 = f.detectable_at(Point::new(20.0, 0.0), -200.0);
        assert_eq!(near0[0].0, ApId(0));
        let near1 = f.detectable_at(Point::new(80.0, 0.0), -200.0);
        assert_eq!(near1[0].0, ApId(1));
    }

    #[test]
    fn homogeneous_midpoint_is_a_tie() {
        let f = HomogeneousField::new(two_aps());
        let mid = Point::new(50.0, 0.0);
        let a = f.expected_rss(&f.aps()[0], mid);
        let b = f.expected_rss(&f.aps()[1], mid);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn non_geo_tagged_ap_is_ignored_by_server_field() {
        let mut aps = two_aps();
        aps[1] = aps[1].clone().without_geo_tag();
        let f = HomogeneousField::new(aps);
        let ranked = f.detectable_at(Point::new(80.0, 0.0), -90.0);
        assert!(ranked.iter().all(|&(id, _)| id == ApId(0)));
    }

    #[test]
    fn detectable_is_sorted_desc() {
        let f = HomogeneousField::new(two_aps());
        let ranked = f.detectable_at(Point::new(30.0, 5.0), -200.0);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn threshold_filters() {
        let f = HomogeneousField::new(two_aps());
        // 20 dBm − 40 − 30·log10(d): at d = 400 m RSS ≈ −98 dBm.
        let ranked = f.detectable_at(Point::new(500.0, 0.0), -90.0);
        assert!(ranked.is_empty());
    }

    #[test]
    fn without_aps_removes_site() {
        let f = HomogeneousField::new(two_aps()).without_aps(&[ApId(0)]);
        assert_eq!(f.aps().len(), 1);
        assert_eq!(f.ap(ApId(1)).unwrap().id(), ApId(1));
        assert!(f.ap(ApId(0)).is_none());
    }

    #[test]
    fn physical_field_heterogeneous_power_shifts_dominance() {
        let mut aps = two_aps();
        aps[1] = aps[1].clone().with_tx_power_dbm(35.0); // hot AP
        let f = PhysicalField::new(aps, LogDistance::urban(), ShadowingField::disabled());
        // Midpoint now clearly favours the hot AP — the case where the true
        // SVD differs from the Euclidean VD.
        let mid = Point::new(50.0, 0.0);
        let ranked = f.detectable_at(mid, -200.0);
        assert_eq!(ranked[0].0, ApId(1));
    }

    #[test]
    fn physical_field_includes_shadowing() {
        let aps = two_aps();
        let with = PhysicalField::new(
            aps.clone(),
            LogDistance::urban(),
            ShadowingField::new(8.0, 50.0, 3),
        );
        let without = PhysicalField::new(aps, LogDistance::urban(), ShadowingField::disabled());
        let p = Point::new(33.0, 12.0);
        let a = with.expected_rss(&with.aps()[0], p);
        let b = without.expected_rss(&without.aps()[0], p);
        assert_ne!(a, b);
    }

    #[test]
    fn ap_index_radius_query() {
        let idx = ap_index(&two_aps(), 50.0);
        let near: Vec<_> = idx.within(Point::new(10.0, 0.0), 30.0).collect();
        assert_eq!(near.len(), 1);
        assert_eq!(*near[0].2, ApId(0));
    }
}

//! WiFi scan simulation: fast fading, quantisation, detection.
//!
//! A scan is what a rider's smartphone reports to the WiLocator back end
//! every scan period (10 s in the paper's prototype): the list of heard
//! BSSIDs with their instantaneous RSS. Instantaneous readings differ from
//! the mean field by fast fading and receiver quantisation — the noise that
//! "can vary up to more than 10 db" at a static point and that the
//! rank-based SVD is designed to tolerate.

use rand::Rng;
use wilocator_geo::Point;

use crate::ap::{ApId, Bssid};
use crate::field::SignalField;

/// One AP heard in a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reading {
    /// The AP id (resolved from the BSSID by the server).
    pub ap: ApId,
    /// The radio's BSSID as it appears over the air.
    pub bssid: Bssid,
    /// Quantised received signal strength, dBm.
    pub rss_dbm: i32,
}

/// A single WiFi scan: a timestamp plus the readings heard.
///
/// # Examples
///
/// ```
/// use wilocator_rf::{ApId, Bssid, Reading, Scan};
/// let scan = Scan::new(12.0, vec![
///     Reading { ap: ApId(1), bssid: Bssid::from_ap_id(ApId(1)), rss_dbm: -61 },
///     Reading { ap: ApId(0), bssid: Bssid::from_ap_id(ApId(0)), rss_dbm: -48 },
/// ]);
/// assert_eq!(scan.ranked()[0].0, ApId(0)); // strongest first
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// Simulation time of the scan, seconds.
    pub time_s: f64,
    /// Readings, in arbitrary order.
    pub readings: Vec<Reading>,
}

impl Scan {
    /// Creates a scan from a timestamp and readings.
    pub fn new(time_s: f64, readings: Vec<Reading>) -> Self {
        Scan { time_s, readings }
    }

    /// True when nothing was heard.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Readings ordered strongest-first, ties broken by AP id for
    /// determinism, as `(ApId, rss)` pairs. This order *is* the RSS rank
    /// list of the paper (e.g. "(b, a, d)" in Fig. 2).
    pub fn ranked(&self) -> Vec<(ApId, i32)> {
        let mut v: Vec<(ApId, i32)> = self.readings.iter().map(|r| (r.ap, r.rss_dbm)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// RSS of a given AP in this scan, if heard.
    pub fn rss_of(&self, ap: ApId) -> Option<i32> {
        self.readings.iter().find(|r| r.ap == ap).map(|r| r.rss_dbm)
    }
}

/// Configuration of the scan simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannerConfig {
    /// Hardware detection threshold, dBm: beacons weaker than this (after
    /// fading) are not decoded.
    pub detection_threshold_dbm: f64,
    /// Standard deviation of per-scan fast fading, dB.
    pub fading_sigma_db: f64,
    /// Probability that a beacon above threshold is nevertheless missed
    /// (collisions, scan-window misalignment).
    pub miss_probability: f64,
    /// Maximum radius, metres, within which APs are even considered
    /// (performance bound; generous relative to the radio range).
    pub max_range_m: f64,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            detection_threshold_dbm: -90.0,
            fading_sigma_db: 4.0,
            miss_probability: 0.02,
            max_range_m: 600.0,
        }
    }
}

/// Simulates smartphone WiFi scans against a ground-truth signal field.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wilocator_geo::Point;
/// use wilocator_rf::{
///     AccessPoint, ApId, LogDistance, PhysicalField, Scanner, ShadowingField,
/// };
///
/// let aps = vec![AccessPoint::new(ApId(0), Point::new(0.0, 0.0))];
/// let field = PhysicalField::new(aps, LogDistance::urban(), ShadowingField::disabled());
/// let scanner = Scanner::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let scan = scanner.scan(&field, Point::new(5.0, 0.0), 0.0, &mut rng);
/// assert!(!scan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scanner {
    config: ScannerConfig,
}

impl Scanner {
    /// Creates a scanner with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fading_sigma_db` is negative, `miss_probability` is
    /// outside `[0, 1]`, or `max_range_m` is not strictly positive.
    pub fn new(config: ScannerConfig) -> Self {
        assert!(config.fading_sigma_db >= 0.0, "fading sigma must be >= 0");
        assert!(
            (0.0..=1.0).contains(&config.miss_probability),
            "miss probability must be in [0, 1]"
        );
        assert!(config.max_range_m > 0.0, "max range must be positive");
        Scanner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScannerConfig {
        &self.config
    }

    /// Performs one scan at position `p` and time `time_s`.
    ///
    /// Every AP within `max_range_m` gets its mean RSS from `field`, plus a
    /// Gaussian fading draw; beacons above the detection threshold survive a
    /// further random miss check and are quantised to integer dBm.
    pub fn scan<F, R>(&self, field: &F, p: Point, time_s: f64, rng: &mut R) -> Scan
    where
        F: SignalField + ?Sized,
        R: Rng + ?Sized,
    {
        self.scan_candidates(field, field.aps().iter(), p, time_s, rng)
    }

    /// Like [`Scanner::scan`] but only considers the supplied candidate
    /// APs — callers with a spatial index (see
    /// [`crate::field::ap_index`]) pass the APs near `p` and avoid the
    /// full O(#APs) sweep at every scan tick.
    pub fn scan_candidates<'a, F, I, R>(
        &self,
        field: &F,
        candidates: I,
        p: Point,
        time_s: f64,
        rng: &mut R,
    ) -> Scan
    where
        F: SignalField + ?Sized,
        I: IntoIterator<Item = &'a crate::AccessPoint>,
        R: Rng + ?Sized,
    {
        let mut readings = Vec::new();
        for ap in candidates {
            if ap.position().distance(p) > self.config.max_range_m {
                continue;
            }
            let mean = field.expected_rss(ap, p);
            let faded = mean + gauss(rng) * self.config.fading_sigma_db;
            if faded < self.config.detection_threshold_dbm {
                continue;
            }
            if self.config.miss_probability > 0.0 && rng.gen::<f64>() < self.config.miss_probability
            {
                continue;
            }
            readings.push(Reading {
                ap: ap.id(),
                bssid: ap.bssid(),
                rss_dbm: faded.round() as i32,
            });
        }
        Scan::new(time_s, readings)
    }
}

/// Standard normal draw from any RNG (Box–Muller).
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::PhysicalField;
    use crate::pathloss::LogDistance;
    use crate::shadowing::ShadowingField;
    use crate::AccessPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field() -> PhysicalField {
        let aps = vec![
            AccessPoint::new(ApId(0), Point::new(0.0, 0.0)),
            AccessPoint::new(ApId(1), Point::new(60.0, 0.0)),
            AccessPoint::new(ApId(2), Point::new(5_000.0, 0.0)), // far away
        ];
        PhysicalField::new(aps, LogDistance::urban(), ShadowingField::disabled())
    }

    #[test]
    fn nearby_aps_heard_far_aps_not() {
        let scanner = Scanner::default();
        let mut rng = StdRng::seed_from_u64(7);
        let scan = scanner.scan(&field(), Point::new(10.0, 0.0), 0.0, &mut rng);
        assert!(scan.rss_of(ApId(0)).is_some());
        assert!(scan.rss_of(ApId(2)).is_none());
    }

    #[test]
    fn ranked_order_strongest_first() {
        let scanner = Scanner::new(ScannerConfig {
            fading_sigma_db: 0.0,
            miss_probability: 0.0,
            ..ScannerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let scan = scanner.scan(&field(), Point::new(10.0, 0.0), 0.0, &mut rng);
        let ranked = scan.ranked();
        assert_eq!(ranked[0].0, ApId(0));
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn zero_noise_scan_matches_mean_field() {
        let f = field();
        let scanner = Scanner::new(ScannerConfig {
            fading_sigma_db: 0.0,
            miss_probability: 0.0,
            ..ScannerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let p = Point::new(10.0, 0.0);
        let scan = scanner.scan(&f, p, 0.0, &mut rng);
        let mean = crate::SignalField::expected_rss(&f, &f.aps()[0], p);
        assert_eq!(scan.rss_of(ApId(0)).unwrap(), mean.round() as i32);
    }

    #[test]
    fn fading_perturbs_readings_between_scans() {
        let scanner = Scanner::default();
        let mut rng = StdRng::seed_from_u64(3);
        let p = Point::new(10.0, 0.0);
        let f = field();
        let a = scanner.scan(&f, p, 0.0, &mut rng);
        let b = scanner.scan(&f, p, 10.0, &mut rng);
        // With σ = 4 dB two scans almost surely differ somewhere.
        assert_ne!(a.readings, b.readings);
    }

    #[test]
    fn miss_probability_one_hears_nothing() {
        let scanner = Scanner::new(ScannerConfig {
            miss_probability: 1.0,
            ..ScannerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let scan = scanner.scan(&field(), Point::new(10.0, 0.0), 0.0, &mut rng);
        assert!(scan.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let scanner = Scanner::default();
        let f = field();
        let p = Point::new(20.0, 3.0);
        let a = scanner.scan(&f, p, 0.0, &mut StdRng::seed_from_u64(11));
        let b = scanner.scan(&f, p, 0.0, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn rank_ties_break_by_ap_id() {
        let scan = Scan::new(
            0.0,
            vec![
                Reading {
                    ap: ApId(5),
                    bssid: Bssid::from_ap_id(ApId(5)),
                    rss_dbm: -60,
                },
                Reading {
                    ap: ApId(2),
                    bssid: Bssid::from_ap_id(ApId(2)),
                    rss_dbm: -60,
                },
            ],
        );
        let ranked = scan.ranked();
        assert_eq!(ranked[0].0, ApId(2));
        assert_eq!(ranked[1].0, ApId(5));
    }

    #[test]
    #[should_panic(expected = "miss probability")]
    fn invalid_config_rejected() {
        let _ = Scanner::new(ScannerConfig {
            miss_probability: 1.5,
            ..ScannerConfig::default()
        });
    }
}

#[cfg(test)]
mod candidate_tests {
    use super::*;
    use crate::field::{ap_index, PhysicalField};
    use crate::pathloss::LogDistance;
    use crate::shadowing::ShadowingField;
    use crate::AccessPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn candidate_scan_matches_full_scan() {
        let aps: Vec<AccessPoint> = (0..40)
            .map(|i| AccessPoint::new(ApId(i), wilocator_geo::Point::new(i as f64 * 50.0, 0.0)))
            .collect();
        let field = PhysicalField::new(aps, LogDistance::urban(), ShadowingField::disabled());
        let idx = ap_index(field.aps(), 200.0);
        let scanner = Scanner::default();
        let p = wilocator_geo::Point::new(500.0, 10.0);
        let full = scanner.scan(&field, p, 0.0, &mut StdRng::seed_from_u64(9));
        let cands: Vec<&AccessPoint> = idx
            .within(p, scanner.config().max_range_m)
            .map(|(_, _, &id)| &field.aps()[id.0 as usize])
            .collect();
        // Same candidate *set* must be heard; RNG order differs, so compare
        // AP id sets rather than exact readings.
        let indexed = scanner.scan_candidates(&field, cands, p, 0.0, &mut StdRng::seed_from_u64(9));
        let mut a: Vec<ApId> = full.readings.iter().map(|r| r.ap).collect();
        let mut b: Vec<ApId> = indexed.readings.iter().map(|r| r.ap).collect();
        a.sort_unstable();
        b.sort_unstable();
        // Both scans hear only APs within range; sets can differ by the
        // random miss draw, so just check plausibility bounds.
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.len() <= 13 && b.len() <= 13);
    }
}

//! Access-point identity and metadata.

use wilocator_geo::Point;

/// Stable numeric identifier of an access point within a deployment.
///
/// The Signal Voronoi Diagram refers to APs (its *sites* or *generators*)
/// through this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AP{}", self.0)
    }
}

impl From<u32> for ApId {
    fn from(v: u32) -> Self {
        ApId(v)
    }
}

/// An IEEE 802.11 BSSID (MAC address of the radio).
///
/// Stored as the low 48 bits of a `u64`; formats like a MAC address.
///
/// # Examples
///
/// ```
/// use wilocator_rf::Bssid;
/// let b = Bssid::new(0x02_00_00_00_00_2a);
/// assert_eq!(b.to_string(), "02:00:00:00:00:2a");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bssid(u64);

impl Bssid {
    /// Creates a BSSID from its 48-bit integer value.
    ///
    /// # Panics
    ///
    /// Panics if bits above the low 48 are set.
    pub fn new(raw: u64) -> Self {
        assert!(raw <= 0xFFFF_FFFF_FFFF, "BSSID is 48 bits");
        Bssid(raw)
    }

    /// A locally administered BSSID derived from an [`ApId`] — the scheme
    /// the simulator uses to mint unique, valid-looking MACs.
    pub fn from_ap_id(id: ApId) -> Self {
        // 0x02 prefix = locally administered, unicast.
        Bssid(0x02_00_00_00_00_00 | id.0 as u64)
    }

    /// The 48-bit integer value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Bssid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[2], b[3], b[4], b[5], b[6], b[7]
        )
    }
}

/// A WiFi access point: identity, geo-tag and radio parameters.
///
/// Mirrors what WiLocator's back-end knows about an AP: SSID/BSSID from
/// scans, position from the geo-tag database (Google Maps / Shaw Go WiFi in
/// the paper), and — only inside the simulator — the true transmit power.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_rf::{AccessPoint, ApId};
///
/// let ap = AccessPoint::new(ApId(3), Point::new(12.0, -4.0))
///     .with_ssid("ShawOpen")
///     .with_tx_power_dbm(18.0);
/// assert_eq!(ap.ssid(), "ShawOpen");
/// assert!(ap.is_geo_tagged());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPoint {
    id: ApId,
    bssid: Bssid,
    ssid: String,
    position: Point,
    tx_power_dbm: f64,
    channel: u8,
    geo_tagged: bool,
}

/// Default transmit power for curbside APs, dBm (typical 802.11 limit).
pub const DEFAULT_TX_POWER_DBM: f64 = 20.0;

impl AccessPoint {
    /// Creates a geo-tagged AP at `position` with default radio parameters.
    pub fn new(id: ApId, position: Point) -> Self {
        AccessPoint {
            id,
            bssid: Bssid::from_ap_id(id),
            ssid: format!("wilocator-{}", id.0),
            position,
            tx_power_dbm: DEFAULT_TX_POWER_DBM,
            channel: 1 + (id.0 % 11) as u8,
            geo_tagged: true,
        }
    }

    /// Sets the SSID (builder style).
    pub fn with_ssid(mut self, ssid: impl Into<String>) -> Self {
        self.ssid = ssid.into();
        self
    }

    /// Sets the transmit power in dBm (builder style).
    pub fn with_tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Sets the 2.4 GHz channel (builder style).
    pub fn with_channel(mut self, channel: u8) -> Self {
        self.channel = channel;
        self
    }

    /// Marks the AP as lacking a geo-tag. The paper ignores readings from
    /// unknown APs during SVD construction (§V-A).
    pub fn without_geo_tag(mut self) -> Self {
        self.geo_tagged = false;
        self
    }

    /// The AP's identifier.
    pub fn id(&self) -> ApId {
        self.id
    }

    /// The AP's BSSID.
    pub fn bssid(&self) -> Bssid {
        self.bssid
    }

    /// The AP's SSID.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// Geo-tagged position in the local planar frame.
    pub fn position(&self) -> Point {
        self.position
    }

    /// True transmit power, dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// 2.4 GHz channel number.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// Whether the position of this AP is known to the server.
    pub fn is_geo_tagged(&self) -> bool {
        self.geo_tagged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bssid_formats_as_mac() {
        assert_eq!(
            Bssid::new(0xaa_bb_cc_dd_ee_ff).to_string(),
            "aa:bb:cc:dd:ee:ff"
        );
    }

    #[test]
    fn bssid_from_ap_id_unique_and_local() {
        let a = Bssid::from_ap_id(ApId(1));
        let b = Bssid::from_ap_id(ApId(2));
        assert_ne!(a, b);
        assert_eq!(a.raw() >> 40, 0x02);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn bssid_rejects_oversized() {
        let _ = Bssid::new(1 << 48);
    }

    #[test]
    fn builder_roundtrip() {
        let ap = AccessPoint::new(ApId(9), Point::new(1.0, 2.0))
            .with_ssid("cafe")
            .with_tx_power_dbm(15.0)
            .with_channel(6)
            .without_geo_tag();
        assert_eq!(ap.id(), ApId(9));
        assert_eq!(ap.ssid(), "cafe");
        assert_eq!(ap.tx_power_dbm(), 15.0);
        assert_eq!(ap.channel(), 6);
        assert!(!ap.is_geo_tagged());
        assert_eq!(ap.position(), Point::new(1.0, 2.0));
    }

    #[test]
    fn default_channel_is_valid() {
        for i in 0..30 {
            let ap = AccessPoint::new(ApId(i), Point::ORIGIN);
            assert!((1..=11).contains(&ap.channel()));
        }
    }

    #[test]
    fn ap_id_display() {
        assert_eq!(ApId(17).to_string(), "AP17");
    }
}

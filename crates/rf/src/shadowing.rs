//! Spatially correlated log-normal shadowing.
//!
//! Shadowing is the slowly varying, position-dependent attenuation caused by
//! buildings and foliage. It is the term that makes the *true* Signal
//! Voronoi Edges deviate from straight Euclidean bisectors (the paper:
//! "the SVE is not necessarily a straight-line"), so reproducing it is
//! essential for exercising the rank-based scheme's robustness.
//!
//! The field is generated as *value noise*: i.i.d. `N(0, σ²)` draws on an
//! integer lattice with spacing equal to the decorrelation distance,
//! deterministic in `(seed, AP, lattice point)`, bilinearly interpolated in
//! between. This gives a stationary field with variance ≤ σ² and correlation
//! length on the order of the lattice spacing — the standard Gudmundson-style
//! behaviour — while needing no storage and no RNG state.

use wilocator_geo::Point;

use crate::ap::ApId;

/// A deterministic, spatially correlated shadowing field.
///
/// # Examples
///
/// ```
/// use wilocator_geo::Point;
/// use wilocator_rf::ShadowingField;
/// use wilocator_rf::ApId;
///
/// let f = ShadowingField::new(6.0, 50.0, 42);
/// let a = f.shadow_db(ApId(0), Point::new(10.0, 10.0));
/// let b = f.shadow_db(ApId(0), Point::new(10.5, 10.0)); // 0.5 m away
/// assert!((a - b).abs() < 1.0); // nearby points are correlated
/// assert_eq!(a, f.shadow_db(ApId(0), Point::new(10.0, 10.0))); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowingField {
    sigma_db: f64,
    correlation_m: f64,
    seed: u64,
}

impl ShadowingField {
    /// Creates a field with standard deviation `sigma_db` dB and
    /// decorrelation distance `correlation_m` metres.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or `correlation_m` is not strictly
    /// positive.
    pub fn new(sigma_db: f64, correlation_m: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0, "shadowing sigma must be non-negative");
        assert!(correlation_m > 0.0, "correlation distance must be positive");
        ShadowingField {
            sigma_db,
            correlation_m,
            seed,
        }
    }

    /// A field that adds no shadowing at all.
    pub fn disabled() -> Self {
        ShadowingField::new(0.0, 1.0, 0)
    }

    /// The configured standard deviation, dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// The configured decorrelation distance, metres.
    pub fn correlation_m(&self) -> f64 {
        self.correlation_m
    }

    /// Shadowing attenuation (dB, signed) experienced by a receiver at `p`
    /// from access point `ap`.
    pub fn shadow_db(&self, ap: ApId, p: Point) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let gx = p.x / self.correlation_m;
        let gy = p.y / self.correlation_m;
        let x0 = gx.floor();
        let y0 = gy.floor();
        let fx = gx - x0;
        let fy = gy - y0;
        let (x0, y0) = (x0 as i64, y0 as i64);

        let g = |ix: i64, iy: i64| self.lattice_gauss(ap, ix, iy);
        let v00 = g(x0, y0);
        let v10 = g(x0 + 1, y0);
        let v01 = g(x0, y0 + 1);
        let v11 = g(x0 + 1, y0 + 1);

        let top = v01 + (v11 - v01) * fx;
        let bot = v00 + (v10 - v00) * fx;
        (bot + (top - bot) * fy) * self.sigma_db
    }

    /// Standard normal draw, deterministic in `(seed, ap, ix, iy)`.
    fn lattice_gauss(&self, ap: ApId, ix: i64, iy: i64) -> f64 {
        let h1 = splitmix(
            self.seed
                ^ (ap.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (ix as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (iy as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
        );
        let h2 = splitmix(h1);
        // Box-Muller from two uniforms in (0, 1).
        let u1 = ((h1 >> 11) as f64 + 1.0) / (9_007_199_254_740_992.0 + 2.0);
        let u2 = ((h2 >> 11) as f64 + 1.0) / (9_007_199_254_740_992.0 + 2.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let f = ShadowingField::new(8.0, 50.0, 7);
        let p = Point::new(123.4, -56.7);
        assert_eq!(f.shadow_db(ApId(3), p), f.shadow_db(ApId(3), p));
    }

    #[test]
    fn different_aps_decorrelated() {
        let f = ShadowingField::new(8.0, 50.0, 7);
        let p = Point::new(10.0, 10.0);
        assert_ne!(f.shadow_db(ApId(0), p), f.shadow_db(ApId(1), p));
    }

    #[test]
    fn different_seeds_decorrelated() {
        let a = ShadowingField::new(8.0, 50.0, 1);
        let b = ShadowingField::new(8.0, 50.0, 2);
        let p = Point::new(10.0, 10.0);
        assert_ne!(a.shadow_db(ApId(0), p), b.shadow_db(ApId(0), p));
    }

    #[test]
    fn disabled_is_zero_everywhere() {
        let f = ShadowingField::disabled();
        for i in 0..10 {
            let p = Point::new(i as f64 * 37.0, -(i as f64) * 11.0);
            assert_eq!(f.shadow_db(ApId(i), p), 0.0);
        }
    }

    #[test]
    fn continuity_across_short_distances() {
        let f = ShadowingField::new(6.0, 50.0, 99);
        for i in 0..100 {
            let p = Point::new(i as f64 * 13.7, i as f64 * 5.1);
            let q = p.offset(0.5, 0.0);
            assert!(
                (f.shadow_db(ApId(0), p) - f.shadow_db(ApId(0), q)).abs() < 1.0,
                "jump at {p}"
            );
        }
    }

    #[test]
    fn empirical_moments_are_plausible() {
        let f = ShadowingField::new(6.0, 50.0, 2024);
        // Sample on a sparse lattice (≫ correlation length apart) so draws
        // are nearly independent.
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = 2_000;
        for i in 0..n {
            let p = Point::new((i % 50) as f64 * 500.0, (i / 50) as f64 * 500.0);
            let v = f.shadow_db(ApId(1), p);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean {mean}");
        // Interpolation shrinks variance off-lattice; allow a broad band.
        assert!((2.0..8.0).contains(&var.sqrt()), "std {}", var.sqrt());
    }

    #[test]
    fn negative_coordinates_work() {
        let f = ShadowingField::new(6.0, 50.0, 5);
        let v = f.shadow_db(ApId(0), Point::new(-1234.5, -6789.0));
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_correlation() {
        let _ = ShadowingField::new(6.0, 0.0, 0);
    }
}

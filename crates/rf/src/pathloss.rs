//! Deterministic path-loss models.
//!
//! The paper's EZ-style comparison point (Chintalapudi et al.) and the
//! server's homogeneous-propagation assumption both reduce to "RSS is a
//! monotone decreasing function of distance". These models supply that
//! function. All losses are positive dB; `rss = tx_power − loss`.

/// A deterministic distance → path-loss model.
///
/// Implementations must be monotone non-decreasing in distance beyond the
/// reference distance; the rank-based positioning of the SVD relies on
/// "closer ⇒ stronger" holding for the *mean* field.
pub trait PathLoss: std::fmt::Debug + Send + Sync {
    /// Path loss in dB at `distance_m` metres (≥ 0).
    fn loss_db(&self, distance_m: f64) -> f64;

    /// Received signal strength for a transmitter at `tx_power_dbm`.
    fn rss_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.loss_db(distance_m)
    }

    /// Inverts the model: the distance at which `loss_db` dB is lost.
    /// Used by the trilateration baseline. Default: bisection on
    /// `[0.1, 10_000]` m.
    fn distance_for_loss(&self, loss_db: f64) -> f64 {
        let (mut lo, mut hi) = (0.1f64, 10_000.0f64);
        if self.loss_db(lo) >= loss_db {
            return lo;
        }
        if self.loss_db(hi) <= loss_db {
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.loss_db(mid) < loss_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Free-space path loss (Friis) at a carrier frequency.
///
/// `L = 20·log10(d) + 20·log10(f) − 147.55` with `d` in metres, `f` in Hz.
///
/// # Examples
///
/// ```
/// use wilocator_rf::{FreeSpace, PathLoss};
/// let fs = FreeSpace::wifi_2g4();
/// // Doubling the distance costs 6 dB in free space.
/// let delta = fs.loss_db(200.0) - fs.loss_db(100.0);
/// assert!((delta - 6.02).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeSpace {
    freq_hz: f64,
}

impl FreeSpace {
    /// Free-space model at carrier `freq_hz` Hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive.
    pub fn new(freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "carrier frequency must be positive");
        FreeSpace { freq_hz }
    }

    /// 2.437 GHz (WiFi channel 6).
    pub fn wifi_2g4() -> Self {
        FreeSpace::new(2.437e9)
    }
}

impl PathLoss for FreeSpace {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        20.0 * d.log10() + 20.0 * self.freq_hz.log10() - 147.55
    }
}

/// Log-distance path loss: `L(d) = L0 + 10·n·log10(d / d0)`.
///
/// The workhorse outdoor model; exponent `n ≈ 2.7–3.5` for urban streets.
///
/// # Examples
///
/// ```
/// use wilocator_rf::{LogDistance, PathLoss};
/// let m = LogDistance::new(40.0, 3.0, 1.0);
/// assert_eq!(m.loss_db(1.0), 40.0);
/// assert!((m.loss_db(10.0) - 70.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    ref_loss_db: f64,
    exponent: f64,
    ref_distance_m: f64,
}

impl LogDistance {
    /// Model with loss `ref_loss_db` at `ref_distance_m` and path-loss
    /// exponent `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` or `ref_distance_m` is not strictly positive.
    pub fn new(ref_loss_db: f64, exponent: f64, ref_distance_m: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        assert!(ref_distance_m > 0.0, "reference distance must be positive");
        LogDistance {
            ref_loss_db,
            exponent,
            ref_distance_m,
        }
    }

    /// Typical urban-street parametrisation: 40 dB at 1 m, exponent 3.0 —
    /// an AP at 20 dBm becomes undetectable (≈ −90 dBm) around 100 m,
    /// matching the paper's "limited coverage due to the limited
    /// transmitted power".
    pub fn urban() -> Self {
        LogDistance::new(40.0, 3.0, 1.0)
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl PathLoss for LogDistance {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.ref_distance_m * 0.1);
        self.ref_loss_db + 10.0 * self.exponent * (d / self.ref_distance_m).log10()
    }

    fn distance_for_loss(&self, loss_db: f64) -> f64 {
        (self.ref_distance_m * 10f64.powf((loss_db - self.ref_loss_db) / (10.0 * self.exponent)))
            .clamp(0.1, 10_000.0)
    }
}

/// Two-ray ground-reflection model with a free-space near field.
///
/// Beyond the crossover distance `d_c = 4·π·h_t·h_r / λ` the loss grows with
/// the fourth power of distance: `L = 40·log10(d) − 20·log10(h_t·h_r)`.
///
/// # Examples
///
/// ```
/// use wilocator_rf::{PathLoss, TwoRay};
/// let m = TwoRay::new(6.0, 1.5, 2.437e9);
/// // Far field decays at 12 dB per octave.
/// let delta = m.loss_db(4000.0) - m.loss_db(2000.0);
/// assert!((delta - 12.04).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRay {
    tx_height_m: f64,
    rx_height_m: f64,
    freq_hz: f64,
}

impl TwoRay {
    /// Two-ray model for antenna heights `tx_height_m`/`rx_height_m` at
    /// carrier `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    pub fn new(tx_height_m: f64, rx_height_m: f64, freq_hz: f64) -> Self {
        assert!(
            tx_height_m > 0.0 && rx_height_m > 0.0 && freq_hz > 0.0,
            "two-ray parameters must be positive"
        );
        TwoRay {
            tx_height_m,
            rx_height_m,
            freq_hz,
        }
    }

    /// Crossover distance between near (free-space) and far (d⁴) fields.
    pub fn crossover_m(&self) -> f64 {
        let lambda = 299_792_458.0 / self.freq_hz;
        4.0 * std::f64::consts::PI * self.tx_height_m * self.rx_height_m / lambda
    }
}

impl PathLoss for TwoRay {
    fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        let dc = self.crossover_m();
        let fs = FreeSpace::new(self.freq_hz);
        if d <= dc {
            fs.loss_db(d)
        } else {
            // Continuous at the crossover: anchor the d⁴ region there.
            fs.loss_db(dc) + 40.0 * (d / dc).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_reference_value() {
        // FSPL at 1 km, 2.4 GHz is ~100 dB.
        let fs = FreeSpace::wifi_2g4();
        let l = fs.loss_db(1000.0);
        assert!((l - 100.2).abs() < 0.5, "got {l}");
    }

    #[test]
    fn log_distance_monotone() {
        let m = LogDistance::urban();
        let mut prev = m.loss_db(1.0);
        for d in [2.0, 5.0, 10.0, 50.0, 200.0, 1000.0] {
            let l = m.loss_db(d);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn log_distance_inverse_roundtrip() {
        let m = LogDistance::urban();
        for d in [1.0, 7.0, 42.0, 180.0] {
            let l = m.loss_db(d);
            assert!((m.distance_for_loss(l) - d).abs() < 1e-6);
        }
    }

    #[test]
    fn generic_inverse_bisection_roundtrip() {
        let m = FreeSpace::wifi_2g4();
        for d in [1.0, 25.0, 400.0] {
            let l = m.loss_db(d);
            let back = m.distance_for_loss(l);
            assert!((back - d).abs() / d < 1e-6, "d={d}, back={back}");
        }
    }

    #[test]
    fn urban_coverage_is_about_100m() {
        // 20 dBm TX, −90 dBm detection threshold ⇒ 110 dB budget.
        let m = LogDistance::urban();
        let range = m.distance_for_loss(110.0);
        assert!((150.0..250.0).contains(&range), "range {range} m");
    }

    #[test]
    fn two_ray_continuous_at_crossover() {
        let m = TwoRay::new(6.0, 1.5, 2.437e9);
        let dc = m.crossover_m();
        let before = m.loss_db(dc * 0.999);
        let after = m.loss_db(dc * 1.001);
        assert!((before - after).abs() < 0.1);
    }

    #[test]
    fn rss_is_tx_minus_loss() {
        let m = LogDistance::urban();
        assert_eq!(m.rss_dbm(20.0, 1.0), -20.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_exponent() {
        let _ = LogDistance::new(40.0, 0.0, 1.0);
    }

    #[test]
    fn tiny_distances_clamped() {
        let m = LogDistance::urban();
        assert!(m.loss_db(0.0).is_finite());
        let fs = FreeSpace::wifi_2g4();
        assert!(fs.loss_db(0.0).is_finite());
    }
}

//! RF propagation models and WiFi scan simulation.
//!
//! This crate is the *physical layer* substitute for the paper's in-situ
//! measurements: the prototype collected real 802.11 beacons on Nexus-5
//! phones; we synthesise the same observable — noisy, quantised RSS readings
//! from geo-tagged access points — from a parametric outdoor channel:
//!
//! * a deterministic **path-loss** component ([`pathloss`]): free-space,
//!   log-distance or two-ray ground models;
//! * **spatially correlated log-normal shadowing** ([`shadowing`]): the slow,
//!   position-dependent term that makes the Signal Voronoi Edges of the real
//!   signal space wiggle away from the Euclidean Voronoi edges;
//! * per-scan **fast fading** and dBm **quantisation** ([`scan`]): the term
//!   that makes a static receiver see >10 dB swings, motivating the paper's
//!   move from absolute RSS to *rank* of RSS.
//!
//! The [`SignalField`] trait is the contract shared with the Signal Voronoi
//! Diagram in `wilocator-svd`: anything that can report a mean RSS for
//! (AP, point) can generate an SVD. The server-side assumption of the paper
//! ("we simply regard that all the factors affecting signal propagation are
//! the same for APs") is [`field::HomogeneousField`]; the simulator's ground
//! truth is [`field::PhysicalField`].
//!
//! # Examples
//!
//! ```
//! use wilocator_geo::Point;
//! use wilocator_rf::{AccessPoint, ApId, LogDistance, PathLoss};
//!
//! let model = LogDistance::urban();
//! let ap = AccessPoint::new(ApId(0), Point::new(0.0, 0.0));
//! let near = model.rss_dbm(ap.tx_power_dbm(), 10.0);
//! let far = model.rss_dbm(ap.tx_power_dbm(), 100.0);
//! assert!(near > far);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ap;
pub mod field;
pub mod pathloss;
pub mod scan;
pub mod shadowing;

pub use ap::{AccessPoint, ApId, Bssid};
pub use field::{HomogeneousField, PhysicalField, SignalField};
pub use pathloss::{FreeSpace, LogDistance, PathLoss, TwoRay};
pub use scan::{Reading, Scan, Scanner, ScannerConfig};
pub use shadowing::ShadowingField;

/// RSS floor: readings below this are never reported by real hardware.
pub const NOISE_FLOOR_DBM: f64 = -100.0;

//! Property-based tests for the RF substrate.

use proptest::prelude::*;
use wilocator_geo::Point;
use wilocator_rf::{
    AccessPoint, ApId, FreeSpace, HomogeneousField, LogDistance, PathLoss, ShadowingField,
    SignalField, TwoRay,
};

fn distance() -> impl Strategy<Value = f64> {
    0.1..5_000.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn log_distance_is_monotone(
        ref_loss in 20.0..60.0f64,
        exponent in 1.5..5.0f64,
        d0 in distance(),
        d1 in distance(),
    ) {
        let m = LogDistance::new(ref_loss, exponent, 1.0);
        let (lo, hi) = if d0 <= d1 { (d0, d1) } else { (d1, d0) };
        prop_assert!(m.loss_db(lo) <= m.loss_db(hi) + 1e-9);
    }

    #[test]
    fn free_space_and_two_ray_are_monotone(d0 in distance(), d1 in distance()) {
        let (lo, hi) = if d0 <= d1 { (d0, d1) } else { (d1, d0) };
        let fs = FreeSpace::wifi_2g4();
        prop_assert!(fs.loss_db(lo) <= fs.loss_db(hi) + 1e-9);
        let tr = TwoRay::new(6.0, 1.5, 2.437e9);
        prop_assert!(tr.loss_db(lo) <= tr.loss_db(hi) + 1e-9);
    }

    #[test]
    fn log_distance_inversion_roundtrips(
        exponent in 1.5..5.0f64,
        d in 0.5..5_000.0f64,
    ) {
        let m = LogDistance::new(40.0, exponent, 1.0);
        let loss = m.loss_db(d);
        let back = m.distance_for_loss(loss);
        prop_assert!((back - d).abs() / d < 1e-6, "d = {d}, back = {back}");
    }

    #[test]
    fn rss_equals_tx_minus_loss(tx in 0.0..30.0f64, d in distance()) {
        let m = LogDistance::urban();
        prop_assert!((m.rss_dbm(tx, d) - (tx - m.loss_db(d))).abs() < 1e-12);
    }

    #[test]
    fn shadowing_is_deterministic_and_bounded(
        sigma in 0.0..12.0f64,
        corr in 10.0..200.0f64,
        seed in any::<u64>(),
        x in -5_000.0..5_000.0f64,
        y in -5_000.0..5_000.0f64,
    ) {
        let f = ShadowingField::new(sigma, corr, seed);
        let p = Point::new(x, y);
        let a = f.shadow_db(ApId(1), p);
        prop_assert_eq!(a, f.shadow_db(ApId(1), p));
        prop_assert!(a.is_finite());
        // Gaussian tails: |value| beyond 8σ would be astronomically rare
        // and indicates a generator bug.
        prop_assert!(a.abs() <= 8.0 * sigma.max(1e-12) || sigma == 0.0);
    }

    #[test]
    fn shadowing_is_continuous(
        seed in any::<u64>(),
        x in -1_000.0..1_000.0f64,
        y in -1_000.0..1_000.0f64,
        dx in -0.5..0.5f64,
    ) {
        let f = ShadowingField::new(6.0, 50.0, seed);
        let a = f.shadow_db(ApId(0), Point::new(x, y));
        let b = f.shadow_db(ApId(0), Point::new(x + dx, y));
        // Lipschitz-ish: sub-metre moves change the field by < 2 dB.
        prop_assert!((a - b).abs() < 2.0, "jump {} over {dx} m", (a - b).abs());
    }

    #[test]
    fn detectable_at_is_sorted_and_thresholded(
        positions in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 1..20),
        qx in -500.0..500.0f64,
        qy in -500.0..500.0f64,
        threshold in -95.0..-60.0f64,
    ) {
        let aps: Vec<AccessPoint> = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| AccessPoint::new(ApId(i as u32), Point::new(x, y)))
            .collect();
        let field = HomogeneousField::new(aps);
        let ranked = field.detectable_at(Point::new(qx, qy), threshold);
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for &(_, rss) in &ranked {
            prop_assert!(rss >= threshold);
        }
        // The strongest AP is the nearest one (homogeneous ⇒ VD).
        if let Some(&(top, _)) = ranked.first() {
            let q = Point::new(qx, qy);
            let nearest = field
                .aps()
                .iter()
                .min_by(|a, b| {
                    q.distance(a.position())
                        .partial_cmp(&q.distance(b.position()))
                        .unwrap()
                })
                .unwrap();
            // Ties in distance permit either winner; compare distances.
            let d_top = q.distance(field.ap(top).unwrap().position());
            let d_near = q.distance(nearest.position());
            prop_assert!((d_top - d_near).abs() < 1e-9);
        }
    }

    #[test]
    fn without_aps_removes_exactly_the_dead(
        n in 1usize..20,
        dead_idx in proptest::collection::hash_set(0u32..20, 0..10),
    ) {
        let aps: Vec<AccessPoint> = (0..n as u32)
            .map(|i| AccessPoint::new(ApId(i), Point::new(i as f64 * 10.0, 0.0)))
            .collect();
        let field = HomogeneousField::new(aps);
        let dead: Vec<ApId> = dead_idx.iter().map(|&i| ApId(i)).collect();
        let pruned = field.without_aps(&dead);
        for ap in pruned.aps() {
            prop_assert!(!dead.contains(&ap.id()));
        }
        let survivors = (0..n as u32).filter(|i| !dead_idx.contains(i)).count();
        prop_assert_eq!(pruned.aps().len(), survivors);
    }
}

//! Plain-text rendering of tables and series, matching the rows the paper
//! reports.

/// Renders an aligned ASCII table. The first row is the header.
///
/// # Examples
///
/// ```
/// use wilocator_eval::render_table;
/// let t = render_table(&[
///     vec!["Route".into(), "Stops".into()],
///     vec!["9".into(), "65".into()],
/// ]);
/// assert!(t.contains("Route"));
/// assert!(t.contains("| 9"));
/// ```
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(|s| s.as_str()).unwrap_or("");
            out.push(' ');
            out.push_str(cell);
            for _ in cell.chars().count()..*w {
                out.push(' ');
            }
            out.push_str(" |");
        }
        out.push('\n');
        if ri == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('|');
            }
            out.push('\n');
        }
    }
    out
}

/// Renders an `(x, y)` series as `x<tab>y` lines with a header.
pub fn render_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n# {x_label}\t{y_label}\n");
    for &(x, y) in series {
        out.push_str(&format!("{x:.3}\t{y:.4}\n"));
    }
    out
}

/// Formats seconds as `MMmSSs` for human-readable error magnitudes.
pub fn fmt_duration(seconds: f64) -> String {
    let total = seconds.abs().round() as u64;
    format!("{}m{:02}s", total / 60, total % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(&[
            vec!["A".into(), "Longer".into()],
            vec!["longer-cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn series_format() {
        let s = render_series("t", "x", "y", &[(1.0, 0.5)]);
        assert!(s.starts_with("# t\n# x\ty\n"));
        assert!(s.contains("1.000\t0.5000"));
    }

    #[test]
    fn duration_format() {
        assert_eq!(fmt_duration(0.0), "0m00s");
        assert_eq!(fmt_duration(75.0), "1m15s");
        assert_eq!(fmt_duration(-75.0), "1m15s");
        assert_eq!(fmt_duration(3_601.0), "60m01s");
    }
}

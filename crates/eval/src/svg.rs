//! SVG rendering of Signal Voronoi Diagrams and traffic maps — the visual
//! artefacts of the paper's Figs. 2, 10 and 11, produced without any
//! plotting dependency.

use std::fmt::Write as _;

use wilocator_core::{SegmentState, TrafficState};
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, SignalField};
use wilocator_road::Route;
use wilocator_svd::SignalVoronoiDiagram;

/// A categorical colour for an AP site: evenly spread hues via the golden
/// angle, so adjacent ids rarely collide.
fn site_color(id: u32) -> String {
    let hue = (id as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0},65%,72%)")
}

fn scale_of(width_px: f64, extent_m: f64) -> f64 {
    width_px / extent_m.max(1e-9)
}

/// Renders a planar [`SignalVoronoiDiagram`] as SVG: tiles coloured by
/// site, tile boundaries implied by colour changes, the route drawn on
/// top, AP positions as dots (mirroring the paper's Figs. 2 and 10).
pub fn svd_svg<F: SignalField + ?Sized>(
    diagram: &SignalVoronoiDiagram,
    field: &F,
    route: Option<&Route>,
    width_px: f64,
) -> String {
    let bbox = diagram.bbox();
    let (min_x, min_y) = (bbox.min.x, bbox.min.y);
    let (w_m, h_m) = (bbox.width(), bbox.height());
    let scale = scale_of(width_px, w_m);
    let mut svg = String::new();
    let res = diagram.config().resolution_m;
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.1} {:.1}">"#,
        w_m * scale,
        h_m * scale,
        w_m * scale,
        h_m * scale
    );
    svg.push_str(r##"<rect width="100%" height="100%" fill="#fafafa"/>"##);
    // Tile cells, with horizontal runs of equal colour merged into single
    // rects (orders of magnitude smaller output on large rasters).
    let cols = (w_m / res).ceil() as usize;
    let rows = (h_m / res).ceil() as usize;
    let color_at = |col: usize, row: usize| -> Option<(u32, u32)> {
        let p = Point::new(
            min_x + (col as f64 + 0.5) * res,
            min_y + (row as f64 + 0.5) * res,
        );
        let tile = diagram.tile_at(p)?;
        let site = tile.signature().site()?;
        let second = tile.signature().aps().get(1).map(|a| a.0).unwrap_or(0);
        Some((site.0, second % 4))
    };
    for row in 0..rows {
        let mut run: Option<(usize, (u32, u32))> = None;
        for col in 0..=cols {
            let color = if col < cols { color_at(col, row) } else { None };
            match (run, color) {
                (Some((_, rc)), Some(c)) if rc == c => {}
                _ => {
                    if let Some((start, (site, second))) = run {
                        let hue = (site as f64 * 137.508) % 360.0;
                        let lightness = 66 + second * 4;
                        let _ = write!(
                            svg,
                            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="hsl({hue:.0},60%,{lightness}%)"/>"#,
                            start as f64 * res * scale,
                            (h_m - (row as f64 + 1.0) * res) * scale,
                            (col - start) as f64 * res * scale,
                            res * scale,
                        );
                    }
                    run = color.map(|c| (col, c));
                }
            }
        }
    }
    // Route overlay.
    if let Some(route) = route {
        let pts: String = route
            .geometry()
            .sample(10.0)
            .iter()
            .map(|&(_, p)| {
                format!(
                    "{:.1},{:.1}",
                    (p.x - min_x) * scale,
                    (h_m - (p.y - min_y)) * scale
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            svg,
            r##"<polyline points="{pts}" fill="none" stroke="#222" stroke-width="3"/>"##
        );
    }
    // AP dots.
    for ap in field.aps() {
        let p = ap.position();
        if p.x < min_x || p.x > min_x + w_m || p.y < min_y || p.y > min_y + h_m {
            continue;
        }
        let _ = write!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="4" fill="#c0392b" stroke="#fff"/>"##,
            (p.x - min_x) * scale,
            (h_m - (p.y - min_y)) * scale
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Colour of a traffic state (Fig. 11's palette: green/amber/red/grey).
pub fn traffic_color(state: TrafficState) -> &'static str {
    match state {
        TrafficState::Normal => "#27ae60",
        TrafficState::Slow => "#f39c12",
        TrafficState::VerySlow => "#c0392b",
        TrafficState::Unknown => "#bdc3c7",
    }
}

/// Renders a live traffic map as SVG: the route polyline with each segment
/// stroked by its classification, stops as ticks.
pub fn traffic_map_svg(route: &Route, states: &[SegmentState], width_px: f64) -> String {
    let verts: Vec<Point> = route
        .geometry()
        .sample(10.0)
        .iter()
        .map(|&(_, p)| p)
        .collect();
    let min_x = verts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min) - 50.0;
    let min_y = verts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min) - 50.0;
    let max_x = verts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max) + 50.0;
    let max_y = verts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max) + 50.0;
    let (w_m, h_m) = (max_x - min_x, max_y - min_y);
    let scale = scale_of(width_px, w_m);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}">"#,
        w_m * scale,
        h_m * scale
    );
    svg.push_str(r##"<rect width="100%" height="100%" fill="#ffffff"/>"##);
    let project = |p: Point| ((p.x - min_x) * scale, (h_m - (p.y - min_y)) * scale);
    for (i, state) in states.iter().enumerate().take(route.edges().len()) {
        let s0 = route.edge_start_s(i);
        let s1 = route.edge_end_s(i);
        let steps = ((s1 - s0) / 25.0).ceil().max(1.0) as usize;
        let pts: String = (0..=steps)
            .map(|k| {
                let s = s0 + (s1 - s0) * k as f64 / steps as f64;
                let (x, y) = project(route.point_at(s));
                format!("{x:.1},{y:.1}")
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            svg,
            r#"<polyline points="{pts}" fill="none" stroke="{}" stroke-width="6" stroke-linecap="round"/>"#,
            traffic_color(state.state)
        );
    }
    for stop in route.stops() {
        let (x, y) = project(route.point_at(stop.s()));
        let _ = write!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="#fff" stroke="#333" stroke-width="2"/>"##
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Convenience: render the APs of a field over nothing (deployment map).
pub fn deployment_svg(aps: &[AccessPoint], route: Option<&Route>, width_px: f64) -> String {
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for ap in aps {
        min_x = min_x.min(ap.position().x);
        min_y = min_y.min(ap.position().y);
        max_x = max_x.max(ap.position().x);
        max_y = max_y.max(ap.position().y);
    }
    let (min_x, min_y) = (min_x - 100.0, min_y - 100.0);
    let (w_m, h_m) = (max_x - min_x + 200.0, max_y - min_y + 200.0);
    let scale = scale_of(width_px, w_m);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}">"#,
        w_m * scale,
        h_m * scale
    );
    svg.push_str(r##"<rect width="100%" height="100%" fill="#f4f6f7"/>"##);
    if let Some(route) = route {
        let pts: String = route
            .geometry()
            .sample(25.0)
            .iter()
            .map(|&(_, p)| {
                format!(
                    "{:.1},{:.1}",
                    (p.x - min_x) * scale,
                    (h_m - (p.y - min_y)) * scale
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            svg,
            r##"<polyline points="{pts}" fill="none" stroke="#2c3e50" stroke-width="2"/>"##
        );
    }
    for ap in aps {
        let p = ap.position();
        let _ = write!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{}"/>"#,
            (p.x - min_x) * scale,
            (h_m - (p.y - min_y)) * scale,
            site_color(ap.id().0)
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_core::SegmentState;
    use wilocator_geo::BoundingBox;
    use wilocator_rf::{AccessPoint, ApId, HomogeneousField};
    use wilocator_road::{NetworkBuilder, RouteId};
    use wilocator_svd::SvdConfig;

    fn scene() -> (Route, HomogeneousField, SignalVoronoiDiagram) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(300.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let mut route = Route::new(RouteId(0), "svg", vec![e], &b.build()).unwrap();
        route.add_stops_evenly(3);
        let field = HomogeneousField::new(vec![
            AccessPoint::new(ApId(0), Point::new(70.0, 25.0)),
            AccessPoint::new(ApId(1), Point::new(220.0, -25.0)),
        ]);
        let bbox = BoundingBox::new(Point::new(-20.0, -80.0), Point::new(320.0, 80.0));
        let diagram = SignalVoronoiDiagram::build(
            &field,
            bbox,
            SvdConfig {
                resolution_m: 4.0,
                ..SvdConfig::default()
            },
        );
        (route, field, diagram)
    }

    #[test]
    fn svd_svg_is_well_formed() {
        let (route, field, diagram) = scene();
        let svg = svd_svg(&diagram, &field, Some(&route), 600.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<polyline"), "route overlay missing");
        assert!(svg.matches("<circle").count() >= 2, "AP dots missing");
    }

    #[test]
    fn traffic_svg_uses_state_colors() {
        let (route, _, _) = scene();
        let states = vec![SegmentState {
            edge: route.edges()[0],
            state: TrafficState::VerySlow,
            z: 3.0,
        }];
        let svg = traffic_map_svg(&route, &states, 600.0);
        assert!(svg.contains(traffic_color(TrafficState::VerySlow)));
        // Stop markers present.
        assert!(svg.matches("<circle").count() >= 3);
    }

    #[test]
    fn deployment_svg_draws_every_ap() {
        let (route, field, _) = scene();
        let svg = deployment_svg(field.aps(), Some(&route), 400.0);
        assert_eq!(svg.matches("<circle").count(), field.aps().len());
    }

    #[test]
    fn traffic_color_palette_is_distinct() {
        let colors = [
            traffic_color(TrafficState::Normal),
            traffic_color(TrafficState::Slow),
            traffic_color(TrafficState::VerySlow),
            traffic_color(TrafficState::Unknown),
        ];
        let mut dedup = colors.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}

//! Evaluation scenario presets.
//!
//! The paper's experiment is 3 weeks of four routes in Metro-Vancouver.
//! Reproducing that at full scale takes minutes; the presets offer three
//! scales so tests stay fast while the benches can run the full workload
//! (select with the `WILOCATOR_SCALE` environment variable: `smoke`,
//! `medium` — the default — or `paper`).

use wilocator_road::RouteId;
use wilocator_sim::{vancouver_like, City, CityConfig, SensingConfig, SimulationConfig};

use crate::pipeline::PipelineConfig;

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes of data; CI-friendly.
    Smoke,
    /// A few service days; seconds to minutes in release mode.
    Medium,
    /// The paper's full 3-week, 4-route workload.
    Paper,
}

impl Scale {
    /// Reads the scale from `WILOCATOR_SCALE` (default [`Scale::Medium`]).
    pub fn from_env() -> Scale {
        match std::env::var("WILOCATOR_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            _ => Scale::Medium,
        }
    }

    /// Simulated days (training + evaluation).
    pub fn days(self) -> u32 {
        match self {
            Scale::Smoke => 2,
            Scale::Medium => 4,
            Scale::Paper => 21,
        }
    }

    /// Training days.
    pub fn train_days(self) -> u32 {
        match self {
            Scale::Smoke => 1,
            Scale::Medium => 2,
            Scale::Paper => 14,
        }
    }

    /// Service headway, seconds.
    pub fn headway_s(self) -> f64 {
        match self {
            Scale::Smoke => 3_600.0,
            Scale::Medium => 1_800.0,
            Scale::Paper => 900.0,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Smoke => "smoke",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        };
        f.write_str(s)
    }
}

/// The Table-I city with the default AP deployment.
pub fn vancouver_city(seed: u64) -> City {
    vancouver_like(seed, &CityConfig::default())
}

/// Pipeline configuration for the Vancouver scenario at a scale.
///
/// All four routes run at the scale's headway; the Rapid Line gets the
/// faster route factor and the reduced congestion sensitivity the paper
/// describes (it "suffers less from the traffic jam in the overlapped
/// segments").
pub fn vancouver_pipeline(scale: Scale, seed: u64) -> PipelineConfig {
    let headway = scale.headway_s();
    PipelineConfig {
        sim: SimulationConfig {
            days: scale.days(),
            sensing: SensingConfig::default(),
            seed,
            ..SimulationConfig::default()
        },
        traffic_seed: seed ^ 0x7_ABCD,
        headways: vec![
            (RouteId(0), headway), // Rapid Line
            (RouteId(1), headway), // 9
            (RouteId(2), headway), // 14
            (RouteId(3), headway), // 16
        ],
        route_factors: vec![
            (RouteId(0), 1.3), // rapid runs faster, fewer stops
            (RouteId(1), 1.0),
            (RouteId(2), 0.95),
            (RouteId(3), 0.9),
        ],
        congestion_sensitivities: vec![
            (RouteId(0), 0.25), // rapid: transit priority, limited stops
            (RouteId(1), 1.0),
            (RouteId(2), 1.0),
            (RouteId(3), 1.0),
        ],
        train_days: scale.train_days(),
        predict_every: 8,
        max_stops_ahead: 19,
        ..PipelineConfig::default()
    }
}

/// Name of a Vancouver route id (Table I order).
pub fn route_name(route: RouteId) -> &'static str {
    match route.0 {
        0 => "Rapid Line",
        1 => "9",
        2 => "14",
        3 => "16",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.days() < Scale::Medium.days());
        assert!(Scale::Medium.days() < Scale::Paper.days());
        assert!(Scale::Paper.days() == 21, "paper collected 3 weeks");
        assert!(Scale::Smoke.train_days() < Scale::Smoke.days());
        assert!(Scale::Medium.train_days() < Scale::Medium.days());
        assert!(Scale::Paper.train_days() < Scale::Paper.days());
    }

    #[test]
    fn vancouver_pipeline_covers_all_routes() {
        let cfg = vancouver_pipeline(Scale::Smoke, 1);
        assert_eq!(cfg.headways.len(), 4);
        assert_eq!(cfg.route_factors.len(), 4);
        assert_eq!(route_name(RouteId(0)), "Rapid Line");
        assert_eq!(route_name(RouteId(3)), "16");
    }

    #[test]
    fn scale_display() {
        assert_eq!(Scale::Paper.to_string(), "paper");
    }
}

//! Evaluation metrics: CDFs, percentiles, summaries.

/// An empirical cumulative distribution over error samples.
///
/// # Examples
///
/// ```
/// use wilocator_eval::Cdf;
/// let cdf = Cdf::new(vec![1.0, 3.0, 2.0, 4.0]);
/// assert_eq!(cdf.median(), 2.5);
/// assert_eq!(cdf.fraction_below(3.5), 0.75);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from samples (non-finite values are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), linearly interpolated; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// The minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `(value, cumulative fraction)` pairs at `points` evenly spaced
    /// quantiles — the series a CDF figure plots.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::new(iter.into_iter().collect())
    }
}

/// Mean of a slice; 0 when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation of a slice; 0 when empty.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let cdf = Cdf::new(vec![0.0, 10.0]);
        assert_eq!(cdf.quantile(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 5.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
    }

    #[test]
    fn summary_stats() {
        let cdf: Cdf = vec![4.0, 1.0, 3.0, 2.0].into_iter().collect();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.mean(), 2.5);
        assert_eq!(cdf.median(), 2.5);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 4.0);
    }

    #[test]
    fn empty_cdf_is_benign() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn fraction_below_counts_inclusive() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_below(2.0), 0.5);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(9.0), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = Cdf::new(vec![5.0, 1.0, 9.0, 3.0, 7.0]);
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 11);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}

//! Experiment runners and metrics reproducing the WiLocator paper's
//! evaluation (Section V).
//!
//! Layers:
//!
//! * [`metrics`] — CDFs, quantiles, summary statistics;
//! * [`render`] — plain-text tables and series (the benches print these);
//! * [`pipeline`] — the end-to-end driver: simulate → ingest every scan in
//!   global time order → train → predict, with ground-truth bookkeeping;
//! * [`replay`] — re-run recorded datasets against alternative server
//!   configurations (parameter sweeps);
//! * [`scenarios`] — the Vancouver Table-I scenario at three scales
//!   (`WILOCATOR_SCALE` ∈ smoke/medium/paper);
//! * [`experiments`] — one module per table/figure: `table1`, `table2`,
//!   `fig8` (a/b/c), `fig9` (a/b), `fig10`, `fig11`, `seasonal_slots`,
//!   and `ablation`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod render;
pub mod replay;
pub mod scenarios;
pub mod svg;

pub use metrics::{mean, std_dev, Cdf};
pub use pipeline::{run_pipeline, PipelineConfig, PipelineOutput, PredictionRecord};
pub use render::{fmt_duration, render_series, render_table};
pub use replay::{replay_locator_errors, replay_svd_errors, subsample_field};
pub use scenarios::{route_name, vancouver_city, vancouver_pipeline, Scale};
pub use svg::{deployment_svg, svd_svg, traffic_color, traffic_map_svg};

//! The end-to-end evaluation pipeline: simulate the city, stream every
//! scan bundle through the WiLocator server in global time order (so
//! concurrent buses of different routes interleave, exactly what the
//! cross-route residual sharing needs), and collect positioning and
//! prediction errors against ground truth.

use std::collections::HashMap;

use wilocator_baselines::{AgencyPredictor, SameRoutePredictor};
use wilocator_core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator_road::RouteId;
use wilocator_sim::{
    daily_schedule, simulate, City, Dataset, Incident, SimulationConfig, TrafficConfig,
    TrafficModel, DAY_S,
};

/// One arrival-time prediction compared against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionRecord {
    /// The route predicted for.
    pub route: RouteId,
    /// How many stops ahead the target stop was.
    pub stops_ahead: usize,
    /// When the prediction was made (absolute seconds).
    pub at_time: f64,
    /// Whether the prediction was made during a rush-hour window.
    pub rush: bool,
    /// Ground-truth arrival time at the stop.
    pub actual: f64,
    /// WiLocator's predicted arrival time (Eq. 8–9).
    pub wilocator: f64,
    /// The transit-agency baseline's prediction.
    pub agency: f64,
    /// The same-route-only baseline's prediction.
    pub same_route: f64,
}

impl PredictionRecord {
    /// |predicted − actual| for WiLocator, seconds.
    pub fn wilocator_err(&self) -> f64 {
        (self.wilocator - self.actual).abs()
    }

    /// |predicted − actual| for the agency baseline, seconds.
    pub fn agency_err(&self) -> f64 {
        (self.agency - self.actual).abs()
    }

    /// |predicted − actual| for the same-route baseline, seconds.
    pub fn same_route_err(&self) -> f64 {
        (self.same_route - self.actual).abs()
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Dataset generation parameters (days = training + evaluation).
    pub sim: SimulationConfig,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Traffic model seed.
    pub traffic_seed: u64,
    /// Per-route headways, seconds.
    pub headways: Vec<(RouteId, f64)>,
    /// Per-route speed factors (e.g. the Rapid Line's 1.25).
    pub route_factors: Vec<(RouteId, f64)>,
    /// Per-route congestion sensitivities (1.0 = feels congestion fully).
    pub congestion_sensitivities: Vec<(RouteId, f64)>,
    /// Server configuration.
    pub wilocator: WiLocatorConfig,
    /// Days reserved for offline training (seasonal index, agency freeze).
    pub train_days: u32,
    /// Make predictions at every k-th scan bundle of evaluation trips.
    pub predict_every: usize,
    /// Predict up to this many stops ahead.
    pub max_stops_ahead: usize,
    /// Incidents injected into the traffic model.
    pub incidents: Vec<Incident>,
    /// Publish a query snapshot whenever stream time has advanced this
    /// many seconds past the previous publish (0 = never publish during
    /// the replay). Publishing drives the quality plane: ETAs are
    /// ledgered at publish time and confirmed against later fixes, so
    /// `/debug/quality` stays empty without it.
    pub publish_every_s: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sim: SimulationConfig::default(),
            traffic: TrafficConfig::default(),
            traffic_seed: 0xB05,
            headways: Vec::new(),
            route_factors: Vec::new(),
            congestion_sensitivities: Vec::new(),
            wilocator: WiLocatorConfig::default(),
            train_days: 14,
            predict_every: 6,
            max_stops_ahead: 19,
            incidents: Vec::new(),
            publish_every_s: 0.0,
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The server after processing the full dataset (trained, populated).
    pub server: WiLocator,
    /// The simulated dataset (ground truth).
    pub dataset: Dataset,
    /// The traffic model used (ground-truth congestion).
    pub traffic: TrafficModel,
    /// Per-route positioning errors, metres (evaluation days only).
    pub positioning: HashMap<RouteId, Vec<f64>>,
    /// Arrival predictions with ground truth (evaluation days only).
    pub predictions: Vec<PredictionRecord>,
}

/// Runs the full pipeline over `city`.
///
/// # Panics
///
/// Panics if `config.predict_every == 0` or `train_days >= sim.days`.
pub fn run_pipeline(city: &City, config: &PipelineConfig) -> PipelineOutput {
    assert!(config.predict_every >= 1, "predict_every must be >= 1");
    assert!(
        config.train_days < config.sim.days,
        "need at least one evaluation day"
    );

    // 1. Simulate the dataset.
    let mut traffic = TrafficModel::new(&city.network, config.traffic, config.traffic_seed);
    for &(route, f) in &config.route_factors {
        traffic.set_route_factor(route, f);
    }
    for &(route, s) in &config.congestion_sensitivities {
        traffic.set_congestion_sensitivity(route, s);
    }
    for &inc in &config.incidents {
        traffic.add_incident(inc);
    }
    let schedule = daily_schedule(city, &config.headways);
    let dataset = simulate(city, &schedule, &traffic, &config.sim);

    // 2. Build the server.
    let server = WiLocator::new(&city.server_field, city.routes.clone(), config.wilocator);

    // 3. Merge all scan bundles into one global time-ordered stream.
    let mut events: Vec<(f64, usize, usize)> = Vec::new();
    for (ti, trip) in dataset.trips.iter().enumerate() {
        for (bi, b) in trip.bundles.iter().enumerate() {
            events.push((b.time_s, ti, bi));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite time"));

    // 4. Stream through the server.
    let train_boundary = config.train_days as f64 * DAY_S;
    let mut trained = false;
    let mut agency: Option<AgencyPredictor> = None;
    let mut same_route = SameRoutePredictor::new(config.wilocator.predictor);
    let mut positioning: HashMap<RouteId, Vec<f64>> = HashMap::new();
    let mut predictions: Vec<PredictionRecord> = Vec::new();
    let mut registered: Vec<bool> = vec![false; dataset.trips.len()];
    let mut last_publish = f64::NEG_INFINITY;
    let end_time = events.last().map(|e| e.0).unwrap_or(0.0);

    for (time, ti, bi) in events {
        if config.publish_every_s > 0.0 && time - last_publish >= config.publish_every_s {
            server.publish_snapshot(time);
            last_publish = time;
        }
        let trip = &dataset.trips[ti];
        if !trained && time >= train_boundary {
            server.train(train_boundary);
            server.with_store(|store| {
                agency = Some(AgencyPredictor::train(
                    store,
                    train_boundary,
                    config.wilocator.predictor,
                ));
                same_route.train(store, train_boundary);
            });
            trained = true;
        }
        let bus = BusKey(trip.trip_id as u64);
        if !registered[ti] {
            server
                .register_bus(bus, trip.route)
                .expect("dataset routes are served");
            registered[ti] = true;
        }
        let bundle = &trip.bundles[bi];
        let fix = server
            .ingest(&ScanReport {
                bus,
                time_s: bundle.time_s,
                scans: bundle.scans.clone(),
            })
            .expect("bus registered");

        let eval_phase = trip.day >= config.train_days;
        if let Some(fix) = fix {
            if eval_phase {
                positioning
                    .entry(trip.route)
                    .or_default()
                    .push((fix.s - bundle.true_s).abs());
                if trained && bi % config.predict_every == 0 {
                    let route = city.route(trip.route).expect("served route");
                    let stops: Vec<&wilocator_road::Stop> = route
                        .stops_after(fix.s)
                        .take(config.max_stops_ahead)
                        .collect();
                    for (ahead, stop) in stops.iter().enumerate() {
                        let actual = trip.trajectory.time_at_s(stop.s());
                        let wilo = server
                            .predict_arrival_at(trip.route, fix.s, fix.time_s, stop.s())
                            .expect("served route");
                        let ag = agency.as_ref().expect("trained").predict_arrival(
                            route,
                            fix.s,
                            fix.time_s,
                            stop.s(),
                        );
                        let sr = server.with_store(|store| {
                            same_route.predict_arrival(store, route, fix.s, fix.time_s, stop.s())
                        });
                        predictions.push(PredictionRecord {
                            route: trip.route,
                            stops_ahead: ahead + 1,
                            at_time: time,
                            rush: traffic.is_rush(time.rem_euclid(DAY_S)),
                            actual,
                            wilocator: wilo,
                            agency: ag,
                            same_route: sr,
                        });
                    }
                }
            }
        }
        // Finish the bus after its last bundle.
        if bi + 1 == trip.bundles.len() {
            let _ = server.finish_bus(bus);
        }
    }
    if config.publish_every_s > 0.0 && last_publish.is_finite() {
        // Close the day so the published sections cover the tail.
        server.publish_snapshot(end_time);
    }

    PipelineOutput {
        server,
        dataset,
        traffic,
        positioning,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_sim::{simple_street, CityConfig, SensingConfig};

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            sim: SimulationConfig {
                days: 2,
                sensing: SensingConfig {
                    devices: 1,
                    ..SensingConfig::default()
                },
                ..SimulationConfig::default()
            },
            headways: vec![(RouteId(0), 3_600.0)],
            train_days: 1,
            predict_every: 4,
            max_stops_ahead: 3,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_errors_and_predictions() {
        let city = simple_street(1_500.0, 4, 3, &CityConfig::default());
        let out = run_pipeline(&city, &tiny_config());
        let errors = out.positioning.get(&RouteId(0)).expect("positioned");
        assert!(!errors.is_empty());
        // Tracking should be street-accurate.
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 60.0, "mean positioning error {mean} m");
        assert!(!out.predictions.is_empty());
        for p in &out.predictions {
            assert!(p.stops_ahead >= 1 && p.stops_ahead <= 3);
            assert!(p.wilocator_err().is_finite());
            assert!(p.agency_err().is_finite());
            assert!(p.same_route_err().is_finite());
        }
        // The server accumulated travel-time history.
        assert!(out.server.with_store(|s| s.len()) > 0);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let city = simple_street(1_000.0, 3, 5, &CityConfig::default());
        let a = run_pipeline(&city, &tiny_config());
        let b = run_pipeline(&city, &tiny_config());
        assert_eq!(a.predictions.len(), b.predictions.len());
        assert_eq!(a.positioning, b.positioning);
    }

    #[test]
    #[should_panic(expected = "evaluation day")]
    fn train_days_must_leave_eval_days() {
        let city = simple_street(500.0, 2, 1, &CityConfig::default());
        let mut cfg = tiny_config();
        cfg.train_days = 2;
        let _ = run_pipeline(&city, &cfg);
    }
}

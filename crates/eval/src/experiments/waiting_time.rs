//! Rider waiting time — the paper's motivating claim, quantified.
//!
//! "The information, if available, of where the bus is and when it will
//! get the intended stop, no doubt can cut down the waiting time."
//!
//! Model: a rider who wants a particular bus consults the predictor and
//! walks to the stop `buffer` seconds before the predicted arrival.
//! If the bus has already left (the prediction ran late by more than the
//! buffer), the rider waits a full headway for the next one; otherwise
//! they wait from their arrival until the bus shows up. A rider with no
//! information shows up at a random time and waits half a headway on
//! average.

use crate::metrics::mean;
use crate::pipeline::{run_pipeline, PredictionRecord};
use crate::render::render_table;
use crate::scenarios::{vancouver_city, vancouver_pipeline, Scale};

/// Expected waiting times (seconds) under each information source.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitingTimes {
    /// The walk-to-stop buffer used, seconds.
    pub buffer_s: f64,
    /// Service headway, seconds (the no-information baseline waits half
    /// of this on average).
    pub headway_s: f64,
    /// Expected wait with no information (headway / 2).
    pub uninformed: f64,
    /// Expected wait using WiLocator predictions.
    pub wilocator: f64,
    /// Expected wait using the agency predictions.
    pub agency: f64,
    /// Fraction of buses missed under WiLocator predictions.
    pub missed_wilocator: f64,
    /// Fraction of buses missed under agency predictions.
    pub missed_agency: f64,
}

/// Computes expected waits from prediction records: the rider plans around
/// predictions made `horizon` stops ahead (they check the app while the
/// bus is still a few stops away).
pub fn waits_from_records(
    records: &[PredictionRecord],
    horizon: usize,
    buffer_s: f64,
    headway_s: f64,
) -> WaitingTimes {
    let mut w_wilo = Vec::new();
    let mut w_agency = Vec::new();
    let mut miss_w = 0usize;
    let mut miss_a = 0usize;
    let mut n = 0usize;
    for r in records.iter().filter(|r| r.stops_ahead == horizon) {
        n += 1;
        // WiLocator-guided rider.
        let arrive = r.wilocator - buffer_s;
        if arrive > r.actual {
            miss_w += 1;
            w_wilo.push(headway_s);
        } else {
            w_wilo.push(r.actual - arrive);
        }
        // Agency-guided rider.
        let arrive = r.agency - buffer_s;
        if arrive > r.actual {
            miss_a += 1;
            w_agency.push(headway_s);
        } else {
            w_agency.push(r.actual - arrive);
        }
    }
    WaitingTimes {
        buffer_s,
        headway_s,
        uninformed: headway_s / 2.0,
        wilocator: mean(&w_wilo),
        agency: mean(&w_agency),
        missed_wilocator: miss_w as f64 / n.max(1) as f64,
        missed_agency: miss_a as f64 / n.max(1) as f64,
    }
}

/// Runs the Vancouver pipeline and evaluates waits for a sweep of buffers
/// at a 6-stops-ahead planning horizon.
pub fn run(scale: Scale, seed: u64) -> Vec<WaitingTimes> {
    let city = vancouver_city(seed);
    let config = vancouver_pipeline(scale, seed);
    let headway = config.headways[0].1;
    let out = run_pipeline(&city, &config);
    [60.0, 120.0, 240.0, 420.0]
        .into_iter()
        .map(|buffer| waits_from_records(&out.predictions, 6, buffer, headway))
        .collect()
}

/// Renders the waiting-time table.
pub fn render(rows: &[WaitingTimes]) -> String {
    let mut table = vec![vec![
        "buffer (s)".to_string(),
        "uninformed wait (s)".to_string(),
        "agency wait (s)".to_string(),
        "WiLocator wait (s)".to_string(),
        "missed % (agency)".to_string(),
        "missed % (WiLocator)".to_string(),
    ]];
    for r in rows {
        table.push(vec![
            format!("{:.0}", r.buffer_s),
            format!("{:.0}", r.uninformed),
            format!("{:.0}", r.agency),
            format!("{:.0}", r.wilocator),
            format!("{:.0}", r.missed_agency * 100.0),
            format!("{:.0}", r.missed_wilocator * 100.0),
        ]);
    }
    format!(
        "Rider waiting time (intro claim: real-time prediction cuts waiting time)\n{}",
        render_table(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::RouteId;

    fn record(actual: f64, wilo: f64, agency: f64) -> PredictionRecord {
        PredictionRecord {
            route: RouteId(0),
            stops_ahead: 6,
            at_time: 0.0,
            rush: true,
            actual,
            wilocator: wilo,
            agency,
            same_route: wilo,
        }
    }

    #[test]
    fn perfect_prediction_waits_exactly_the_buffer() {
        let records = vec![record(1_000.0, 1_000.0, 1_000.0); 10];
        let w = waits_from_records(&records, 6, 120.0, 900.0);
        assert_eq!(w.wilocator, 120.0);
        assert_eq!(w.agency, 120.0);
        assert_eq!(w.missed_wilocator, 0.0);
        assert_eq!(w.uninformed, 450.0);
    }

    #[test]
    fn late_prediction_misses_the_bus() {
        // Predicted 300 s after the bus actually came; a 120 s buffer
        // cannot save the rider.
        let records = vec![record(1_000.0, 1_300.0, 1_000.0)];
        let w = waits_from_records(&records, 6, 120.0, 900.0);
        assert_eq!(w.missed_wilocator, 1.0);
        assert_eq!(w.wilocator, 900.0);
        assert_eq!(w.missed_agency, 0.0);
    }

    #[test]
    fn early_prediction_just_waits_longer() {
        // Predicted 200 s before actual: rider waits buffer + 200.
        let records = vec![record(1_200.0, 1_000.0, 1_000.0)];
        let w = waits_from_records(&records, 6, 60.0, 900.0);
        assert_eq!(w.wilocator, 260.0);
        assert_eq!(w.missed_wilocator, 0.0);
    }

    #[test]
    fn informed_riders_beat_uninformed_on_the_pipeline() {
        let rows = run(Scale::Smoke, 42);
        assert_eq!(rows.len(), 4);
        // With a sensible buffer the informed rider waits well under half
        // a headway.
        let best = rows
            .iter()
            .map(|r| r.wilocator)
            .fold(f64::INFINITY, f64::min);
        let uninformed = rows[0].uninformed;
        assert!(
            best < uninformed * 0.8,
            "informed wait {best} vs uninformed {uninformed}"
        );
        // Larger buffers monotonically reduce the miss rate.
        for w in rows.windows(2) {
            assert!(w[1].missed_wilocator <= w[0].missed_wilocator + 1e-9);
        }
    }

    #[test]
    fn render_lists_all_buffers() {
        let records = vec![record(1_000.0, 1_010.0, 990.0); 5];
        let rows = vec![waits_from_records(&records, 6, 120.0, 900.0)];
        let text = render(&rows);
        assert!(text.contains("uninformed"));
        assert!(text.contains("120"));
    }
}

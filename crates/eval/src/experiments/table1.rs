//! Table I: information of the four investigated bus routes.

use wilocator_road::overlap;

use crate::render::render_table;
use crate::scenarios::vancouver_city;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRow {
    /// Route name.
    pub name: String,
    /// Number of stops.
    pub stops: usize,
    /// Route length, kilometres.
    pub length_km: f64,
    /// Overlapped length shared with ≥ 1 other route, kilometres.
    pub overlap_km: f64,
}

/// The paper's published Table I, for side-by-side comparison.
pub const PAPER: [(&str, usize, f64, f64); 4] = [
    ("Rapid Line", 19, 13.7, 13.0),
    ("9", 65, 16.3, 13.0),
    ("14", 74, 20.6, 16.2),
    ("16", 91, 18.3, 9.5),
];

/// Reproduces Table I from the generated city.
pub fn run(seed: u64) -> Vec<RouteRow> {
    let city = vancouver_city(seed);
    city.routes
        .iter()
        .map(|r| RouteRow {
            name: r.name().to_string(),
            stops: r.stops().len(),
            length_km: r.length() / 1_000.0,
            overlap_km: overlap::overlap_length_m(r, &city.routes, &city.network) / 1_000.0,
        })
        .collect()
}

/// Renders the reproduced table next to the paper's values.
pub fn render(rows: &[RouteRow]) -> String {
    let mut table = vec![vec![
        "Route".to_string(),
        "# of Stops".to_string(),
        "Length (km)".to_string(),
        "Overlapped Length (km)".to_string(),
        "paper: stops/len/overlap".to_string(),
    ]];
    for row in rows {
        let paper = PAPER
            .iter()
            .find(|(n, _, _, _)| *n == row.name)
            .map(|&(_, s, l, o)| format!("{s} / {l} / {o}"))
            .unwrap_or_else(|| "-".to_string());
        table.push(vec![
            row.name.clone(),
            row.stops.to_string(),
            format!("{:.1}", row.length_km),
            format!("{:.1}", row.overlap_km),
            paper,
        ]);
    }
    render_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduction_matches_paper_within_tolerance() {
        let rows = run(7);
        assert_eq!(rows.len(), 4);
        for (name, stops, len, ov) in PAPER {
            let row = rows.iter().find(|r| r.name == name).expect(name);
            assert_eq!(row.stops, stops, "{name} stops");
            assert!((row.length_km - len).abs() < 0.05, "{name} length");
            assert!((row.overlap_km - ov).abs() < 0.1, "{name} overlap");
        }
    }

    #[test]
    fn render_contains_all_routes() {
        let rows = run(7);
        let text = render(&rows);
        for (name, _, _, _) in PAPER {
            assert!(text.contains(name));
        }
    }
}

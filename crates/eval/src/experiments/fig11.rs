//! Figure 11: real-time traffic maps during a rush hour, plus the anomaly
//! localisation of Fig. 6.
//!
//! An incident (road construction / accident) is injected on an arterial
//! segment during an evaluation-day rush hour. Reproduced claims:
//!
//! * WiLocator marks the jammed segment *very slow* via the residual
//!   z-score (z > 1.64, 95 % confidence);
//! * unlike probe-scarce maps (the agency's "unconfirmed segments" and
//!   Google's unmarked residentials), WiLocator leaves no segment with
//!   history unmarked — measured as the *unknown fraction*;
//! * the crawl run inside the trajectory localises the anomaly site
//!   between the first and last slow fix (Fig. 6), away from stops and
//!   intersections.

use wilocator_core::{
    delta_from_median, detect_anomalies, route_exclusions, unknown_fraction, Anomaly,
    ArrivalPredictor, BusKey, BusTracker, ScanReport, TrafficMapGenerator, TrafficState,
    TravelTimeStore,
};
use wilocator_road::RouteId;
use wilocator_sim::{Incident, DAY_S};

use crate::pipeline::run_pipeline;
use crate::render::render_table;
use crate::scenarios::{vancouver_city, vancouver_pipeline, Scale};

/// The Figure-11 experiment output.
#[derive(Debug)]
pub struct Fig11 {
    /// The classification of the incident segment at query time.
    pub incident_state: TrafficState,
    /// z-score of the incident segment.
    pub incident_z: f64,
    /// Non-incident segments flagged **very slow** whose ground-truth
    /// congestion multiplier at flag time was genuinely elevated — true
    /// detections of organic congestion (the simulator's day-level and
    /// city-wide terms really do slow whole corridors on bad days).
    pub organic_detections: usize,
    /// Non-incident segments flagged very slow with *no* elevated
    /// ground-truth congestion — genuine false alarms.
    pub false_alarms: usize,
    /// Total classified (non-unknown) segments on the route.
    pub classified: usize,
    /// Unknown fraction of WiLocator's map.
    pub unknown_wilocator: f64,
    /// Unknown fraction of the probe-scarce "agency" map (25 % of data).
    pub unknown_agency: f64,
    /// Anomalies localised on the trip that crossed the incident.
    pub anomalies: Vec<Anomaly>,
    /// Route range of the injected incident, metres.
    pub incident_range: (f64, f64),
    /// Whether a detected anomaly overlaps the injected range (± 200 m).
    pub localized: bool,
}

/// Runs the incident scenario. The incident is placed on route 9's
/// arterial portion during the first evaluation day's morning rush.
pub fn run(scale: Scale, seed: u64) -> Fig11 {
    let city = vancouver_city(seed);
    let mut config = vancouver_pipeline(scale, seed);
    // Slot-restricted residual histories are thin at small scales; accept
    // classification from five same-slot samples.
    config.wilocator.traffic.min_samples = 5;
    let route9 = city.route(RouteId(1)).expect("route 9").clone();
    // An arterial edge roughly mid-route.
    let edge_index = route9.edges().len() / 2;
    let edge = route9.edges()[edge_index];
    let edge_len = route9.edge_length(edge_index);
    let start_s = config.train_days as f64 * DAY_S + 8.4 * 3_600.0;
    let duration_s = 3_000.0;
    config.incidents.push(Incident {
        edge,
        s_range: (edge_len * 0.2, edge_len * 0.8),
        start_s,
        duration_s,
        slowdown: 7.0,
    });
    let out = run_pipeline(&city, &config);

    // --- Traffic map at three-quarters into the incident. ---
    let t_q = start_s + duration_s * 0.75;
    let map = out
        .server
        .traffic_map(RouteId(1), t_q)
        .expect("route 9 served");
    let incident_entry = map
        .iter()
        .find(|s| s.edge == edge)
        .expect("incident edge on route");
    // Validate every non-incident very-slow flag against the simulator's
    // ground truth: was the edge's congestion multiplier genuinely
    // elevated when the flagging bus crossed it (within the last half
    // hour)? Multipliers: 1.0 = free flow; the rush profile alone reaches
    // ~1.5–1.9, so "elevated" means above-profile congestion.
    let mut organic_detections = 0usize;
    let mut false_alarms = 0usize;
    for s in map
        .iter()
        .filter(|s| s.edge != edge && s.state == TrafficState::VerySlow)
    {
        let genuinely_congested = (0..6).any(|k| {
            let t_probe = t_q - k as f64 * 300.0;
            out.traffic.env_factor(s.edge, t_probe) >= 1.30
        });
        if genuinely_congested {
            organic_detections += 1;
        } else {
            false_alarms += 1;
        }
    }
    let classified = map
        .iter()
        .filter(|s| s.state != TrafficState::Unknown)
        .count();
    let unknown_wilocator = unknown_fraction(&map);

    // --- The probe-scarce "agency" map: only every 4th record survives. ---
    let unknown_agency = out.server.with_store(|store| {
        let mut sparse = TravelTimeStore::new();
        for e in store.edges().collect::<Vec<_>>() {
            for (i, tr) in store.traversals(e).iter().enumerate() {
                if i % 4 == 0 {
                    sparse.record(e, *tr);
                }
            }
        }
        let mut predictor = ArrivalPredictor::new(config.wilocator.predictor);
        predictor.train(&sparse, config.train_days as f64 * DAY_S);
        let gen = TrafficMapGenerator::new(config.wilocator.traffic);
        unknown_fraction(&gen.route_map(&sparse, &predictor, &route9, t_q))
    });

    // --- Anomaly localisation on the trip that crossed the incident. ---
    let incident_range = (
        route9.edge_start_s(edge_index) + edge_len * 0.2,
        route9.edge_start_s(edge_index) + edge_len * 0.8,
    );
    let crossing_trip = out
        .dataset
        .trips_of(RouteId(1))
        .find(|t| {
            let t_at = t.trajectory.time_at_s(incident_range.0);
            t_at > start_s && t_at < start_s + duration_s
        })
        .cloned();
    let (anomalies, localized) = match crossing_trip {
        None => (Vec::new(), false),
        Some(trip) => {
            // Re-track the trip to recover its estimated trajectory.
            let mut tracker =
                BusTracker::new(out.server.positioner(RouteId(1)).expect("route 9").clone());
            for b in &trip.bundles {
                let _ = tracker.ingest(&ScanReport {
                    bus: BusKey(u64::MAX),
                    time_s: b.time_s,
                    scans: b.scans.clone(),
                });
            }
            let fixes = tracker.trajectory().fixes().to_vec();
            // δ from this route's typical per-scan displacement outside
            // the incident window (training trips).
            let displacements: Vec<f64> = out
                .dataset
                .trips_of(RouteId(1))
                .filter(|t| t.day < config.train_days)
                .take(10)
                .flat_map(|t| {
                    t.bundles
                        .windows(2)
                        .map(|w| w[1].true_s - w[0].true_s)
                        .collect::<Vec<f64>>()
                })
                .collect();
            // Crawling = moving at under 40 % of the typical per-scan
            // pace; the exclusion radius absorbs the positioning error so
            // dwells at stops/lights are filtered despite estimate offsets.
            let delta = delta_from_median(&displacements, 0.4);
            let anomalies = detect_anomalies(&fixes, delta, 3, &route_exclusions(&route9), 60.0);
            let localized = anomalies.iter().any(|a| {
                a.s_range.1 > incident_range.0 - 200.0 && a.s_range.0 < incident_range.1 + 200.0
            });
            (anomalies, localized)
        }
    };

    Fig11 {
        incident_state: incident_entry.state,
        incident_z: incident_entry.z,
        organic_detections,
        false_alarms,
        classified,
        unknown_wilocator,
        unknown_agency,
        anomalies,
        incident_range,
        localized,
    }
}

/// Renders the experiment summary.
pub fn render(f: &Fig11) -> String {
    let rows = vec![
        vec!["metric".to_string(), "value".to_string()],
        vec![
            "incident segment state".to_string(),
            format!("{} (z = {:.2})", f.incident_state, f.incident_z),
        ],
        vec![
            "very-slow flags: organic / spurious / classified".to_string(),
            format!(
                "{} / {} / {}",
                f.organic_detections, f.false_alarms, f.classified
            ),
        ],
        vec![
            "unknown fraction (WiLocator)".to_string(),
            format!("{:.0} %", f.unknown_wilocator * 100.0),
        ],
        vec![
            "unknown fraction (probe-scarce agency)".to_string(),
            format!("{:.0} %", f.unknown_agency * 100.0),
        ],
        vec![
            "anomaly localised".to_string(),
            format!(
                "{} ({} candidate runs; injected range {:.0}–{:.0} m)",
                f.localized,
                f.anomalies.len(),
                f.incident_range.0,
                f.incident_range.1
            ),
        ],
    ];
    format!(
        "Fig. 11: rush-hour traffic map + anomaly detection\n(paper: WiLocator leaves no covered segment unmarked and localises the anomaly)\n{}",
        render_table(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig11() -> &'static Fig11 {
        use std::sync::OnceLock;
        static RUN: OnceLock<Fig11> = OnceLock::new();
        RUN.get_or_init(|| run(Scale::Smoke, 17))
    }

    #[test]
    fn incident_segment_flagged() {
        let f = fig11();
        assert!(
            matches!(
                f.incident_state,
                TrafficState::VerySlow | TrafficState::Slow
            ),
            "incident classified {:?} (z = {})",
            f.incident_state,
            f.incident_z
        );
    }

    #[test]
    fn wilocator_map_is_denser_than_probe_scarce_map() {
        let f = fig11();
        assert!(
            f.unknown_wilocator <= f.unknown_agency + 1e-9,
            "WiLocator unknown {} vs agency {}",
            f.unknown_wilocator,
            f.unknown_agency
        );
        assert!(f.classified > 0);
    }

    #[test]
    fn false_alarm_rate_is_bounded() {
        let f = fig11();
        // Very-slow flags must be backed by the simulator's ground truth:
        // spurious flags (no elevated congestion multiplier at flag time)
        // must be rare. Flags on genuinely congested corridors are
        // detections, not alarms.
        assert!(
            (f.false_alarms as f64) <= 0.25 * f.classified as f64,
            "{} spurious very-slow flags of {} ({} organic)",
            f.false_alarms,
            f.classified,
            f.organic_detections
        );
    }

    #[test]
    fn anomaly_is_localised() {
        let f = fig11();
        assert!(f.localized, "anomalies found: {:?}", f.anomalies);
    }
}

//! One module per reproduced table/figure of the paper's evaluation, plus
//! the ablations DESIGN.md calls out. Every module exposes `run(…)`
//! returning structured results and `render(…)` printing the same rows or
//! series the paper reports.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod seasonal_slots;
pub mod table1;
pub mod table2;
pub mod waiting_time;

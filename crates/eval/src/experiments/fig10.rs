//! Figure 10 / §V-B.1 campus experiment: positioning a drive-by bus at
//! three probe locations of a one-way campus road segment.
//!
//! The paper constructs a second-order SVD from the eleven campus APs,
//! ranks the measured RSSI (Table II) and reports a 2 m error at each of
//! A, B and C. We reproduce the drive with both positioning paths: the
//! paper-faithful planar Tile Mapping and the production route index.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator_rf::{ApId, Scanner, ScannerConfig};
use wilocator_sim::campus;
use wilocator_svd::{
    PositionerConfig, RoutePositioner, RouteTileIndex, SignalVoronoiDiagram, SvdConfig, TileMapper,
};

use crate::render::render_table;

/// Result for one probe location.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// Location name.
    pub location: &'static str,
    /// Ground-truth arc length, metres.
    pub truth_s: f64,
    /// Error of the planar Tile-Mapping path, metres.
    pub planar_error_m: f64,
    /// Error of the route-index path, metres.
    pub route_error_m: f64,
}

/// Runs the campus drive-by.
pub fn run(seed: u64) -> Vec<ProbeResult> {
    let scene = campus(seed);
    let city = &scene.city;
    let route = &city.routes[0];

    // Server side: second-order SVD from the geo-tags.
    let svd_cfg = SvdConfig {
        resolution_m: 1.0,
        ..SvdConfig::default()
    };
    let diagram = SignalVoronoiDiagram::build(&city.server_field, city.bbox, svd_cfg);
    let mapper = TileMapper::build(&diagram, route, 1.0);
    let index = RouteTileIndex::build(&city.server_field, route, svd_cfg, 0.5);
    let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());

    // Measurement side: a scan of the true field at each probe.
    let scanner = Scanner::new(ScannerConfig {
        fading_sigma_db: 2.0,
        miss_probability: 0.0,
        ..ScannerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1610);
    scene
        .probes
        .iter()
        .map(|&(name, truth_s)| {
            let scan = scanner.scan(&city.field, route.point_at(truth_s), 0.0, &mut rng);
            let ranked: Vec<(ApId, i32)> = scan.ranked();
            let planar = mapper
                .locate(&diagram, &ranked)
                .map(|m| (m.s - truth_s).abs())
                .unwrap_or(f64::NAN);
            let route_err = positioner
                .locate(&ranked, 0.0, None)
                .map(|f| (f.s - truth_s).abs())
                .unwrap_or(f64::NAN);
            ProbeResult {
                location: name,
                truth_s,
                planar_error_m: planar,
                route_error_m: route_err,
            }
        })
        .collect()
}

/// Renders the probe results (paper: 2 m at A, B and C; average 2 m).
pub fn render(results: &[ProbeResult]) -> String {
    let mut table = vec![vec![
        "Location".to_string(),
        "truth s (m)".to_string(),
        "planar tile-mapping error (m)".to_string(),
        "route-index error (m)".to_string(),
    ]];
    for r in results {
        table.push(vec![
            r.location.to_string(),
            format!("{:.0}", r.truth_s),
            format!("{:.1}", r.planar_error_m),
            format!("{:.1}", r.route_error_m),
        ]);
    }
    let avg_planar: f64 =
        results.iter().map(|r| r.planar_error_m).sum::<f64>() / results.len().max(1) as f64;
    let avg_route: f64 =
        results.iter().map(|r| r.route_error_m).sum::<f64>() / results.len().max(1) as f64;
    format!(
        "Fig. 10 campus experiment (paper: error 2 m at A, B, C; average 2 m)\n{}average: planar {:.1} m, route-index {:.1} m\n",
        render_table(&table),
        avg_planar,
        avg_route
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_errors_are_metres_not_tens() {
        // A single scan against eleven sparse campus APs has a heavy
        // error tail (an unlucky fading draw can flip adjacent ranks and
        // move the fix by tens of metres), so assert over a batch of
        // drives rather than one draw.
        let mut avgs = Vec::new();
        for seed in 0..10 {
            let results = run(seed);
            assert_eq!(results.len(), 3);
            for r in &results {
                assert!(
                    r.route_error_m.is_finite() && r.route_error_m < 80.0,
                    "{}: route error {}",
                    r.location,
                    r.route_error_m
                );
                assert!(
                    r.planar_error_m.is_finite() && r.planar_error_m < 120.0,
                    "{}: planar error {}",
                    r.location,
                    r.planar_error_m
                );
            }
            avgs.push(results.iter().map(|r| r.route_error_m).sum::<f64>() / 3.0);
        }
        let mean = avgs.iter().sum::<f64>() / avgs.len() as f64;
        assert!(mean < 20.0, "mean route error over drives {mean}");
        // The paper reports ~2 m at A, B and C: clean drives should
        // still reach that order.
        let best = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best < 5.0, "best drive route error {best}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn render_mentions_every_probe() {
        let text = render(&run(1));
        for loc in ["A", "B", "C"] {
            assert!(text.contains(&format!("| {loc}")));
        }
    }
}

//! §V-B.2 seasonal analysis: the time-slot structure WiLocator discovers
//! from the travel-time history.
//!
//! The paper computes the seasonal index on each road segment and divides
//! the weekday into five slots (< 08:00, 08:00–10:00 morning rush,
//! 10:00–18:00, 18:00–19:00 afternoon rush, > 19:00). The simulator's
//! traffic model carries exactly two rush windows, so the discovered
//! partition should bracket them.

use wilocator_core::{seasonal_index, SeasonalConfig, SeasonalIndex, SlotPartition};
use wilocator_road::{EdgeId, RouteId};
use wilocator_sim::DAY_S;

use crate::pipeline::run_pipeline;
use crate::render::render_series;
use crate::scenarios::{vancouver_city, vancouver_pipeline, Scale};

/// The seasonal analysis of one representative arterial segment.
#[derive(Debug, Clone)]
pub struct SeasonalResult {
    /// The analysed segment.
    pub edge: EdgeId,
    /// The hourly seasonal index.
    pub index: SeasonalIndex,
    /// The discovered slot partition.
    pub partition: SlotPartition,
    /// Hour slots flagged as rush.
    pub rush_hours: Vec<usize>,
}

/// Runs the seasonal analysis for route 9's arterial: per-edge seasonal
/// indices averaged across the arterial segments.
///
/// A single 250 m segment's hourly mean over a few days is dominated by
/// traffic-light and dwell noise (tens of seconds against a ~30 s base);
/// the paper had three weeks of data per segment. Averaging the
/// *normalised* index across segments recovers the same signal-to-noise
/// at small simulated scales while testing exactly the same machinery.
pub fn run(scale: Scale, seed: u64) -> SeasonalResult {
    let city = vancouver_city(seed);
    let config = vancouver_pipeline(scale, seed);
    let route9 = city.route(RouteId(1)).expect("route 9").clone();
    let representative_edge = route9.edges()[route9.edges().len() / 3];
    let out = run_pipeline(&city, &config);
    let seasonal_cfg = SeasonalConfig::default();
    let index = out.server.with_store(|store| {
        let l = seasonal_cfg.base_slots;
        let mut sums = vec![0.0f64; l];
        let mut counts = vec![0usize; l];
        let mut samples = 0usize;
        for &edge in route9.edges() {
            let si = seasonal_index(store, edge, config.sim.days as f64 * DAY_S, &seasonal_cfg);
            if si.samples < 4 {
                continue;
            }
            samples += si.samples;
            for (slot, v) in si.index.iter().enumerate() {
                if let Some(v) = v {
                    sums[slot] += v;
                    counts[slot] += 1;
                }
            }
        }
        SeasonalIndex {
            index: sums
                .iter()
                .zip(&counts)
                .map(|(&s, &c)| (c > 0).then(|| s / c as f64))
                .collect(),
            samples,
        }
    });
    let partition = wilocator_core::partition_from_index(&index, &seasonal_cfg);
    let rush_hours = index.rush_slots(seasonal_cfg.rush_threshold);
    SeasonalResult {
        edge: representative_edge,
        index,
        partition,
        rush_hours,
    }
}

/// Renders the seasonal index curve and discovered slots.
pub fn render(r: &SeasonalResult) -> String {
    let series: Vec<(f64, f64)> = r
        .index
        .index
        .iter()
        .enumerate()
        .filter_map(|(h, si)| si.map(|v| (h as f64, v)))
        .collect();
    let mut out = format!(
        "Seasonal index of segment {} ({} samples)\n",
        r.edge, r.index.samples
    );
    out.push_str(&render_series("SI(i, l) per hour", "hour", "SI", &series));
    out.push_str(&format!(
        "discovered slots: {} (boundaries at {:?} h); rush hours: {:?}\n(paper: 5 slots — <8, 8–10, 10–18, 18–19, >19)\n",
        r.partition.slot_count(),
        r.partition
            .boundaries()
            .iter()
            .map(|b| b / 3_600.0)
            .collect::<Vec<_>>(),
        r.rush_hours
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> &'static SeasonalResult {
        use std::sync::OnceLock;
        static RUN: OnceLock<SeasonalResult> = OnceLock::new();
        RUN.get_or_init(|| run(Scale::Smoke, 23))
    }

    #[test]
    fn rush_hours_are_discovered() {
        let r = result();
        assert!(r.index.samples > 0, "no traversals recorded");
        // The traffic model's morning rush is 08:00–10:00: hour 8 or 9
        // must be flagged.
        assert!(
            r.rush_hours.iter().any(|&h| (8..=9).contains(&h)),
            "rush hours found: {:?}",
            r.rush_hours
        );
    }

    #[test]
    fn partition_has_multiple_slots() {
        let r = result();
        assert!(
            r.partition.slot_count() >= 3,
            "only {} slots",
            r.partition.slot_count()
        );
        // Morning rush sits in a different slot from midday.
        assert_ne!(
            r.partition.slot_of(9.0 * 3_600.0),
            r.partition.slot_of(13.0 * 3_600.0)
        );
    }

    #[test]
    fn render_reports_slots() {
        let text = render(result());
        assert!(text.contains("discovered slots"));
    }
}

//! Ablations and head-to-head comparisons beyond the paper's figures:
//!
//! * positioning scheme shoot-out (SVD vs every baseline in
//!   `wilocator-baselines`) — quantifies the motivation of §II;
//! * scan-period sensitivity (the prototype fixed 10 s; what does the
//!   choice cost?);
//! * AP churn (the paper's "AP b is out of function" robustness claim,
//!   §III-B) against the fingerprinting baseline that breaks;
//! * heterogeneous transmit power (when the true SVD ≠ the Euclidean VD,
//!   how much does the server's homogeneity assumption cost?).

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator_baselines::{
    CellIdMatcher, FingerprintConfig, FingerprintPositioner, GpsTracker, NearestApPositioner,
    TrilaterationPositioner,
};
use wilocator_rf::{ApId, ScannerConfig, SignalField};
use wilocator_road::RouteId;
use wilocator_sim::{
    daily_schedule, serving_tower, simple_street, simulate, CityConfig, GpsModel, SensingConfig,
    SimulationConfig, TrafficConfig, TrafficModel,
};
use wilocator_svd::{PositionerConfig, SvdConfig};

use crate::experiments::fig9::{test_scene, Sweep};
use crate::metrics::{mean, Cdf};
use crate::render::render_table;
use crate::replay::{replay_locator_errors, replay_svd_errors};
use crate::scenarios::Scale;

/// Summary row for one positioning method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Method name.
    pub name: &'static str,
    /// Number of error samples.
    pub samples: usize,
    /// Median error, metres.
    pub median_m: f64,
    /// Mean error, metres.
    pub mean_m: f64,
    /// 90th-percentile error, metres.
    pub p90_m: f64,
}

fn row(name: &'static str, errors: Vec<f64>) -> MethodRow {
    let cdf = Cdf::new(errors);
    MethodRow {
        name,
        samples: cdf.len(),
        median_m: cdf.median(),
        mean_m: cdf.mean(),
        p90_m: cdf.quantile(0.9),
    }
}

/// Head-to-head positioning comparison on the shared test street.
pub fn positioning_methods(scale: Scale, seed: u64) -> Vec<MethodRow> {
    let (city, dataset) = test_scene(scale, seed);
    let route = city.routes[0].clone();
    let mut out = Vec::new();

    // 1. WiLocator's SVD.
    out.push(row(
        "SVD (WiLocator)",
        replay_svd_errors(
            &city.routes,
            &dataset,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ),
    ));

    // 2. Nearest AP (Euclidean Voronoi).
    let nearest = NearestApPositioner::new(route.clone(), city.server_field.aps());
    out.push(row(
        "Nearest AP (VD)",
        replay_locator_errors(&city.routes, &dataset, |_, ranked| nearest.locate(ranked)),
    ));

    // 3. Fingerprinting (calibrated on the true field).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1);
    let fp = FingerprintPositioner::survey(
        &city.field,
        &route,
        ScannerConfig::default(),
        FingerprintConfig::default(),
        &mut rng,
    );
    out.push(row(
        "Fingerprint kNN",
        replay_locator_errors(&city.routes, &dataset, |_, ranked| fp.locate(ranked)),
    ));

    // 4. Log-distance trilateration.
    let tri = TrilaterationPositioner::new(route.clone(), city.server_field.aps());
    out.push(row(
        "Trilateration",
        replay_locator_errors(&city.routes, &dataset, |_, ranked| tri.locate(ranked)),
    ));

    // 5. GPS with urban canyons.
    let gps_model = GpsModel::new(city.network.edges().len(), 0.35, seed ^ 0x675);
    let gps = GpsTracker::new(route.clone());
    let mut gps_errors = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6752);
    for trip in dataset.trips_of(route.id()) {
        for bundle in &trip.bundles {
            let pos = route.position_at(bundle.true_s);
            if let Some(s) = gps.locate(gps_model.fix(pos.point, pos.edge, &mut rng)) {
                gps_errors.push((s - bundle.true_s).abs());
            }
        }
    }
    out.push(row("GPS (urban canyon)", gps_errors));

    // 6. Cell-ID sequence matching.
    let matcher = CellIdMatcher::build(&route, &city.towers, 20.0);
    let mut cell_errors = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE11);
    for trip in dataset.trips_of(route.id()) {
        let mut observed: Vec<usize> = Vec::new();
        let mut prior: Option<f64> = None;
        for bundle in &trip.bundles {
            let p = route.point_at(bundle.true_s);
            if let Some(t) = serving_tower(&city.towers, p, &mut rng) {
                observed.push(t);
            }
            let window = observed.len().saturating_sub(12);
            if let Some(s) = matcher.locate(&observed[window..], prior) {
                cell_errors.push((s - bundle.true_s).abs());
                prior = Some(s);
            }
        }
    }
    out.push(row("Cell-ID matching", cell_errors));
    out
}

/// Renders the method comparison.
pub fn render_methods(rows: &[MethodRow]) -> String {
    let mut table = vec![vec![
        "Method".to_string(),
        "samples".to_string(),
        "median (m)".to_string(),
        "mean (m)".to_string(),
        "p90 (m)".to_string(),
    ]];
    for r in rows {
        table.push(vec![
            r.name.to_string(),
            r.samples.to_string(),
            format!("{:.1}", r.median_m),
            format!("{:.1}", r.mean_m),
            format!("{:.1}", r.p90_m),
        ]);
    }
    format!("Positioning method comparison\n{}", render_table(&table))
}

/// Scan-period sensitivity: simulate the same street with different scan
/// periods, report the mean SVD positioning error.
pub fn scan_period_sweep(scale: Scale, seed: u64) -> Sweep {
    let city = simple_street(3_000.0, 8, seed, &CityConfig::default());
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let schedule = daily_schedule(&city, &[(RouteId(0), scale.headway_s())]);
    let mut points = Vec::new();
    for period in [5.0, 10.0, 20.0, 30.0, 40.0] {
        let sim = SimulationConfig {
            days: 1,
            seed,
            sensing: SensingConfig {
                scan_period_s: period,
                ..SensingConfig::default()
            },
            ..SimulationConfig::default()
        };
        let dataset = simulate(&city, &schedule, &traffic, &sim);
        let errors = replay_svd_errors(
            &city.routes,
            &dataset,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        );
        points.push((period, mean(&errors)));
    }
    Sweep {
        x_label: "scan period (s)",
        points,
    }
}

/// AP-churn robustness: kill a growing fraction of APs *after* the server
/// built its SVD and the fingerprint survey finished; compare the stale
/// SVD, a rebuilt SVD (server noticed the dead BSSIDs) and the stale
/// fingerprint database.
///
/// Returns `(dead fraction, stale SVD, rebuilt SVD, stale fingerprint)`
/// mean errors in metres.
pub fn ap_churn(scale: Scale, seed: u64) -> Vec<(f64, f64, f64, f64)> {
    let (city, _) = test_scene(scale, seed);
    let route = city.routes[0].clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let fp = FingerprintPositioner::survey(
        &city.field,
        &route,
        ScannerConfig::default(),
        FingerprintConfig::default(),
        &mut rng,
    );
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let schedule = daily_schedule(&city, &[(RouteId(0), scale.headway_s())]);
    let mut out = Vec::new();
    for frac in [0.0, 0.1, 0.25, 0.4] {
        let n_dead = (city.field.aps().len() as f64 * frac) as usize;
        let dead: Vec<ApId> = city
            .field
            .aps()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 < (n_dead * 7 / city.field.aps().len().max(1)))
            .map(|(_, ap)| ap.id())
            .collect();
        // Re-simulate with the churned physical field.
        let mut churned = city.clone();
        churned.field = city.field.without_aps(&dead);
        let dataset = simulate(
            &churned,
            &schedule,
            &traffic,
            &SimulationConfig {
                days: 1,
                seed,
                ..SimulationConfig::default()
            },
        );
        // Stale SVD: the server still believes the dead APs exist.
        let stale = mean(&replay_svd_errors(
            &churned.routes,
            &dataset,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ));
        // Rebuilt SVD: geo-tag database pruned.
        let rebuilt_field = city.server_field.without_aps(&dead);
        let rebuilt = mean(&replay_svd_errors(
            &churned.routes,
            &dataset,
            &rebuilt_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ));
        // Stale fingerprints.
        let fp_err = mean(&replay_locator_errors(
            &churned.routes,
            &dataset,
            |_, ranked| fp.locate(ranked),
        ));
        out.push((frac, stale, rebuilt, fp_err));
    }
    out
}

/// Renders the churn table.
pub fn render_churn(rows: &[(f64, f64, f64, f64)]) -> String {
    let mut table = vec![vec![
        "dead APs".to_string(),
        "stale SVD (m)".to_string(),
        "rebuilt SVD (m)".to_string(),
        "stale fingerprint (m)".to_string(),
    ]];
    for &(frac, stale, rebuilt, fp) in rows {
        table.push(vec![
            format!("{:.0} %", frac * 100.0),
            format!("{stale:.1}"),
            format!("{rebuilt:.1}"),
            format!("{fp:.1}"),
        ]);
    }
    format!(
        "AP churn robustness (paper §III-B)\n{}",
        render_table(&table)
    )
}

/// Heterogeneous transmit power: widen the true TX spread while the server
/// keeps assuming homogeneity. Returns `(spread dB, SVD, nearest-AP)` mean
/// errors.
pub fn hetero_power(scale: Scale, seed: u64) -> Vec<(f64, f64, f64)> {
    let mut out = Vec::new();
    for spread in [0.0, 4.0, 8.0, 12.0] {
        let config = CityConfig {
            ap_tx_dbm: (20.0 - spread / 2.0, 20.0 + spread / 2.0 + 1e-6),
            ..CityConfig::default()
        };
        let city = simple_street(3_000.0, 8, seed, &config);
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
        let schedule = daily_schedule(&city, &[(RouteId(0), scale.headway_s())]);
        let dataset = simulate(
            &city,
            &schedule,
            &traffic,
            &SimulationConfig {
                days: 1,
                seed,
                ..SimulationConfig::default()
            },
        );
        let svd = mean(&replay_svd_errors(
            &city.routes,
            &dataset,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ));
        let nearest = NearestApPositioner::new(city.routes[0].clone(), city.server_field.aps());
        let near = mean(&replay_locator_errors(
            &city.routes,
            &dataset,
            |_, ranked| nearest.locate(ranked),
        ));
        out.push((spread, svd, near));
    }
    out
}

/// Renders the heterogeneous-power table.
pub fn render_hetero(rows: &[(f64, f64, f64)]) -> String {
    let mut table = vec![vec![
        "TX spread (dB)".to_string(),
        "SVD (m)".to_string(),
        "nearest AP (m)".to_string(),
    ]];
    for &(spread, svd, near) in rows {
        table.push(vec![
            format!("{spread:.0}"),
            format!("{svd:.1}"),
            format!("{near:.1}"),
        ]);
    }
    format!(
        "Heterogeneous TX power (true SVD ≠ Euclidean VD)\n{}",
        render_table(&table)
    )
}

/// Propagation-model mismatch: the true channel's path-loss exponent
/// sweeps away from the n = 3.0 the server always assumes. The paper's
/// claim — "no calibration or RF propagation model is required" — predicts
/// the rank-based SVD barely notices (ranks survive any monotone
/// transformation of distance), while model-inverting trilateration
/// degrades with the mismatch.
///
/// Returns `(true exponent, SVD mean error m, trilateration mean error m)`.
pub fn model_mismatch(scale: Scale, seed: u64) -> Vec<(f64, f64, f64)> {
    use wilocator_rf::{LogDistance, PhysicalField};

    let base = simple_street(3_000.0, 8, seed, &CityConfig::default());
    let route = base.routes[0].clone();
    let schedule = daily_schedule(&base, &[(RouteId(0), scale.headway_s())]);
    let tri = TrilaterationPositioner::new(route.clone(), base.server_field.aps());
    let mut out = Vec::new();
    for exponent in [2.4, 2.7, 3.0, 3.3, 3.6] {
        let mut city = base.clone();
        city.field = PhysicalField::new(
            city.field.aps().to_vec(),
            LogDistance::new(40.0, exponent, 1.0),
            *city.field.shadowing(),
        );
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
        let dataset = simulate(
            &city,
            &schedule,
            &traffic,
            &SimulationConfig {
                days: 1,
                seed,
                ..SimulationConfig::default()
            },
        );
        // The server keeps its n = 3.0 assumption in both schemes.
        let svd = mean(&replay_svd_errors(
            &city.routes,
            &dataset,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ));
        let tri_err = mean(&replay_locator_errors(
            &city.routes,
            &dataset,
            |_, ranked| tri.locate(ranked),
        ));
        out.push((exponent, svd, tri_err));
    }
    out
}

/// Renders the model-mismatch table.
pub fn render_mismatch(rows: &[(f64, f64, f64)]) -> String {
    let mut table = vec![vec![
        "true exponent (server assumes 3.0)".to_string(),
        "SVD (m)".to_string(),
        "trilateration (m)".to_string(),
    ]];
    for &(n, svd, tri) in rows {
        table.push(vec![
            format!("{n:.1}"),
            format!("{svd:.1}"),
            format!("{tri:.1}"),
        ]);
    }
    format!(
        "Propagation-model mismatch (paper: \"no calibration or RF propagation model is required\")\n{}",
        render_table(&table)
    )
}

/// Hybrid WiFi/GPS tracking through a coverage gap (the paper's §VII
/// extension): WiFi-only dead-reckons through an AP-free stretch; the
/// hybrid tracker powers GPS up only inside the gap. Returns
/// `(wifi_only_mean_m, hybrid_mean_m, gps_duty_cycle)`.
pub fn hybrid_gap(scale: Scale, seed: u64) -> (f64, f64, f64) {
    use wilocator_core::{FixSource, HybridConfig, HybridTracker};
    use wilocator_svd::{RoutePositioner, RouteTileIndex, TrackingFilter};

    // A street whose middle 800 m has no APs.
    let mut city = simple_street(3_000.0, 6, seed, &CityConfig::default());
    let gap_aps: Vec<ApId> = city
        .field
        .aps()
        .iter()
        .filter(|ap| ap.position().x > 1_100.0 && ap.position().x < 1_900.0)
        .map(|ap| ap.id())
        .collect();
    city.field = city.field.without_aps(&gap_aps);
    city.server_field = city.server_field.without_aps(&gap_aps);
    let route = city.routes[0].clone();

    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let schedule = daily_schedule(&city, &[(RouteId(0), scale.headway_s())]);
    let dataset = simulate(
        &city,
        &schedule,
        &traffic,
        &SimulationConfig {
            days: 1,
            seed,
            ..SimulationConfig::default()
        },
    );

    let index = RouteTileIndex::build(&city.server_field, &route, SvdConfig::default(), 2.0);
    let positioner = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
    let gps_model = GpsModel::new(city.network.edges().len(), 0.3, seed ^ 0x9);

    let mut wifi_errors = Vec::new();
    let mut hybrid_errors = Vec::new();
    let mut duty_sum = 0.0;
    let mut trips = 0usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4B);
    for trip in dataset.trips_of(route.id()) {
        let mut wifi = TrackingFilter::new(positioner.clone());
        let mut hybrid = HybridTracker::new(positioner.clone(), HybridConfig::default());
        for bundle in &trip.bundles {
            let avg = wilocator_svd::average_ranks(&bundle.scans, 1);
            let ranked: Vec<(ApId, i32)> = avg
                .iter()
                .map(|a| (a.ap, a.mean_rss_dbm.round() as i32))
                .collect();
            if let Some(fix) = wifi.step(&ranked, bundle.time_s) {
                wifi_errors.push((fix.s - bundle.true_s).abs());
            }
            let pos = route.position_at(bundle.true_s);
            let fix = hybrid.ingest(&ranked, bundle.time_s, || {
                gps_model.fix(pos.point, pos.edge, &mut rng)
            });
            if let Some(fix) = fix {
                let _ = matches!(fix.source, FixSource::Gps);
                hybrid_errors.push((fix.s - bundle.true_s).abs());
            }
        }
        duty_sum += hybrid.gps_duty_cycle();
        trips += 1;
    }
    (
        mean(&wifi_errors),
        mean(&hybrid_errors),
        duty_sum / trips.max(1) as f64,
    )
}

/// Renders the hybrid-gap result.
pub fn render_hybrid(result: (f64, f64, f64)) -> String {
    let (wifi, hybrid, duty) = result;
    format!(
        "Hybrid WiFi/GPS through an 800 m coverage gap (paper §VII)\n\
         | tracker    | mean error (m) |\n\
         |------------|----------------|\n\
         | WiFi only  | {wifi:14.1} |\n\
         | hybrid     | {hybrid:14.1} |\n\
         GPS duty cycle: {:.0} % (an always-on AVL unit burns 100 %)\n",
        duty * 100.0
    )
}

/// Relative dispersion of a sweep (σ/μ of the y-values) — a quick
/// flatness statistic for sweep results.
pub fn sweep_spread(sweep: &Sweep) -> f64 {
    let ys: Vec<f64> = sweep.points.iter().map(|&(_, y)| y).collect();
    crate::metrics::std_dev(&ys) / mean(&ys).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svd_beats_coarse_baselines() {
        let rows = positioning_methods(Scale::Smoke, 11);
        let get = |name: &str| rows.iter().find(|r| r.name.starts_with(name)).unwrap();
        let svd = get("SVD");
        let nearest = get("Nearest");
        let cell = get("Cell-ID");
        assert!(svd.samples > 0 && nearest.samples > 0 && cell.samples > 0);
        // The paper's ordering: SVD ≺ nearest-AP ≺ Cell-ID. Medians are
        // the paper's headline metric (means are tail-dominated by the
        // rare divergence episodes every scheme has).
        assert!(
            svd.median_m < nearest.median_m,
            "SVD {} vs nearest {}",
            svd.median_m,
            nearest.median_m
        );
        assert!(
            nearest.mean_m < cell.mean_m,
            "nearest {} vs cell {}",
            nearest.mean_m,
            cell.mean_m
        );
    }

    #[test]
    fn longer_scan_periods_cost_accuracy() {
        let sweep = scan_period_sweep(Scale::Smoke, 11);
        assert_eq!(sweep.points.len(), 5);
        let at5 = sweep.points[0].1;
        let at40 = sweep.points[4].1;
        assert!(
            at40 >= at5 * 0.8,
            "sparser scans should not be better: {at40} vs {at5}"
        );
    }

    #[test]
    fn churn_hurts_fingerprints_more_than_rebuilt_svd() {
        let rows = ap_churn(Scale::Smoke, 11);
        assert_eq!(rows.len(), 4);
        let (_, _, rebuilt0, fp0) = rows[0];
        let (_, _, rebuilt40, fp40) = rows[3];
        let svd_growth = rebuilt40 / rebuilt0.max(1e-9);
        let fp_growth = fp40 / fp0.max(1e-9);
        assert!(
            fp_growth >= svd_growth * 0.8,
            "fingerprint should degrade at least comparably: {fp_growth} vs {svd_growth}"
        );
    }

    #[test]
    fn hetero_power_degrades_gracefully() {
        let rows = hetero_power(Scale::Smoke, 11);
        assert_eq!(rows.len(), 4);
        for &(_, svd, near) in &rows {
            assert!(svd.is_finite() && near.is_finite());
        }
        // At realistic spreads (≤ 4 dB — "the transmitted power of the
        // WiFi APs is often limited", §V-A) the rank-based SVD beats the
        // nearest-AP scheme. At extreme spreads the server's homogeneity
        // assumption costs it that edge — an honest limitation the table
        // documents.
        for &(spread, svd, near) in rows.iter().take(2) {
            assert!(
                svd < near * 1.2,
                "at {spread} dB spread: svd {svd} vs nearest {near}"
            );
        }
        // Error grows with the spread (the assumption really is load-bearing).
        assert!(
            rows[3].1 > rows[0].1,
            "12 dB spread should hurt the SVD: {} vs {}",
            rows[3].1,
            rows[0].1
        );
    }

    #[test]
    fn renders_are_nonempty() {
        let rows = positioning_methods(Scale::Smoke, 11);
        assert!(render_methods(&rows).contains("SVD"));
    }

    #[test]
    fn svd_shrugs_off_model_mismatch() {
        let rows = model_mismatch(Scale::Smoke, 11);
        assert_eq!(rows.len(), 5);
        let svd_at = |n: f64| rows.iter().find(|r| (r.0 - n).abs() < 1e-9).unwrap().1;
        let tri_at = |n: f64| rows.iter().find(|r| (r.0 - n).abs() < 1e-9).unwrap().2;
        // Rank-based positioning is insensitive to the exponent (ranks are
        // invariant under monotone distance transforms) …
        let svd_spread = (svd_at(2.4) - svd_at(3.0))
            .abs()
            .max((svd_at(3.6) - svd_at(3.0)).abs());
        assert!(
            svd_spread <= svd_at(3.0) * 0.8 + 5.0,
            "SVD moved {svd_spread} m across the exponent sweep"
        );
        // … while trilateration visibly degrades away from n = 3.0.
        let tri_degradation = tri_at(2.4).max(tri_at(3.6)) / tri_at(3.0).max(1e-9);
        assert!(
            tri_degradation > 1.15,
            "trilateration should suffer from the mismatch: ratio {tri_degradation}"
        );
        assert!(render_mismatch(&rows).contains("exponent"));
    }

    #[test]
    fn hybrid_closes_the_coverage_gap() {
        let (wifi, hybrid, duty) = hybrid_gap(Scale::Smoke, 11);
        assert!(
            hybrid < wifi * 0.8,
            "hybrid {hybrid} m should beat WiFi-only {wifi} m through the gap"
        );
        assert!(duty > 0.0 && duty < 0.7, "GPS duty cycle {duty}");
        assert!(render_hybrid((wifi, hybrid, duty)).contains("duty"));
    }
}

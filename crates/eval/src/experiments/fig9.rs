//! Figure 9: mean positioning error versus the number of WiFi APs (a) and
//! versus the order of the SVD (b).
//!
//! Both panels hold one recorded dataset fixed and vary only the server's
//! SVD: panel (a) subsamples the geo-tag database (fewer known APs), panel
//! (b) raises the signature order. Paper findings to reproduce: error
//! decreases slowly with more APs (≈ 3.15 m → 2.8 m on their routes) and
//! "the positioning error does not change significantly when the order of
//! SVD increases; 2-order SVD is often enough".

use wilocator_rf::SignalField;
use wilocator_road::RouteId;
use wilocator_sim::{
    daily_schedule, simple_street, simulate, City, CityConfig, Dataset, SimulationConfig,
    TrafficConfig, TrafficModel,
};
use wilocator_svd::{PositionerConfig, SvdConfig};

use crate::metrics::mean;
use crate::render::render_series;
use crate::replay::{replay_svd_errors, subsample_field};
use crate::scenarios::Scale;

/// A `(x, mean error)` sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Descriptive x-axis label.
    pub x_label: &'static str,
    /// `(x, mean positioning error in metres)` points.
    pub points: Vec<(f64, f64)>,
}

/// The shared test street + dataset both panels replay.
pub fn test_scene(scale: Scale, seed: u64) -> (City, Dataset) {
    let city = simple_street(3_000.0, 8, seed, &CityConfig::default());
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let schedule = daily_schedule(&city, &[(RouteId(0), scale.headway_s())]);
    let sim = SimulationConfig {
        days: 1.max(scale.days() / 2),
        seed,
        ..SimulationConfig::default()
    };
    let dataset = simulate(&city, &schedule, &traffic, &sim);
    (city, dataset)
}

/// Panel (a): sweep the number of APs known to the server. Sweep points
/// replay the same recorded dataset independently, so they run on scoped
/// threads.
pub fn run_fig9a(scale: Scale, seed: u64) -> Sweep {
    let (city, dataset) = test_scene(scale, seed);
    let keeps = [6usize, 4, 3, 2, 1];
    let points = std::thread::scope(|s| {
        let handles: Vec<_> = keeps
            .iter()
            .map(|&keep_every| {
                let city = &city;
                let dataset = &dataset;
                s.spawn(move || {
                    let field = subsample_field(&city.server_field, keep_every);
                    let errors = replay_svd_errors(
                        &city.routes,
                        dataset,
                        &field,
                        SvdConfig::default(),
                        PositionerConfig::default(),
                        2.0,
                    );
                    (field.aps().len() as f64, mean(&errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    });
    Sweep {
        x_label: "number of WiFi APs",
        points,
    }
}

/// Panel (b): sweep the SVD order (parallel over orders, like panel (a)).
pub fn run_fig9b(scale: Scale, seed: u64) -> Sweep {
    let (city, dataset) = test_scene(scale, seed);
    let points = std::thread::scope(|s| {
        let handles: Vec<_> = (1..=5usize)
            .map(|order| {
                let city = &city;
                let dataset = &dataset;
                s.spawn(move || {
                    let errors = replay_svd_errors(
                        &city.routes,
                        dataset,
                        &city.server_field,
                        SvdConfig {
                            order,
                            ..SvdConfig::default()
                        },
                        PositionerConfig {
                            order,
                            ..PositionerConfig::default()
                        },
                        2.0,
                    );
                    (order as f64, mean(&errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    });
    Sweep {
        x_label: "order of SVD",
        points,
    }
}

/// Renders a sweep as the figure's series.
pub fn render(title: &str, sweep: &Sweep) -> String {
    render_series(title, sweep.x_label, "mean_error_m", &sweep.points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_aps_do_not_hurt() {
        let sweep = run_fig9a(Scale::Smoke, 3);
        assert_eq!(sweep.points.len(), 5);
        // x strictly increasing (more APs kept).
        for w in sweep.points.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // Error with all APs is no worse than with 1/6 of them
        // (Proposition 3: more APs ⇒ higher accuracy).
        let sparsest = sweep.points.first().unwrap().1;
        let densest = sweep.points.last().unwrap().1;
        assert!(
            densest <= sparsest,
            "error should not grow with APs: {densest} vs {sparsest}"
        );
    }

    #[test]
    fn order_two_captures_most_of_the_gain() {
        let sweep = run_fig9b(Scale::Smoke, 3);
        assert_eq!(sweep.points.len(), 5);
        let o1 = sweep.points[0].1;
        let o2 = sweep.points[1].1;
        // Order 2 improves over order 1 (Proposition 2)…
        assert!(o2 <= o1, "order 2 ({o2}) worse than order 1 ({o1})");
        // …and higher orders change nothing dramatic: under per-scan
        // fading the extra tail ranks add as much noise as information,
        // which is exactly why the paper settles on order 2 (footnote 4).
        for &(order, err) in &sweep.points[2..] {
            assert!(
                err <= o2 * 2.0 + 5.0,
                "order {order} ({err}) collapsed relative to order 2 ({o2})"
            );
        }
    }

    #[test]
    fn render_has_points() {
        let sweep = run_fig9b(Scale::Smoke, 3);
        let text = render("fig9b", &sweep);
        assert!(text.lines().count() >= 7);
    }
}

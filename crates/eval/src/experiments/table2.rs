//! Table II: measured RSSI from surrounding APs at campus locations
//! A, B, C.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator_rf::{Scanner, ScannerConfig, SignalField};
use wilocator_sim::campus;

use crate::render::render_table;

/// The RSSI list observed at one probe location.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRow {
    /// Location name (A, B, C).
    pub location: &'static str,
    /// `(AP name, RSS dBm)`, strongest first.
    pub readings: Vec<(String, i32)>,
}

/// Reproduces Table II: one scan at each probe location of the campus
/// scene, listing the surrounding APs strongest-first.
pub fn run(seed: u64) -> Vec<ProbeRow> {
    let scene = campus(seed);
    let route = &scene.city.routes[0];
    let scanner = Scanner::new(ScannerConfig {
        fading_sigma_db: 2.0,
        miss_probability: 0.0,
        ..ScannerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AB1E2);
    scene
        .probes
        .iter()
        .map(|&(name, s)| {
            let scan = scanner.scan(&scene.city.field, route.point_at(s), 0.0, &mut rng);
            let readings = scan
                .ranked()
                .into_iter()
                .map(|(ap, rss)| {
                    (
                        scene.city.field.aps()[ap.0 as usize].ssid().to_string(),
                        rss,
                    )
                })
                .collect();
            ProbeRow {
                location: name,
                readings,
            }
        })
        .collect()
}

/// Renders the probe rows in the paper's "AP(RSS)" list style.
pub fn render(rows: &[ProbeRow]) -> String {
    let mut table = vec![vec![
        "Location".to_string(),
        "List of surrounding WiFi APs (RSS in dBm)".to_string(),
    ]];
    for row in rows {
        let list = row
            .readings
            .iter()
            .map(|(name, rss)| format!("{}({})", name.replace("campus-", ""), rss))
            .collect::<Vec<_>>()
            .join(", ");
        table.push(vec![row.location.to_string(), list]);
    }
    render_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_hear_multiple_aps_strongest_first() {
        let rows = run(1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.readings.len() >= 3,
                "{} heard only {}",
                row.location,
                row.readings.len()
            );
            for w in row.readings.windows(2) {
                assert!(w[0].1 >= w[1].1, "not sorted at {}", row.location);
            }
        }
    }

    #[test]
    fn location_a_is_dominated_by_the_mid_cluster() {
        // Probe A sits near AP9/AP10 (Table II: A hears AP10, AP9, AP11).
        let rows = run(1);
        let a = &rows[0];
        assert_eq!(a.location, "A");
        let top: Vec<&str> = a.readings.iter().take(3).map(|(n, _)| n.as_str()).collect();
        assert!(
            top.iter().any(|n| n.contains("AP9") || n.contains("AP10")),
            "top-3 at A: {top:?}"
        );
    }

    #[test]
    fn render_lists_all_locations() {
        let text = render(&run(1));
        for loc in ["A", "B", "C"] {
            assert!(text.contains(&format!("| {loc}")));
        }
    }
}

//! Figure 8: positioning-error CDFs (a), arrival-prediction-error CDFs
//! during rush hours (b), and mean prediction error versus the number of
//! bus stops ahead (c).
//!
//! One full pipeline run over the Vancouver scenario supplies all three
//! panels, exactly as the paper's single 3-week dataset did.

use wilocator_road::RouteId;

use crate::metrics::Cdf;
use crate::pipeline::{run_pipeline, PipelineOutput};
use crate::render::{render_series, render_table};
use crate::scenarios::{route_name, vancouver_city, vancouver_pipeline, Scale};

/// The Figure-8 experiment output.
#[derive(Debug)]
pub struct Fig8 {
    /// The underlying pipeline run.
    pub out: PipelineOutput,
}

/// Runs the Vancouver pipeline at the given scale.
pub fn run(scale: Scale, seed: u64) -> Fig8 {
    let city = vancouver_city(seed);
    let config = vancouver_pipeline(scale, seed);
    Fig8 {
        out: run_pipeline(&city, &config),
    }
}

impl Fig8 {
    /// Panel (a): the positioning-error CDF of one route.
    pub fn positioning_cdf(&self, route: RouteId) -> Cdf {
        Cdf::new(
            self.out
                .positioning
                .get(&route)
                .cloned()
                .unwrap_or_default(),
        )
    }

    /// Panel (b): rush-hour arrival-prediction error CDFs for WiLocator,
    /// the transit agency and the same-route baseline.
    pub fn prediction_cdfs_rush(&self) -> (Cdf, Cdf, Cdf) {
        let rush: Vec<_> = self.out.predictions.iter().filter(|p| p.rush).collect();
        (
            rush.iter().map(|p| p.wilocator_err()).collect(),
            rush.iter().map(|p| p.agency_err()).collect(),
            rush.iter().map(|p| p.same_route_err()).collect(),
        )
    }

    /// Panel (c): mean rush-hour prediction error (seconds) versus number
    /// of stops ahead, for one route.
    pub fn error_vs_stops(&self, route: RouteId, max_stops: usize) -> Vec<(usize, f64)> {
        (1..=max_stops)
            .filter_map(|ahead| {
                let errs: Vec<f64> = self
                    .out
                    .predictions
                    .iter()
                    .filter(|p| p.route == route && p.rush && p.stops_ahead == ahead)
                    .map(|p| p.wilocator_err())
                    .collect();
                (!errs.is_empty()).then(|| (ahead, errs.iter().sum::<f64>() / errs.len() as f64))
            })
            .collect()
    }

    /// Renders panel (a) as per-route quantile rows.
    pub fn render_fig8a(&self) -> String {
        let mut table = vec![vec![
            "Route".to_string(),
            "samples".to_string(),
            "p10 (m)".to_string(),
            "median (m)".to_string(),
            "p90 (m)".to_string(),
            "max (m)".to_string(),
        ]];
        for id in 0..4 {
            let route = RouteId(id);
            let cdf = self.positioning_cdf(route);
            table.push(vec![
                route_name(route).to_string(),
                cdf.len().to_string(),
                format!("{:.1}", cdf.quantile(0.1)),
                format!("{:.1}", cdf.median()),
                format!("{:.1}", cdf.quantile(0.9)),
                format!("{:.1}", cdf.max()),
            ]);
        }
        let mut out = String::from("Fig. 8(a): CDF of positioning errors (paper: median < 3 m)\n");
        out.push_str(&render_table(&table));
        for id in 0..4 {
            let route = RouteId(id);
            let cdf = self.positioning_cdf(route);
            out.push_str(&render_series(
                &format!("CDF positioning error, route {}", route_name(route)),
                "error_m",
                "cdf",
                &cdf.curve(20),
            ));
        }
        out
    }

    /// Renders panel (b).
    pub fn render_fig8b(&self) -> String {
        let (wilo, agency, same) = self.prediction_cdfs_rush();
        let mut table = vec![vec![
            "Predictor".to_string(),
            "samples".to_string(),
            "median (s)".to_string(),
            "p90 (s)".to_string(),
            "max (s)".to_string(),
        ]];
        for (name, cdf) in [
            ("WiLocator", &wilo),
            ("Transit Agency", &agency),
            ("Same-route only", &same),
        ] {
            table.push(vec![
                name.to_string(),
                cdf.len().to_string(),
                format!("{:.0}", cdf.median()),
                format!("{:.0}", cdf.quantile(0.9)),
                format!("{:.0}", cdf.max()),
            ]);
        }
        let mut out = String::from(
            "Fig. 8(b): CDF of rush-hour arrival prediction errors\n(paper: comparable medians; agency max ≈ 800 s vs WiLocator ≈ 500 s)\n",
        );
        out.push_str(&render_table(&table));
        out.push_str(&render_series(
            "CDF WiLocator",
            "error_s",
            "cdf",
            &wilo.curve(20),
        ));
        out.push_str(&render_series(
            "CDF Transit Agency",
            "error_s",
            "cdf",
            &agency.curve(20),
        ));
        out
    }

    /// Renders panel (c).
    pub fn render_fig8c(&self) -> String {
        let mut out = String::from(
            "Fig. 8(c): mean prediction error vs number of stops ahead (rush hours)\n(paper: increasing trend, Rapid Line lowest, max ≈ 210 s)\n",
        );
        for id in 0..4 {
            let route = RouteId(id);
            let series: Vec<(f64, f64)> = self
                .error_vs_stops(route, 19)
                .into_iter()
                .map(|(a, e)| (a as f64, e))
                .collect();
            out.push_str(&render_series(
                &format!("route {}", route_name(route)),
                "stops_ahead",
                "mean_error_s",
                &series,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared smoke-scale run for all Fig. 8 assertions (the pipeline
    // dominates test time).
    fn fig8() -> &'static Fig8 {
        use std::sync::OnceLock;
        static RUN: OnceLock<Fig8> = OnceLock::new();
        RUN.get_or_init(|| run(Scale::Smoke, 42))
    }

    #[test]
    fn positioning_is_accurate_for_every_route() {
        let f = fig8();
        for id in 0..4 {
            let cdf = f.positioning_cdf(RouteId(id));
            assert!(!cdf.is_empty(), "route {id} never positioned");
            assert!(cdf.median() < 40.0, "route {id} median {} m", cdf.median());
        }
    }

    #[test]
    fn predictions_exist_and_wilocator_tail_not_worse() {
        let f = fig8();
        let (wilo, agency, _same) = f.prediction_cdfs_rush();
        assert!(!wilo.is_empty(), "no rush-hour predictions recorded");
        // The paper's headline: WiLocator's tail is shorter than the
        // agency's. At smoke scale we only require non-inferiority.
        assert!(
            wilo.quantile(0.9) <= agency.quantile(0.9) * 1.25,
            "WiLocator p90 {} vs agency {}",
            wilo.quantile(0.9),
            agency.quantile(0.9)
        );
    }

    #[test]
    fn error_grows_with_horizon() {
        let f = fig8();
        for id in 0..4 {
            let series = f.error_vs_stops(RouteId(id), 19);
            if series.len() >= 4 {
                let first = series[0].1;
                let last = series.last().unwrap().1;
                assert!(
                    last >= first * 0.5,
                    "route {id}: error collapsed with horizon ({first} → {last})"
                );
            }
        }
    }

    #[test]
    fn renders_are_nonempty() {
        let f = fig8();
        assert!(f.render_fig8a().contains("Rapid Line"));
        assert!(f.render_fig8b().contains("Transit Agency"));
        assert!(f.render_fig8c().contains("stops_ahead"));
    }
}

//! Replaying recorded scan bundles through alternative positioners.
//!
//! The parameter sweeps (Figs. 9a/9b, the ablations) hold the *dataset*
//! fixed and vary only the server side — which APs it knows, which SVD
//! order it uses, which positioning scheme it runs — so differences in the
//! error series are attributable to the server configuration alone.

use std::collections::HashSet;

use wilocator_rf::{ApId, HomogeneousField, SignalField};
use wilocator_road::{Route, RouteId};
use wilocator_sim::Dataset;
use wilocator_svd::{
    average_ranks, PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig, TrackingFilter,
};

/// Replays `dataset`'s scan bundles against an SVD positioner built from
/// `server_field`, returning one road-error sample (metres) per fix.
///
/// Readings from APs absent from `known` are dropped before ranking —
/// the paper's "readings from unknown APs are ignored".
pub fn replay_svd_errors(
    routes: &[Route],
    dataset: &Dataset,
    server_field: &HomogeneousField,
    svd: SvdConfig,
    positioner: PositionerConfig,
    sample_step_m: f64,
) -> Vec<f64> {
    let known: HashSet<ApId> = server_field.aps().iter().map(|ap| ap.id()).collect();
    let mut errors = Vec::new();
    for route in routes {
        let index = RouteTileIndex::build(server_field, route, svd, sample_step_m);
        let pos = RoutePositioner::new(route.clone(), index, positioner);
        let mut filter = TrackingFilter::new(pos);
        for trip in dataset.trips_of(route.id()) {
            filter.reset();
            for bundle in &trip.bundles {
                let avg = average_ranks(&bundle.scans, 1);
                let ranked: Vec<(ApId, i32)> = avg
                    .iter()
                    .filter(|a| known.contains(&a.ap))
                    .map(|a| (a.ap, a.mean_rss_dbm.round() as i32))
                    .collect();
                if let Some(fix) = filter.step(&ranked, bundle.time_s) {
                    errors.push((fix.s - bundle.true_s).abs());
                }
            }
        }
    }
    errors
}

/// Replays the bundles through an arbitrary stateless locator
/// `locate(route, ranked) -> Option<s>`, returning error samples.
pub fn replay_locator_errors(
    routes: &[Route],
    dataset: &Dataset,
    mut locate: impl FnMut(RouteId, &[(ApId, i32)]) -> Option<f64>,
) -> Vec<f64> {
    let mut errors = Vec::new();
    for route in routes {
        for trip in dataset.trips_of(route.id()) {
            for bundle in &trip.bundles {
                let avg = average_ranks(&bundle.scans, 1);
                let ranked: Vec<(ApId, i32)> = avg
                    .iter()
                    .map(|a| (a.ap, a.mean_rss_dbm.round() as i32))
                    .collect();
                if let Some(s) = locate(route.id(), &ranked) {
                    errors.push((s - bundle.true_s).abs());
                }
            }
        }
    }
    errors
}

/// Takes every `k`-th geo-tagged AP of a field — the Fig. 9a "number of
/// WiFi APs" knob (the server deliberately uses fewer geo-tags).
pub fn subsample_field(field: &HomogeneousField, keep_every: usize) -> HomogeneousField {
    let keep_every = keep_every.max(1);
    let dead: Vec<ApId> = field
        .aps()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % keep_every != 0)
        .map(|(_, ap)| ap.id())
        .collect();
    field.without_aps(&dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_road::RouteId;
    use wilocator_sim::{
        simple_street, simulate, CityConfig, SimulationConfig, TrafficConfig, TrafficModel,
    };

    fn small_run() -> (wilocator_sim::City, Dataset) {
        let city = simple_street(1_200.0, 3, 5, &CityConfig::default());
        let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 5);
        let mut sched = wilocator_road::Schedule::new();
        sched.add_headway_service(RouteId(0), 8.0 * 3_600.0, 9.0 * 3_600.0, 1_800.0);
        let ds = simulate(
            &city,
            &sched,
            &traffic,
            &SimulationConfig {
                days: 1,
                ..SimulationConfig::default()
            },
        );
        (city, ds)
    }

    #[test]
    fn svd_replay_produces_reasonable_errors() {
        let (city, ds) = small_run();
        let errors = replay_svd_errors(
            &city.routes,
            &ds,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        );
        assert!(!errors.is_empty());
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 60.0, "mean error {mean}");
    }

    #[test]
    fn subsampling_increases_error() {
        let (city, ds) = small_run();
        let full = replay_svd_errors(
            &city.routes,
            &ds,
            &city.server_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        );
        let sparse_field = subsample_field(&city.server_field, 4);
        assert!(sparse_field.aps().len() < city.server_field.aps().len());
        let sparse = replay_svd_errors(
            &city.routes,
            &ds,
            &sparse_field,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        );
        let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            m(&sparse) > m(&full) * 0.9,
            "4x fewer APs should not get markedly better: {} vs {}",
            m(&sparse),
            m(&full)
        );
    }

    #[test]
    fn locator_replay_runs_baseline() {
        let (city, ds) = small_run();
        let pos = wilocator_baselines::NearestApPositioner::new(
            city.routes[0].clone(),
            city.server_field.aps(),
        );
        let errors = replay_locator_errors(&city.routes, &ds, |_, ranked| pos.locate(ranked));
        assert!(!errors.is_empty());
    }

    #[test]
    fn subsample_keeps_every_kth() {
        let (city, _) = small_run();
        let half = subsample_field(&city.server_field, 2);
        let n = city.server_field.aps().len();
        assert_eq!(half.aps().len(), n.div_ceil(2));
        let all = subsample_field(&city.server_field, 1);
        assert_eq!(all.aps().len(), n);
    }
}

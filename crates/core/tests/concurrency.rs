//! Deterministic multi-threaded ingestion: replaying a seeded simulated
//! day from N threads must produce exactly the single-threaded state.
//!
//! The server's guarantee is per bus — the same reports for a bus in the
//! same order yield the same fixes and travel-time records, whatever the
//! cross-bus interleaving. The load generator's lanes keep each trip's
//! events on one thread, so every thread count replays to identical
//! trackers, stores and (after training) predictors.

use wilocator_core::{BusKey, CoreError, ScanReport, WiLocator, WiLocatorConfig};
use wilocator_geo::{BoundingBox, Point};
use wilocator_rf::{
    AccessPoint, ApId, HomogeneousField, LogDistance, PhysicalField, ShadowingField,
};
use wilocator_road::{NetworkBuilder, Route, RouteId, Schedule};
use wilocator_sim::{
    simulate, City, LoadEvent, LoadPlan, SimulationConfig, TrafficConfig, TrafficModel,
};

/// Two disjoint 1.2 km streets, one route each, plus an express variant
/// riding the first street — two shards' worth of routes.
fn two_street_city(seed: u64) -> City {
    let mut b = NetworkBuilder::new();
    let mut aps = Vec::new();
    let mut ap_id = 0u32;
    let mut routes = Vec::new();
    for (street, y) in [0.0f64, 900.0].iter().enumerate() {
        let mut prev = b.add_node(Point::new(0.0, *y));
        let mut edges = Vec::new();
        for k in 1..=4 {
            let node = b.add_node(Point::new(k as f64 * 300.0, *y));
            edges.push(b.add_edge(prev, node, None).expect("distinct nodes"));
            prev = node;
        }
        let mut x = 30.0;
        while x < 1_200.0 {
            aps.push(AccessPoint::new(
                ApId(ap_id),
                Point::new(x, y + if ap_id.is_multiple_of(2) { 18.0 } else { -18.0 }),
            ));
            ap_id += 1;
            x += 55.0;
        }
        routes.push((street, edges));
    }
    let network = b.build();
    let mut built = Vec::new();
    let (_, first_street_edges) = routes[0].clone();
    for (street, edges) in routes {
        let mut route = Route::new(
            RouteId(street as u32),
            if street == 0 { "9" } else { "14" },
            edges,
            &network,
        )
        .expect("connected street");
        route.add_stops_evenly(4);
        built.push(route);
    }
    let mut express = Route::new(RouteId(2), "9 express", first_street_edges, &network)
        .expect("connected street");
    express.add_stops_evenly(2);
    built.push(express);
    let bbox = BoundingBox::from_points(network.nodes().iter().map(|n| n.position()))
        .expect("non-empty network")
        .inflated(400.0);
    let shadowing = ShadowingField::new(4.0, 60.0, seed ^ 0x5AAD);
    let field = PhysicalField::new(aps.clone(), LogDistance::urban(), shadowing);
    City {
        network,
        routes: built,
        field,
        server_field: HomogeneousField::new(aps),
        towers: Vec::new(),
        bbox,
    }
}

/// One seeded morning of service on all three routes.
fn seeded_day(seed: u64) -> (City, LoadPlan) {
    let city = two_street_city(seed);
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), seed);
    let mut schedule = Schedule::new();
    for (route, headway) in [
        (RouteId(0), 1_200.0),
        (RouteId(1), 1_500.0),
        (RouteId(2), 1_800.0),
    ] {
        schedule.add_headway_service(route, 8.0 * 3_600.0, 9.5 * 3_600.0, headway);
    }
    let config = SimulationConfig {
        days: 1,
        seed,
        ..SimulationConfig::default()
    };
    let dataset = simulate(&city, &schedule, &traffic, &config);
    (city, LoadPlan::for_day(&dataset, 0))
}

fn to_report(event: &LoadEvent) -> ScanReport {
    ScanReport {
        bus: BusKey(event.trip_id as u64),
        time_s: event.time_s,
        scans: event.scans.clone(),
    }
}

/// Replays the plan on `threads` threads (lane-partitioned) or, with
/// `batch_size > 0`, through `ingest_batch` in order from one thread.
fn replay(server: &WiLocator, plan: &LoadPlan, threads: usize, batch_size: usize) {
    for (trip, route) in plan.trip_routes() {
        server
            .register_bus(BusKey(trip as u64), route)
            .expect("served route");
    }
    if batch_size > 0 {
        let reports: Vec<ScanReport> = plan.events.iter().map(to_report).collect();
        for chunk in reports.chunks(batch_size) {
            for result in server.ingest_batch(chunk) {
                result.expect("registered bus");
            }
        }
    } else if threads <= 1 {
        for event in &plan.events {
            server.ingest(&to_report(event)).expect("registered bus");
        }
    } else {
        std::thread::scope(|scope| {
            for lane in plan.lanes(threads) {
                scope.spawn(move || {
                    for i in lane {
                        server
                            .ingest(&to_report(&plan.events[i]))
                            .expect("registered bus");
                    }
                });
            }
        });
    }
    for (trip, _) in plan.trip_routes() {
        server
            .finish_bus(BusKey(trip as u64))
            .expect("registered bus");
    }
}

/// Bit-exact snapshot of every bus trajectory (taken before finish).
fn fix_signature(server: &WiLocator, plan: &LoadPlan) -> Vec<(usize, Vec<(u64, u64)>)> {
    plan.trip_ids()
        .into_iter()
        .map(|trip| {
            let fixes = server
                .trajectory(BusKey(trip as u64))
                .expect("bus registered")
                .iter()
                .map(|f| (f.s.to_bits(), f.time_s.to_bits()))
                .collect();
            (trip, fixes)
        })
        .collect()
}

/// Bit-exact snapshot of the travel-time store across shards: per edge,
/// the `(route, t_enter, t_exit)` bit patterns of its records.
type StoreSignature = Vec<(u32, Vec<(u32, u64, u64)>)>;

fn store_signature(server: &WiLocator) -> StoreSignature {
    server.with_store(|store| {
        let mut edges: Vec<_> = store.edges().collect();
        edges.sort_by_key(|e| e.0);
        edges
            .into_iter()
            .map(|e| {
                let records = store
                    .traversals(e)
                    .iter()
                    .map(|tr| (tr.route.0, tr.t_enter.to_bits(), tr.t_exit.to_bits()))
                    .collect();
                (e.0, records)
            })
            .collect()
    })
}

/// Bit-exact predictions on a grid of (position, query time) per route.
fn prediction_signature(server: &WiLocator) -> Vec<u64> {
    let mut out = Vec::new();
    for route in server.routes() {
        let end = route.length();
        for k in 0..6 {
            let s = end * k as f64 / 6.0;
            for t in [8.2 * 3_600.0, 8.9 * 3_600.0, 9.6 * 3_600.0] {
                let eta = server
                    .predict_arrival_at(route.id(), s, t, end)
                    .expect("served route");
                out.push(eta.to_bits());
            }
        }
    }
    out
}

#[test]
fn scene_spans_multiple_shards() {
    let city = two_street_city(11);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    assert_eq!(server.shard_count(), 2, "disjoint streets shard apart");
}

#[test]
fn threaded_replay_matches_single_threaded() {
    let (city, plan) = seeded_day(11);
    assert!(
        plan.events.len() > 100,
        "day too small: {}",
        plan.events.len()
    );
    let mut signatures = Vec::new();
    for threads in [1usize, 2, 4] {
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        for (trip, route) in plan.trip_routes() {
            server.register_bus(BusKey(trip as u64), route).unwrap();
        }
        if threads == 1 {
            for event in &plan.events {
                server.ingest(&to_report(event)).unwrap();
            }
        } else {
            std::thread::scope(|scope| {
                for lane in plan.lanes(threads) {
                    let server = &server;
                    let plan = &plan;
                    scope.spawn(move || {
                        for i in lane {
                            server.ingest(&to_report(&plan.events[i])).unwrap();
                        }
                    });
                }
            });
        }
        let fixes = fix_signature(&server, &plan);
        for (trip, _) in plan.trip_routes() {
            server.finish_bus(BusKey(trip as u64)).unwrap();
        }
        server.train(10.0 * 3_600.0);
        signatures.push((
            threads,
            fixes,
            store_signature(&server),
            prediction_signature(&server),
        ));
    }
    let (_, ref fixes1, ref store1, ref pred1) = signatures[0];
    assert!(
        fixes1.iter().all(|(_, f)| !f.is_empty()),
        "every trip produced fixes"
    );
    assert!(!store1.is_empty(), "traversals recorded");
    for (threads, fixes, store, pred) in &signatures[1..] {
        assert_eq!(fixes, fixes1, "{threads}-thread fix sequences diverge");
        assert_eq!(store, store1, "{threads}-thread store diverges");
        assert_eq!(pred, pred1, "{threads}-thread predictions diverge");
    }
}

#[test]
fn no_traversals_lost_across_thread_counts() {
    let (city, plan) = seeded_day(23);
    let trips = plan.trip_ids().len();
    for threads in [1usize, 3] {
        let server = WiLocator::new(
            &city.server_field,
            city.routes.clone(),
            WiLocatorConfig::default(),
        );
        replay(&server, &plan, threads, 0);
        let (records, edges) = server.with_store(|s| (s.len(), s.edge_count()));
        // Every trip crosses every segment of its route: 3 trips' worth of
        // 4-segment routes plus the express's share must all be there.
        assert_eq!(edges, 8, "{threads} threads: all street segments seen");
        assert!(
            records >= trips * 2,
            "{threads} threads: only {records} records for {trips} trips"
        );
    }
}

#[test]
fn batched_replay_matches_streamed_replay() {
    let (city, plan) = seeded_day(31);
    let streamed = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    let batched = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    replay(&streamed, &plan, 1, 0);
    replay(&batched, &plan, 0, 32);
    assert_eq!(store_signature(&streamed), store_signature(&batched));
    streamed.train(10.0 * 3_600.0);
    batched.train(10.0 * 3_600.0);
    assert_eq!(
        prediction_signature(&streamed),
        prediction_signature(&batched)
    );
}

#[test]
fn batch_surfaces_unknown_buses_without_poisoning_the_rest() {
    let (city, plan) = seeded_day(47);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    for (trip, route) in plan.trip_routes() {
        server.register_bus(BusKey(trip as u64), route).unwrap();
    }
    let mut reports: Vec<ScanReport> = plan.events.iter().take(8).map(to_report).collect();
    reports.insert(
        4,
        ScanReport {
            bus: BusKey(9_999),
            time_s: 0.0,
            scans: Vec::new(),
        },
    );
    let results = server.ingest_batch(&reports);
    assert_eq!(results.len(), 9);
    assert_eq!(results[4], Err(CoreError::UnknownBus(BusKey(9_999))));
    for (i, r) in results.iter().enumerate() {
        if i != 4 {
            assert!(r.is_ok(), "report {i} failed: {r:?}");
        }
    }
    // The error is metered exactly once, and the eight good reports all
    // made it into the shard accounting.
    let snap = server.metrics();
    assert_eq!(snap.counter("wilocator_unknown_bus_total"), 1);
    assert_eq!(snap.counter_family_total("wilocator_reports_total"), 8);
}

/// The documented state after a batch full of error paths: an unknown
/// bus errors in place, reordered (stale) reports are dropped without
/// touching the committed trajectory or store, an equal-timestamp
/// duplicate is re-processed rather than dropped — and every outcome is
/// metered, so `reports == fixes + absorbed + stale` keeps holding.
#[test]
fn batch_duplicates_and_reordering_leave_documented_state() {
    let (city, plan) = seeded_day(59);
    let server = WiLocator::new(
        &city.server_field,
        city.routes.clone(),
        WiLocatorConfig::default(),
    );
    for (trip, route) in plan.trip_routes() {
        server.register_bus(BusKey(trip as u64), route).unwrap();
    }
    let trip = plan.trip_ids()[0];
    let bus = BusKey(trip as u64);
    let events: Vec<&LoadEvent> = plan.events.iter().filter(|e| e.trip_id == trip).collect();
    assert!(events.len() > 10, "trip too short");
    let head: Vec<ScanReport> = events[..8].iter().map(|e| to_report(e)).collect();
    for result in server.ingest_batch(&head) {
        result.unwrap();
    }
    let committed = server.trajectory(bus).expect("registered");
    let last_fix_time = committed.last().expect("head produced fixes").time_s;
    let store_before = store_signature(&server);
    let before = server.metrics();

    // Strictly older than the latest fix ⇒ stale; equal ⇒ duplicate.
    let stale: Vec<ScanReport> = head
        .iter()
        .filter(|r| r.time_s < last_fix_time)
        .cloned()
        .collect();
    assert!(!stale.is_empty(), "no reordered reports to replay");
    let duplicate = head
        .iter()
        .find(|r| r.time_s == last_fix_time)
        .expect("latest fix came from a head report")
        .clone();
    let mut batch = vec![ScanReport {
        bus: BusKey(9_999),
        time_s: 0.0,
        scans: Vec::new(),
    }];
    batch.extend(stale.iter().cloned());
    batch.push(duplicate);
    let results = server.ingest_batch(&batch);
    assert_eq!(results[0], Err(CoreError::UnknownBus(BusKey(9_999))));
    for r in &results[1..] {
        assert!(r.is_ok(), "stale/duplicate reports are not errors: {r:?}");
    }

    // Stale replays appended nothing: the committed prefix is intact and
    // anything the duplicate appended sits at the same timestamp.
    let after_traj = server.trajectory(bus).expect("registered");
    assert_eq!(&after_traj[..committed.len()], &committed[..]);
    for fix in &after_traj[committed.len()..] {
        assert_eq!(fix.time_s, last_fix_time, "duplicate moved time forward");
    }
    assert_eq!(store_signature(&server), store_before, "store unchanged");

    // Every outcome metered: one unknown bus, every stale replay counted
    // stale, the duplicate re-processed (fix or absorbed — not stale).
    let after = server.metrics();
    let delta =
        |family: &str| after.counter_family_total(family) - before.counter_family_total(family);
    assert_eq!(delta("wilocator_unknown_bus_total"), 1);
    assert_eq!(delta("wilocator_reports_stale_total"), stale.len() as u64);
    assert_eq!(delta("wilocator_reports_total"), (stale.len() + 1) as u64);
    assert_eq!(
        after.counter_family_total("wilocator_reports_total"),
        after.counter_family_total("wilocator_fixes_total")
            + after.counter_family_total("wilocator_reports_absorbed_total")
            + after.counter_family_total("wilocator_reports_stale_total"),
    );

    // The shard is not poisoned: the trip's next real report still lands.
    server.ingest(&to_report(events[8])).expect("shard healthy");
}

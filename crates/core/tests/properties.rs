//! Property-based tests for the server-side estimators and the server's
//! ingestion-order invariance.

use std::sync::OnceLock;

use proptest::prelude::*;
use wilocator_core::{
    partition_from_index, seasonal_index, ArrivalPredictor, BusKey, PredictorConfig, ScanReport,
    SeasonalConfig, SlotPartition, TravelTimeStore, Traversal, WiLocator, WiLocatorConfig,
};
use wilocator_geo::Point;
use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
use wilocator_road::{EdgeId, NetworkBuilder, Route, RouteId};

const DAY_S: f64 = 86_400.0;

fn route_of(segments: usize) -> Route {
    let mut b = NetworkBuilder::new();
    let mut prev = b.add_node(Point::new(0.0, 0.0));
    let mut edges = Vec::new();
    for i in 1..=segments {
        let node = b.add_node(Point::new(i as f64 * 400.0, 0.0));
        edges.push(b.add_edge(prev, node, None).unwrap());
        prev = node;
    }
    Route::new(RouteId(0), "p", edges, &b.build()).unwrap()
}

/// Store with one traversal per (day, hour, edge) of constant travel time.
fn constant_store(route: &Route, days: usize, tt: f64) -> TravelTimeStore {
    let mut store = TravelTimeStore::new();
    for day in 0..days {
        for hour in 6..22 {
            for (i, &edge) in route.edges().iter().enumerate() {
                let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0 + i as f64 * 60.0;
                store.record(
                    edge,
                    Traversal {
                        route: RouteId(0),
                        t_enter: t0,
                        t_exit: t0 + tt,
                    },
                );
            }
        }
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seasonal_index_of_populated_slots_averages_to_one(
        tts in proptest::collection::vec(20.0..200.0f64, 16),
        days in 1usize..5,
    ) {
        // Equation 7: Σ SI(i, l) over populated slots equals their count
        // (the SI is a ratio to the grand mean over the same records) when
        // every slot has the same number of samples.
        let e = EdgeId(0);
        let mut store = TravelTimeStore::new();
        for day in 0..days {
            for (h, &tt) in tts.iter().enumerate() {
                let t0 = day as f64 * DAY_S + (6 + h) as f64 * 3_600.0;
                store.record(e, Traversal { route: RouteId(0), t_enter: t0, t_exit: t0 + tt });
            }
        }
        let si = seasonal_index(&store, e, 1e15, &SeasonalConfig::default());
        let populated: Vec<f64> = si.index.iter().flatten().copied().collect();
        prop_assert_eq!(populated.len(), 16);
        let sum: f64 = populated.iter().sum();
        prop_assert!((sum - 16.0).abs() < 1e-6, "ΣSI = {sum}");
        for &v in &populated {
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn partition_slots_cover_the_day(idx in proptest::collection::hash_set(1usize..287, 0..8)) {
        // Boundaries on the 300 s sampling grid so every slot is sampled.
        let boundaries: Vec<f64> = idx.into_iter().map(|i| i as f64 * 300.0).collect();
        let p = SlotPartition::new(boundaries);
        // slot_of is total, monotone within the day, and onto.
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0usize;
        for k in 0..288 {
            let tod = k as f64 * 300.0;
            let slot = p.slot_of(tod);
            prop_assert!(slot < p.slot_count());
            prop_assert!(slot >= prev);
            prev = slot;
            seen.insert(slot);
        }
        prop_assert_eq!(seen.len(), p.slot_count());
    }

    #[test]
    fn next_boundary_is_strictly_in_the_future(
        boundaries in proptest::collection::vec(1.0..86_000.0f64, 0..6),
        t in 0.0..200_000.0f64,
    ) {
        let p = SlotPartition::new(boundaries);
        let b = p.next_boundary_after(t);
        prop_assert!(b > t, "boundary {b} not after {t}");
        prop_assert!(b - t <= DAY_S + 1.0);
    }

    #[test]
    fn prediction_equals_history_without_residuals(
        tt in 20.0..300.0f64,
        days in 2usize..5,
    ) {
        // With constant history and no recent buses, Equation 8 reduces to
        // Th, and Equation 9 to a sum of Th fractions.
        let route = route_of(3);
        let store = constant_store(&route, days, tt);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, days as f64 * DAY_S);
        // Query at 03:00, hours after the last record: no recent window.
        let now = days as f64 * DAY_S + 3.0 * 3_600.0;
        let eta = p.predict_arrival(&store, &route, 0.0, now, route.length());
        prop_assert!(((eta - now) - 3.0 * tt).abs() < 1.0, "eta {} vs {}", eta - now, 3.0 * tt);
        // Fractional query: half the first segment.
        let eta_half = p.predict_arrival(&store, &route, 0.0, now, 200.0);
        prop_assert!(((eta_half - now) - 0.5 * tt).abs() < 1.0);
    }

    #[test]
    fn prediction_is_monotone_in_target(
        tt in 20.0..300.0f64,
        s0 in 0.0..1_000.0f64,
        s1 in 0.0..1_200.0f64,
    ) {
        let route = route_of(3);
        let store = constant_store(&route, 3, tt);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, 3.0 * DAY_S);
        let now = 3.0 * DAY_S + 12.0 * 3_600.0;
        let (lo, hi) = if s0 <= s1 { (s0, s1) } else { (s1, s0) };
        let eta_lo = p.predict_arrival(&store, &route, 0.0, now, lo);
        let eta_hi = p.predict_arrival(&store, &route, 0.0, now, hi);
        prop_assert!(eta_hi >= eta_lo - 1e-9, "farther stop earlier: {eta_lo} vs {eta_hi}");
    }

    #[test]
    fn store_means_match_brute_force(
        records in proptest::collection::vec((0u32..3, 0.0..100_000.0f64, 1.0..500.0f64), 1..40),
    ) {
        let e = EdgeId(0);
        let mut store = TravelTimeStore::new();
        for &(r, t0, tt) in &records {
            store.record(e, Traversal { route: RouteId(r), t_enter: t0, t_exit: t0 + tt });
        }
        let cutoff = 60_000.0;
        let expect: Vec<f64> = records
            .iter()
            .filter(|&&(_, t0, tt)| t0 + tt < cutoff)
            .map(|&(_, _, tt)| tt)
            .collect();
        let got = store.mean_travel_time(e, None, cutoff, |_| true);
        match got {
            None => prop_assert!(expect.is_empty()),
            Some(m) => {
                let brute = expect.iter().sum::<f64>() / expect.len() as f64;
                prop_assert!((m - brute).abs() < 1e-9);
            }
        }
    }
}

/// A 750 m three-segment street with dense APs, built once — the tile
/// index construction is the expensive part of `WiLocator::new`.
fn street_scene() -> &'static (Route, HomogeneousField) {
    static SCENE: OnceLock<(Route, HomogeneousField)> = OnceLock::new();
    SCENE.get_or_init(|| {
        let mut b = NetworkBuilder::new();
        let mut prev = b.add_node(Point::new(0.0, 0.0));
        let mut edges = Vec::new();
        for k in 1..=3 {
            let node = b.add_node(Point::new(k as f64 * 250.0, 0.0));
            edges.push(b.add_edge(prev, node, None).unwrap());
            prev = node;
        }
        let route = Route::new(RouteId(0), "p", edges, &b.build()).unwrap();
        let aps = (0..15)
            .map(|i| {
                AccessPoint::new(
                    ApId(i),
                    Point::new(
                        25.0 + i as f64 * 50.0,
                        if i % 2 == 0 { 15.0 } else { -15.0 },
                    ),
                )
            })
            .collect();
        (route, HomogeneousField::new(aps))
    })
}

/// One bus's reports along the street: a noise-free scan every 10 s.
fn bus_reports(
    route: &Route,
    field: &HomogeneousField,
    bus: u64,
    t0: f64,
    speed: f64,
) -> Vec<ScanReport> {
    let mut out = Vec::new();
    let mut t = t0;
    loop {
        let s = (t - t0) * speed;
        if s > route.length() {
            return out;
        }
        let readings: Vec<Reading> = field
            .detectable_at(route.point_at(s), -90.0)
            .into_iter()
            .map(|(ap, rss)| Reading {
                ap,
                bssid: Bssid::from_ap_id(ap),
                rss_dbm: rss.round() as i32,
            })
            .collect();
        out.push(ScanReport {
            bus: BusKey(bus),
            time_s: t,
            scans: vec![Scan::new(t, readings)],
        });
        t += 10.0;
    }
}

/// Bit-exact per-bus trajectories and (sorted) store contents after a
/// full replay of `order`.
type ReplayState = (Vec<Vec<(u64, u64)>>, Vec<(u32, Vec<(u32, u64, u64)>)>);

fn replay_order(order: &[&ScanReport], buses: usize) -> ReplayState {
    let (route, field) = street_scene();
    let server = WiLocator::new(field, vec![route.clone()], WiLocatorConfig::default());
    for b in 0..buses {
        server.register_bus(BusKey(b as u64), route.id()).unwrap();
    }
    for report in order {
        server.ingest(report).unwrap();
    }
    let trajectories = (0..buses)
        .map(|b| {
            server
                .trajectory(BusKey(b as u64))
                .unwrap()
                .iter()
                .map(|f| (f.s.to_bits(), f.time_s.to_bits()))
                .collect()
        })
        .collect();
    for b in 0..buses {
        server.finish_bus(BusKey(b as u64)).unwrap();
    }
    let store = server.with_store(|s| {
        let mut edges: Vec<EdgeId> = s.edges().collect();
        edges.sort_by_key(|e| e.0);
        edges
            .into_iter()
            .map(|e| {
                let mut records: Vec<(u32, u64, u64)> = s
                    .traversals(e)
                    .iter()
                    .map(|tr| (tr.route.0, tr.t_enter.to_bits(), tr.t_exit.to_bits()))
                    .collect();
                records.sort_unstable();
                (e.0, records)
            })
            .collect()
    });
    (trajectories, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The server's determinism contract: the same reports per bus, in the
    /// same per-bus order, yield the same per-bus fixes and traversal
    /// history under *any* cross-bus interleaving.
    #[test]
    fn ingestion_order_across_buses_is_irrelevant(
        speeds in proptest::collection::vec(5.0..12.0f64, 2..5),
        picks in proptest::collection::vec(0usize..64, 64),
    ) {
        let (route, field) = street_scene();
        let per_bus: Vec<Vec<ScanReport>> = speeds
            .iter()
            .enumerate()
            .map(|(b, &v)| bus_reports(route, field, b as u64, b as f64 * 7.0, v))
            .collect();
        let sequential: Vec<&ScanReport> = per_bus.iter().flatten().collect();

        // A generated interleaving: repeatedly pick one of the buses that
        // still has events and emit its next report.
        let mut cursors = vec![0usize; per_bus.len()];
        let mut shuffled = Vec::with_capacity(sequential.len());
        let mut pi = 0usize;
        while shuffled.len() < sequential.len() {
            let live: Vec<usize> = (0..per_bus.len())
                .filter(|&b| cursors[b] < per_bus[b].len())
                .collect();
            let b = live[picks[pi % picks.len()] % live.len()];
            pi += 1;
            shuffled.push(&per_bus[b][cursors[b]]);
            cursors[b] += 1;
        }

        let a = replay_order(&sequential, per_bus.len());
        let b = replay_order(&shuffled, per_bus.len());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn partition_from_flat_index_is_whole_day() {
    let e = EdgeId(0);
    let route = route_of(1);
    let store = constant_store(&route, 3, 50.0);
    let si = seasonal_index(&store, route.edges()[0], 1e15, &SeasonalConfig::default());
    let p = partition_from_index(&si, &SeasonalConfig::default());
    assert_eq!(p.slot_count(), 1, "flat history must not split the day");
    let _ = e;
}

//! Property-based tests for the server-side estimators.

use proptest::prelude::*;
use wilocator_core::{
    partition_from_index, seasonal_index, ArrivalPredictor, PredictorConfig, SeasonalConfig,
    SlotPartition, TravelTimeStore, Traversal,
};
use wilocator_geo::Point;
use wilocator_road::{EdgeId, NetworkBuilder, Route, RouteId};

const DAY_S: f64 = 86_400.0;

fn route_of(segments: usize) -> Route {
    let mut b = NetworkBuilder::new();
    let mut prev = b.add_node(Point::new(0.0, 0.0));
    let mut edges = Vec::new();
    for i in 1..=segments {
        let node = b.add_node(Point::new(i as f64 * 400.0, 0.0));
        edges.push(b.add_edge(prev, node, None).unwrap());
        prev = node;
    }
    Route::new(RouteId(0), "p", edges, &b.build()).unwrap()
}

/// Store with one traversal per (day, hour, edge) of constant travel time.
fn constant_store(route: &Route, days: usize, tt: f64) -> TravelTimeStore {
    let mut store = TravelTimeStore::new();
    for day in 0..days {
        for hour in 6..22 {
            for (i, &edge) in route.edges().iter().enumerate() {
                let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0 + i as f64 * 60.0;
                store.record(
                    edge,
                    Traversal {
                        route: RouteId(0),
                        t_enter: t0,
                        t_exit: t0 + tt,
                    },
                );
            }
        }
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seasonal_index_of_populated_slots_averages_to_one(
        tts in proptest::collection::vec(20.0..200.0f64, 16),
        days in 1usize..5,
    ) {
        // Equation 7: Σ SI(i, l) over populated slots equals their count
        // (the SI is a ratio to the grand mean over the same records) when
        // every slot has the same number of samples.
        let e = EdgeId(0);
        let mut store = TravelTimeStore::new();
        for day in 0..days {
            for (h, &tt) in tts.iter().enumerate() {
                let t0 = day as f64 * DAY_S + (6 + h) as f64 * 3_600.0;
                store.record(e, Traversal { route: RouteId(0), t_enter: t0, t_exit: t0 + tt });
            }
        }
        let si = seasonal_index(&store, e, 1e15, &SeasonalConfig::default());
        let populated: Vec<f64> = si.index.iter().flatten().copied().collect();
        prop_assert_eq!(populated.len(), 16);
        let sum: f64 = populated.iter().sum();
        prop_assert!((sum - 16.0).abs() < 1e-6, "ΣSI = {sum}");
        for &v in &populated {
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn partition_slots_cover_the_day(idx in proptest::collection::hash_set(1usize..287, 0..8)) {
        // Boundaries on the 300 s sampling grid so every slot is sampled.
        let boundaries: Vec<f64> = idx.into_iter().map(|i| i as f64 * 300.0).collect();
        let p = SlotPartition::new(boundaries);
        // slot_of is total, monotone within the day, and onto.
        let mut seen = std::collections::HashSet::new();
        let mut prev = 0usize;
        for k in 0..288 {
            let tod = k as f64 * 300.0;
            let slot = p.slot_of(tod);
            prop_assert!(slot < p.slot_count());
            prop_assert!(slot >= prev);
            prev = slot;
            seen.insert(slot);
        }
        prop_assert_eq!(seen.len(), p.slot_count());
    }

    #[test]
    fn next_boundary_is_strictly_in_the_future(
        boundaries in proptest::collection::vec(1.0..86_000.0f64, 0..6),
        t in 0.0..200_000.0f64,
    ) {
        let p = SlotPartition::new(boundaries);
        let b = p.next_boundary_after(t);
        prop_assert!(b > t, "boundary {b} not after {t}");
        prop_assert!(b - t <= DAY_S + 1.0);
    }

    #[test]
    fn prediction_equals_history_without_residuals(
        tt in 20.0..300.0f64,
        days in 2usize..5,
    ) {
        // With constant history and no recent buses, Equation 8 reduces to
        // Th, and Equation 9 to a sum of Th fractions.
        let route = route_of(3);
        let store = constant_store(&route, days, tt);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, days as f64 * DAY_S);
        // Query at 03:00, hours after the last record: no recent window.
        let now = days as f64 * DAY_S + 3.0 * 3_600.0;
        let eta = p.predict_arrival(&store, &route, 0.0, now, route.length());
        prop_assert!(((eta - now) - 3.0 * tt).abs() < 1.0, "eta {} vs {}", eta - now, 3.0 * tt);
        // Fractional query: half the first segment.
        let eta_half = p.predict_arrival(&store, &route, 0.0, now, 200.0);
        prop_assert!(((eta_half - now) - 0.5 * tt).abs() < 1.0);
    }

    #[test]
    fn prediction_is_monotone_in_target(
        tt in 20.0..300.0f64,
        s0 in 0.0..1_000.0f64,
        s1 in 0.0..1_200.0f64,
    ) {
        let route = route_of(3);
        let store = constant_store(&route, 3, tt);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, 3.0 * DAY_S);
        let now = 3.0 * DAY_S + 12.0 * 3_600.0;
        let (lo, hi) = if s0 <= s1 { (s0, s1) } else { (s1, s0) };
        let eta_lo = p.predict_arrival(&store, &route, 0.0, now, lo);
        let eta_hi = p.predict_arrival(&store, &route, 0.0, now, hi);
        prop_assert!(eta_hi >= eta_lo - 1e-9, "farther stop earlier: {eta_lo} vs {eta_hi}");
    }

    #[test]
    fn store_means_match_brute_force(
        records in proptest::collection::vec((0u32..3, 0.0..100_000.0f64, 1.0..500.0f64), 1..40),
    ) {
        let e = EdgeId(0);
        let mut store = TravelTimeStore::new();
        for &(r, t0, tt) in &records {
            store.record(e, Traversal { route: RouteId(r), t_enter: t0, t_exit: t0 + tt });
        }
        let cutoff = 60_000.0;
        let expect: Vec<f64> = records
            .iter()
            .filter(|&&(_, t0, tt)| t0 + tt < cutoff)
            .map(|&(_, _, tt)| tt)
            .collect();
        let got = store.mean_travel_time(e, None, cutoff, |_| true);
        match got {
            None => prop_assert!(expect.is_empty()),
            Some(m) => {
                let brute = expect.iter().sum::<f64>() / expect.len() as f64;
                prop_assert!((m - brute).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn partition_from_flat_index_is_whole_day() {
    let e = EdgeId(0);
    let route = route_of(1);
    let store = constant_store(&route, 3, 50.0);
    let si = seasonal_index(&store, route.edges()[0], 1e15, &SeasonalConfig::default());
    let p = partition_from_index(&si, &SeasonalConfig::default());
    assert_eq!(p.slot_count(), 1, "flat history must not split the day");
    let _ = e;
}

//! Real-time per-bus tracking (§V-A.2) and intersection-crossing
//! interpolation (Fig. 5).

use wilocator_geo::GeoPoint;
use wilocator_obs::TraceCtx;
use wilocator_road::Route;
use wilocator_svd::{Fix, RoutePositioner, TrackingFilter};

use crate::report::ScanReport;

/// A tracked trajectory: the paper's Definition 6 (sequence of
/// `<lat, long, t>`), kept here in route coordinates with planar points;
/// [`BusTracker::trajectory_geo`] converts to geodetic tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrackedTrajectory {
    fixes: Vec<Fix>,
}

impl TrackedTrajectory {
    /// The position fixes in time order.
    pub fn fixes(&self) -> &[Fix] {
        &self.fixes
    }

    /// True when no fix has been produced yet.
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// The most recent fix.
    pub fn last(&self) -> Option<&Fix> {
        self.fixes.last()
    }
}

/// What became of one ingested report (the classification the server's
/// metrics need; [`BusTracker::ingest`] collapses it to `Option<Fix>`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestOutcome {
    /// The report produced a new fix, appended to the trajectory.
    Fix(Fix),
    /// The report was older than the latest fix (network reordering) and
    /// was dropped; trajectory and committed traversals are untouched.
    Stale,
    /// The report was absorbed without producing a fix (e.g. acquisition
    /// has not locked yet); trajectory is untouched.
    NoFix,
}

impl IngestOutcome {
    /// Stable lowercase label, used for trace-span fields and logs.
    pub fn label(&self) -> &'static str {
        match self {
            IngestOutcome::Fix(_) => "fix",
            IngestOutcome::Stale => "stale",
            IngestOutcome::NoFix => "absorbed",
        }
    }
}

/// Tracks one bus over its route from incoming scan reports.
///
/// Holds the SVD positioner, rank-averages each report's scans across
/// devices, applies the mobility prior, and accumulates the trajectory.
#[derive(Debug, Clone)]
pub struct BusTracker {
    filter: TrackingFilter,
    trajectory: TrackedTrajectory,
    /// Minimum scans that must hear an AP for it to enter the rank list.
    min_observations: usize,
}

impl BusTracker {
    /// Creates a tracker around a prepared positioner.
    pub fn new(positioner: RoutePositioner) -> Self {
        BusTracker {
            filter: TrackingFilter::new(positioner),
            trajectory: TrackedTrajectory::default(),
            min_observations: 1,
        }
    }

    /// The route being tracked.
    pub fn route(&self) -> &Route {
        self.filter.positioner().route()
    }

    /// The accumulated trajectory.
    pub fn trajectory(&self) -> &TrackedTrajectory {
        &self.trajectory
    }

    /// Ingests one scan report, returning the new fix if one was produced.
    ///
    /// Reports older than the latest fix (network reordering between the
    /// riders' phones and the server) are dropped.
    pub fn ingest(&mut self, report: &ScanReport) -> Option<Fix> {
        match self.ingest_classified(report) {
            IngestOutcome::Fix(fix) => Some(fix),
            IngestOutcome::Stale | IngestOutcome::NoFix => None,
        }
    }

    /// [`BusTracker::ingest`], but reporting *why* no fix was produced —
    /// a stale (reordered) report is dropped, anything else is absorbed.
    pub fn ingest_classified(&mut self, report: &ScanReport) -> IngestOutcome {
        self.ingest_classified_traced(report, None)
    }

    /// [`BusTracker::ingest_classified`] with an optional trace context:
    /// opens a `track` child span (the stale drop happens before any span
    /// opens), under which the filter's positioning attempts nest.
    pub fn ingest_classified_traced(
        &mut self,
        report: &ScanReport,
        trace: Option<&TraceCtx<'_>>,
    ) -> IngestOutcome {
        if let Some(last) = self.trajectory.last() {
            if report.time_s < last.time_s {
                return IngestOutcome::Stale;
            }
        }
        let span = trace.map(|t| t.child_span("track"));
        let ranked = report.positioning_ranks(self.min_observations);
        if let Some(sp) = &span {
            sp.field("ranked_aps", ranked.len());
        }
        // Rank order comes from the averaged ranks; re-expressing as RSS
        // keeps tie detection meaningful (equal mean RSS ⇒ boundary).
        // Prior chaining and divergence recovery live in the filter.
        match self.filter.step_traced(&ranked, report.time_s, trace) {
            Some(fix) => {
                self.trajectory.fixes.push(fix);
                IngestOutcome::Fix(fix)
            }
            None => IngestOutcome::NoFix,
        }
    }

    /// Whether the trip is plausibly finished (last fix at the route end).
    pub fn finished(&self) -> bool {
        self.trajectory
            .last()
            .map(|f| f.s >= self.route().length() - 1.0)
            .unwrap_or(false)
    }

    /// The trajectory as geodetic `<lat, long, t>` tuples (Definition 6),
    /// through the given projection.
    pub fn trajectory_geo(&self, projection: &wilocator_geo::Projection) -> Vec<(GeoPoint, f64)> {
        self.trajectory
            .fixes
            .iter()
            .map(|f| (projection.unproject(f.point), f.time_s))
            .collect()
    }
}

/// Interpolates the time the bus crossed route arc length `s_cross` from
/// the two fixes straddling it (Fig. 5): travelling "smoothly, i.e., at a
/// steady speed" between scans A and B, the crossing time is
/// `t(A) + t(A,B) · d(A, cross) / d_r(A, B)`.
///
/// Returns `None` when no straddling pair exists. A crossing slightly
/// before the first fix (at most one inter-fix distance — the route start,
/// which the first scan already overshoots) is recovered by backward
/// extrapolation at the speed of the first moving pair.
pub fn crossing_time(fixes: &[Fix], s_cross: f64) -> Option<f64> {
    let mut prev: Option<&Fix> = None;
    for f in fixes {
        if let Some(a) = prev {
            if a.s <= s_cross && f.s >= s_cross {
                if f.s - a.s < 1e-9 {
                    return Some(a.time_s);
                }
                return Some(a.time_s + (f.time_s - a.time_s) * (s_cross - a.s) / (f.s - a.s));
            }
        }
        prev = Some(f);
    }
    // Extrapolation window: a crossing at most this far (in time, at the
    // locally observed speed) outside the fix range is still recovered —
    // the route start the first scan overshoots and the route end the last
    // scan stops short of.
    const EXTRAP_LIMIT_S: f64 = 30.0;
    let first = fixes.first()?;
    if s_cross < first.s {
        let moving = fixes.windows(2).find(|w| w[1].s > w[0].s + 1e-9)?;
        let v = (moving[1].s - moving[0].s) / (moving[1].time_s - moving[0].time_s).max(1e-9);
        let gap = first.s - s_cross;
        if gap / v <= EXTRAP_LIMIT_S {
            return Some(first.time_s - gap / v);
        }
    }
    let last = fixes.last()?;
    if s_cross > last.s {
        let moving = fixes.windows(2).rev().find(|w| w[1].s > w[0].s + 1e-9)?;
        let v = (moving[1].s - moving[0].s) / (moving[1].time_s - moving[0].time_s).max(1e-9);
        let gap = s_cross - last.s;
        if gap / v <= EXTRAP_LIMIT_S {
            return Some(last.time_s + gap / v);
        }
    }
    None
}

/// Extracted ground data for one traversed route segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTraversal {
    /// Index of the segment within the route.
    pub edge_index: usize,
    /// Interpolated arrival at the segment start, seconds.
    pub t_enter: f64,
    /// Interpolated arrival at the segment end, seconds.
    pub t_exit: f64,
}

impl SegmentTraversal {
    /// Travel time over the segment, seconds.
    pub fn travel_time(&self) -> f64 {
        self.t_exit - self.t_enter
    }
}

/// Extracts the completed segment traversals from a tracked trajectory.
pub fn segment_traversals(route: &Route, fixes: &[Fix]) -> Vec<SegmentTraversal> {
    let mut out = Vec::new();
    for i in 0..route.edges().len() {
        let (Some(t_enter), Some(t_exit)) = (
            crossing_time(fixes, route.edge_start_s(i)),
            crossing_time(fixes, route.edge_end_s(i)),
        ) else {
            continue;
        };
        if t_exit > t_enter {
            out.push(SegmentTraversal {
                edge_index: i,
                t_enter,
                t_exit,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};
    use wilocator_svd::{FixMethod, PositionerConfig, RouteTileIndex, SvdConfig};

    fn setup() -> (BusTracker, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(800.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let net = b.build();
        let route = Route::new(RouteId(0), "t", vec![e0, e1], &net).unwrap();
        let mut aps = Vec::new();
        let mut x = 40.0;
        let mut i = 0u32;
        while x < 800.0 {
            aps.push(AccessPoint::new(
                ApId(i),
                Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
            ));
            i += 1;
            x += 80.0;
        }
        let field = HomogeneousField::new(aps);
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        (
            BusTracker::new(RoutePositioner::new(
                route,
                index,
                PositionerConfig::default(),
            )),
            field,
        )
    }

    fn report_at(field: &HomogeneousField, p: Point, t: f64, bus: u64) -> ScanReport {
        let readings: Vec<Reading> = field
            .detectable_at(p, -90.0)
            .into_iter()
            .map(|(ap, rss)| Reading {
                ap,
                bssid: Bssid::from_ap_id(ap),
                rss_dbm: rss.round() as i32,
            })
            .collect();
        ScanReport {
            bus: crate::report::BusKey(bus),
            time_s: t,
            scans: vec![Scan::new(t, readings)],
        }
    }

    #[test]
    fn tracker_follows_a_noiseless_bus() {
        let (mut tracker, field) = setup();
        // Bus moves at 10 m/s, scans every 10 s.
        for k in 0..8 {
            let t = k as f64 * 10.0;
            let s = t * 10.0;
            let p = tracker.route().point_at(s);
            let fix = tracker.ingest(&report_at(&field, p, t, 1));
            if let Some(f) = fix {
                assert!((f.s - s).abs() < 50.0, "tick {k}: {} vs {s}", f.s);
            }
        }
        assert_eq!(tracker.trajectory().fixes().len(), 8);
        // Monotone trajectory.
        for w in tracker.trajectory().fixes().windows(2) {
            assert!(w[1].s >= w[0].s - 1e-9);
        }
    }

    #[test]
    fn empty_report_dead_reckons() {
        let (mut tracker, field) = setup();
        let p = tracker.route().point_at(100.0);
        tracker.ingest(&report_at(&field, p, 0.0, 1));
        let fix = tracker
            .ingest(&ScanReport {
                bus: crate::report::BusKey(1),
                time_s: 10.0,
                scans: vec![Scan::new(10.0, vec![])],
            })
            .unwrap();
        assert_eq!(fix.method, FixMethod::DeadReckoned);
    }

    #[test]
    fn stale_report_is_classified_and_dropped() {
        let (mut tracker, field) = setup();
        let p = tracker.route().point_at(100.0);
        assert!(matches!(
            tracker.ingest_classified(&report_at(&field, p, 50.0, 1)),
            IngestOutcome::Fix(_)
        ));
        let before = tracker.trajectory().fixes().to_vec();
        // An older report arrives late: dropped, trajectory untouched.
        let q = tracker.route().point_at(60.0);
        assert_eq!(
            tracker.ingest_classified(&report_at(&field, q, 20.0, 1)),
            IngestOutcome::Stale
        );
        assert_eq!(tracker.trajectory().fixes(), &before[..]);
    }

    #[test]
    fn crossing_time_interpolates_linearly() {
        let mk = |t: f64, s: f64| Fix {
            s,
            point: Point::new(s, 0.0),
            interval: (s, s),
            method: FixMethod::Exact,
            time_s: t,
        };
        let fixes = vec![mk(0.0, 380.0), mk(10.0, 420.0)];
        // Crossing s = 400 halfway between the two fixes.
        assert_eq!(crossing_time(&fixes, 400.0), Some(5.0));
        assert_eq!(crossing_time(&fixes, 380.0), Some(0.0));
        assert_eq!(crossing_time(&fixes, 420.0), Some(10.0));
        // Within the 30 s extrapolation window (80 m at 4 m/s = 20 s).
        assert_eq!(crossing_time(&fixes, 500.0), Some(30.0));
        assert_eq!(crossing_time(&fixes, 340.0), Some(-10.0));
        // Far outside the window: unknown.
        assert_eq!(crossing_time(&fixes, 1_000.0), None);
        assert_eq!(crossing_time(&fixes, 100.0), None);
    }

    #[test]
    fn crossing_time_handles_dwell_at_the_node() {
        let mk = |t: f64, s: f64| Fix {
            s,
            point: Point::new(s, 0.0),
            interval: (s, s),
            method: FixMethod::Exact,
            time_s: t,
        };
        // Bus stopped exactly at the crossing point.
        let fixes = vec![mk(0.0, 400.0), mk(20.0, 400.0), mk(30.0, 450.0)];
        assert_eq!(crossing_time(&fixes, 400.0), Some(0.0));
    }

    #[test]
    fn segment_traversals_from_full_trip() {
        let (mut tracker, field) = setup();
        for k in 0..=16 {
            let t = k as f64 * 10.0;
            let s = (t * 5.0).min(800.0);
            let p = tracker.route().point_at(s);
            tracker.ingest(&report_at(&field, p, t, 1));
        }
        let route = tracker.route().clone();
        let traversals = segment_traversals(&route, tracker.trajectory().fixes());
        assert_eq!(traversals.len(), 2);
        // ~80 s per 400 m segment at 5 m/s.
        for tr in &traversals {
            assert!(
                (tr.travel_time() - 80.0).abs() < 25.0,
                "segment {} took {}",
                tr.edge_index,
                tr.travel_time()
            );
        }
    }

    #[test]
    fn finished_detects_route_end() {
        let (mut tracker, field) = setup();
        assert!(!tracker.finished());
        let end = tracker.route().length();
        let p = tracker.route().point_at(end);
        tracker.ingest(&report_at(&field, p, 0.0, 1));
        // A single fix near the end suffices.
        if let Some(f) = tracker.trajectory().last() {
            if f.s >= end - 1.0 {
                assert!(tracker.finished());
            }
        }
    }

    #[test]
    fn trajectory_geo_roundtrips() {
        let (mut tracker, field) = setup();
        let p = tracker.route().point_at(100.0);
        tracker.ingest(&report_at(&field, p, 0.0, 1));
        let proj = wilocator_geo::Projection::new(GeoPoint::new(49.26, -123.14));
        let geo = tracker.trajectory_geo(&proj);
        assert_eq!(geo.len(), 1);
        let back = proj.project(geo[0].0);
        assert!(back.distance(tracker.trajectory().last().unwrap().point) < 1e-6);
    }
}

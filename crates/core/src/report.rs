//! Scan reports and bus-route identification.
//!
//! The first step of WiLocator is to identify which route a sensed bus is
//! on (§V-A.1). The paper uses the on-board announcement ("when the bus
//! starts, it usually announces the bus route, including the route and the
//! destination it bounds for") recognised from riders' recordings, or the
//! driver's own device; riders near the driver (by proximity) inherit the
//! identification.

use wilocator_rf::{ApId, Scan};
use wilocator_road::RouteId;
use wilocator_svd::{average_ranks, to_ranked_rss};

/// A report uploaded by the phones on one bus at one scan tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Server-assigned key of the physical bus (one tracker per bus).
    pub bus: BusKey,
    /// Upload time, seconds.
    pub time_s: f64,
    /// One scan per reporting device.
    pub scans: Vec<Scan>,
}

impl ScanReport {
    /// The ranked `(ApId, rounded mean RSS)` list the positioner consumes:
    /// rank averaging across the report's devices (the paper's multi-device
    /// rank stabilisation), re-expressed as integer dBm so the positioner's
    /// tie-margin test sees real signal levels. APs heard by fewer than
    /// `min_observations` devices are dropped.
    pub fn positioning_ranks(&self, min_observations: usize) -> Vec<(ApId, i32)> {
        to_ranked_rss(&average_ranks(&self.scans, min_observations))
    }
}

/// Identifies one physical bus being tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusKey(pub u64);

impl std::fmt::Display for BusKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus{}", self.0)
    }
}

/// Resolves announcement transcripts (or driver text input) to route ids.
///
/// # Examples
///
/// ```
/// use wilocator_core::RouteIdentifier;
/// use wilocator_road::RouteId;
///
/// let mut id = RouteIdentifier::new();
/// id.register(RouteId(1), "9");
/// id.register(RouteId(0), "Rapid Line");
/// assert_eq!(id.identify("This is route 9 bound for Boundary"), Some(RouteId(1)));
/// assert_eq!(id.identify("rapid line to UBC"), Some(RouteId(0)));
/// assert_eq!(id.identify("mystery announcement"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteIdentifier {
    names: Vec<(RouteId, String)>,
}

impl RouteIdentifier {
    /// Creates an identifier with no known routes.
    pub fn new() -> Self {
        RouteIdentifier::default()
    }

    /// Registers a route under its announced name.
    pub fn register(&mut self, route: RouteId, name: impl Into<String>) {
        self.names.push((route, name.into().to_lowercase()));
        // Longest names first so "Rapid Line 9" prefers the specific match
        // and plain digits ("9") cannot shadow a longer name containing
        // them.
        self.names
            .sort_by_key(|(_, name)| std::cmp::Reverse(name.len()));
    }

    /// The registered `(route, lowercase name)` pairs.
    pub fn names(&self) -> impl Iterator<Item = (RouteId, &str)> {
        self.names.iter().map(|(r, n)| (*r, n.as_str()))
    }

    /// Identifies the route announced in a transcript.
    ///
    /// Matching is case-insensitive and word-bounded: route "9" matches
    /// "route 9 bound for X" but not "route 99".
    pub fn identify(&self, transcript: &str) -> Option<RouteId> {
        let hay = transcript.to_lowercase();
        for (route, name) in &self.names {
            if contains_word(&hay, name) {
                return Some(*route);
            }
        }
        None
    }
}

/// Word-bounded containment: `needle` occurs in `hay` not flanked by
/// alphanumerics.
fn contains_word(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let before_ok = begin == 0
            || !hay[..begin]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric())
                .unwrap_or(false);
        let after_ok = end == hay.len()
            || !hay[end..]
                .chars()
                .next()
                .map(|c| c.is_alphanumeric())
                .unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = begin + 1;
        if start >= hay.len() {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identifier() -> RouteIdentifier {
        let mut id = RouteIdentifier::new();
        id.register(RouteId(0), "Rapid Line");
        id.register(RouteId(1), "9");
        id.register(RouteId(2), "14");
        id.register(RouteId(3), "16");
        id
    }

    #[test]
    fn identifies_numeric_routes_word_bounded() {
        let id = identifier();
        assert_eq!(id.identify("route 14 bound for downtown"), Some(RouteId(2)));
        assert_eq!(id.identify("route 9, bound for Boundary"), Some(RouteId(1)));
        // "914" must not match route 9 or 14.
        assert_eq!(id.identify("route 914"), None);
    }

    #[test]
    fn identifies_named_route_case_insensitive() {
        let id = identifier();
        assert_eq!(id.identify("RAPID LINE to UBC"), Some(RouteId(0)));
    }

    #[test]
    fn longer_names_take_precedence() {
        let mut id = RouteIdentifier::new();
        id.register(RouteId(7), "9");
        id.register(RouteId(8), "99 B-Line");
        assert_eq!(
            id.identify("this is the 99 B-Line express"),
            Some(RouteId(8))
        );
    }

    #[test]
    fn no_match_is_none() {
        let id = identifier();
        assert_eq!(id.identify(""), None);
        assert_eq!(id.identify("the weather is nice"), None);
    }

    #[test]
    fn word_bound_checks() {
        assert!(contains_word("route 9 east", "9"));
        assert!(!contains_word("route 99", "9"));
        assert!(!contains_word("x9y", "9"));
        assert!(contains_word("9", "9"));
        assert!(!contains_word("abc", ""));
    }

    #[test]
    fn bus_key_display() {
        assert_eq!(BusKey(7).to_string(), "bus7");
    }
}

//! The travel-time store: historical and recent traversals per road
//! segment.
//!
//! Keyed by the *global* segment id ([`EdgeId`]), not by route — routes
//! that share a segment share its history, which is exactly what lets
//! Equation 8 borrow the most recent residual of *any* route on the
//! segment ("an advantage of leveraging more lately travel time of buses
//! with the same/different routes … over other solutions that only use the
//! data of the same route").

use std::collections::BTreeMap;

use wilocator_road::{EdgeId, RouteId};

/// One recorded traversal of a segment by a bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traversal {
    /// The route of the traversing bus.
    pub route: RouteId,
    /// Arrival at the segment start, absolute seconds.
    pub t_enter: f64,
    /// Arrival at the segment end, absolute seconds.
    pub t_exit: f64,
}

impl Traversal {
    /// Travel time over the segment, seconds.
    pub fn travel_time(&self) -> f64 {
        self.t_exit - self.t_enter
    }
}

/// Per-segment travel-time records, ordered by exit time.
///
/// Keyed by a `BTreeMap` so [`TravelTimeStore::edges`] yields segments in
/// id order: predictor training iterates this map, and replay output must
/// be byte-identical across processes (hash order is seeded per process).
#[derive(Debug, Clone, Default)]
pub struct TravelTimeStore {
    by_edge: BTreeMap<EdgeId, Vec<Traversal>>,
}

impl TravelTimeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TravelTimeStore::default()
    }

    /// Records a traversal.
    ///
    /// # Panics
    ///
    /// Panics if `t_exit <= t_enter` (zero or negative travel time).
    pub fn record(&mut self, edge: EdgeId, traversal: Traversal) {
        assert!(
            traversal.t_exit > traversal.t_enter,
            "travel time must be positive"
        );
        let v = self.by_edge.entry(edge).or_default();
        // Keep sorted by exit time; appends are usually already in order.
        match v.last() {
            Some(last) if last.t_exit <= traversal.t_exit => v.push(traversal),
            _ => {
                let pos = v
                    .binary_search_by(|t| t.t_exit.total_cmp(&traversal.t_exit))
                    .unwrap_or_else(|e| e);
                v.insert(pos, traversal);
            }
        }
    }

    /// All traversals of a segment, ordered by exit time.
    pub fn traversals(&self, edge: EdgeId) -> &[Traversal] {
        self.by_edge.get(&edge).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct segments with data.
    pub fn edge_count(&self) -> usize {
        self.by_edge.len()
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.by_edge.values().map(|v| v.len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments with at least one record, in ascending id order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.by_edge.keys().copied()
    }

    /// Copies every record of `other` into this store (used to assemble
    /// a merged view across server shards). Record lists stay ordered by
    /// exit time.
    pub fn merge_from(&mut self, other: &TravelTimeStore) {
        for (&edge, records) in &other.by_edge {
            let v = self.by_edge.entry(edge).or_default();
            if v.is_empty() {
                v.extend_from_slice(records);
            } else {
                v.extend_from_slice(records);
                v.sort_by(|a, b| a.t_exit.total_cmp(&b.t_exit));
            }
        }
    }

    /// Traversals of `edge` completed strictly before `t`, optionally
    /// filtered by a predicate on the record.
    pub fn completed_before(&self, edge: EdgeId, t: f64) -> impl Iterator<Item = &Traversal> {
        self.traversals(edge)
            .iter()
            .take_while(move |tr| tr.t_exit < t)
    }

    /// The most recent traversal of `edge` by each route, completed within
    /// `(t - window, t)`. At most one record per route (the latest) — the
    /// "J buses of K′ routes passing by e_i most recently".
    pub fn recent_by_route(&self, edge: EdgeId, t: f64, window_s: f64) -> Vec<Traversal> {
        let all = self.traversals(edge);
        // Records are sorted by exit time: jump to the window start.
        let start = all.partition_point(|tr| tr.t_exit <= t - window_s);
        let mut latest: BTreeMap<RouteId, Traversal> = BTreeMap::new();
        for tr in &all[start..] {
            if tr.t_exit >= t {
                break;
            }
            let e = latest.entry(tr.route).or_insert(*tr);
            if tr.t_exit > e.t_exit {
                *e = *tr;
            }
        }
        // Exit-time ties between routes break on route id (the BTreeMap
        // iteration order), never on hash order — replay determinism.
        let mut out: Vec<Traversal> = latest.into_values().collect();
        out.sort_by(|a, b| a.t_exit.total_cmp(&b.t_exit));
        out
    }

    /// The last `max_j` traversals of `edge` (any route) completed within
    /// `(t - window, t)`, oldest first — the "J buses of K′ routes passing
    /// by e_i most recently" of Equation 5.
    pub fn recent_buses(
        &self,
        edge: EdgeId,
        t: f64,
        window_s: f64,
        max_j: usize,
    ) -> Vec<Traversal> {
        let all = self.traversals(edge);
        let start = all.partition_point(|tr| tr.t_exit <= t - window_s);
        let end = all.partition_point(|tr| tr.t_exit < t);
        let lo = end.saturating_sub(max_j).max(start);
        all[lo..end].to_vec()
    }

    /// Mean travel time of `route` on `edge` over records completed before
    /// `t` and accepted by `filter` (used to restrict to a time slot).
    /// Returns `None` when no record matches.
    pub fn mean_travel_time(
        &self,
        edge: EdgeId,
        route: Option<RouteId>,
        t: f64,
        mut filter: impl FnMut(&Traversal) -> bool,
    ) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for tr in self.completed_before(edge, t) {
            // lint: allow(hot_path_effects) — caller-supplied predicate (⊤): time-slot restrictions are pure record tests
            if route.map(|r| tr.route == r).unwrap_or(true) && filter(tr) {
                sum += tr.travel_time();
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(route: u32, enter: f64, exit: f64) -> Traversal {
        Traversal {
            route: RouteId(route),
            t_enter: enter,
            t_exit: exit,
        }
    }

    #[test]
    fn records_stay_sorted() {
        let mut s = TravelTimeStore::new();
        let e = EdgeId(0);
        s.record(e, tr(0, 100.0, 160.0));
        s.record(e, tr(1, 50.0, 120.0)); // out of order insert
        s.record(e, tr(0, 200.0, 270.0));
        let exits: Vec<f64> = s.traversals(e).iter().map(|t| t.t_exit).collect();
        assert_eq!(exits, vec![120.0, 160.0, 270.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_travel_time_rejected() {
        let mut s = TravelTimeStore::new();
        s.record(EdgeId(0), tr(0, 100.0, 100.0));
    }

    #[test]
    fn completed_before_respects_time() {
        let mut s = TravelTimeStore::new();
        let e = EdgeId(0);
        s.record(e, tr(0, 0.0, 60.0));
        s.record(e, tr(0, 100.0, 170.0));
        assert_eq!(s.completed_before(e, 170.0).count(), 1);
        assert_eq!(s.completed_before(e, 171.0).count(), 2);
        assert_eq!(s.completed_before(e, 0.0).count(), 0);
    }

    #[test]
    fn recent_by_route_takes_latest_per_route() {
        let mut s = TravelTimeStore::new();
        let e = EdgeId(3);
        s.record(e, tr(0, 0.0, 60.0));
        s.record(e, tr(0, 300.0, 380.0));
        s.record(e, tr(1, 400.0, 490.0));
        s.record(e, tr(1, 900.0, 1_000.0));
        let recent = s.recent_by_route(e, 1_200.0, 1_000.0);
        assert_eq!(recent.len(), 2);
        // Route 0's latest in-window record is the 380 exit.
        assert!(recent
            .iter()
            .any(|t| t.route == RouteId(0) && t.t_exit == 380.0));
        assert!(recent
            .iter()
            .any(|t| t.route == RouteId(1) && t.t_exit == 1_000.0));
        // A narrow window drops the older routes.
        let narrow = s.recent_by_route(e, 1_200.0, 300.0);
        assert_eq!(narrow.len(), 1);
        assert_eq!(narrow[0].route, RouteId(1));
    }

    #[test]
    fn recent_excludes_future_records() {
        let mut s = TravelTimeStore::new();
        let e = EdgeId(0);
        s.record(e, tr(0, 0.0, 60.0));
        s.record(e, tr(0, 100.0, 170.0));
        let recent = s.recent_by_route(e, 150.0, 1_000.0);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].t_exit, 60.0);
    }

    #[test]
    fn mean_travel_time_filters() {
        let mut s = TravelTimeStore::new();
        let e = EdgeId(0);
        s.record(e, tr(0, 0.0, 50.0)); // 50 s
        s.record(e, tr(0, 100.0, 180.0)); // 80 s
        s.record(e, tr(1, 200.0, 290.0)); // 90 s
        let all = s.mean_travel_time(e, None, 1e9, |_| true).unwrap();
        assert!((all - (50.0 + 80.0 + 90.0) / 3.0).abs() < 1e-9);
        let r0 = s
            .mean_travel_time(e, Some(RouteId(0)), 1e9, |_| true)
            .unwrap();
        assert!((r0 - 65.0).abs() < 1e-9);
        let early = s
            .mean_travel_time(e, None, 1e9, |t| t.t_enter < 150.0)
            .unwrap();
        assert!((early - 65.0).abs() < 1e-9);
        assert!(s.mean_travel_time(EdgeId(9), None, 1e9, |_| true).is_none());
    }

    #[test]
    fn empty_store_behaviour() {
        let s = TravelTimeStore::new();
        assert!(s.is_empty());
        assert!(s.traversals(EdgeId(0)).is_empty());
        assert!(s.recent_by_route(EdgeId(0), 100.0, 100.0).is_empty());
    }
}

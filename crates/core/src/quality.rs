//! Online quality monitors: the retro-prediction ledger, per-route
//! ETA-residual sketches, drift detectors, and the quality sections
//! published with every [`crate::QuerySnapshot`].
//!
//! The rest of the observability stack answers "how fast" — counters,
//! histograms, traces. This module answers **"how well"**, live: the
//! paper's headline metric is arrival-time prediction accuracy, and its
//! dominant real-world degraders (device heterogeneity, AP churn
//! deforming the Voronoi diagram locally) arrive silently. Waiting for
//! an offline EXPERIMENTS.md sweep to notice is not an option for a
//! production fleet.
//!
//! # The retro-prediction ledger
//!
//! At every snapshot publication, each arrival-table entry whose lead
//! time has dropped to within a horizon (1/3/5 minutes by default) is
//! recorded as a *pending* prediction: "at stream time `t` we told
//! riders bus B reaches stop S at `eta`". When B's own fix stream later
//! crosses S, the actual crossing time is interpolated from the
//! trajectory ([`crate::tracker::crossing_time`] — the same
//! interpolation the travel-time store trusts) and the signed residual
//! `predicted − actual` is folded into per-(route, horizon) quantile
//! sketches. This is the paper's figure-level accuracy metric computed
//! online, from the live stream, with no ground-truth side channel: the
//! bus itself confirms its arrival.
//!
//! The ledger is bounded ([`QualityConfig::max_pending`] per shard,
//! FIFO eviction) and each sketch is a fixed pair of 32-bucket
//! log-histograms, so quality monitoring adds O(1) memory per
//! (route, horizon) regardless of uptime.
//!
//! # Drift detectors
//!
//! Four detectors watch the leading indicators of quality loss, each
//! evaluated as a burn-rate pair over a short and a long window of the
//! [`wilocator_obs::TimeSeries`] ring (both must exceed the SLO
//! threshold to fire, so a single noisy window neither fires nor masks
//! a sustained regression):
//!
//! * **dead-reckon fraction** — `svd_fix_dead_reckoned_total` over
//!   `svd_locate_total`;
//! * **tile-miss fraction** — signature resolutions that missed the
//!   direct tile path (`nearest_signature` + `none`) over locates;
//! * **AP-churn fraction** — per-bus scan-to-scan AP set divergence;
//! * **snapshot staleness** — seconds since the last publication.
//!
//! A fired detector carries *exemplar trace ids* from the tail-sampled
//! flight recorder: the retained traces whose anomaly kind matches the
//! detector (`dead_reckoned`, `tile_mapping_miss`, `ap_churn`), so an
//! alert links directly to causal traces instead of a bare ratio.
//!
//! # Locking
//!
//! Hot-path recording locks one per-shard quality mutex, always
//! acquired *after* the shard's `RwLock` (confirmation runs inside
//! `ingest_locked`; issuance inside the snapshot builder's shard read
//! pass) and never the other way around. Evaluation locks the plane
//! state first, then each shard quality mutex one at a time; it never
//! touches a shard `RwLock`, so the publish path cannot deadlock with
//! ingest. Readers of the published [`QualitySections`] touch no lock
//! at all — the sections ride the epoch-published snapshot.

use std::collections::{BTreeMap, VecDeque};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};

use wilocator_obs::{
    metric_key, Clock, Collect, Counter, MetricsSnapshot, SeriesKind, SeriesView, TimeSeries,
    TimeSeriesConfig, TraceCtx, TraceData,
};
use wilocator_rf::ApId;
use wilocator_road::{RouteId, StopId};
use wilocator_svd::Fix;

use crate::report::{BusKey, ScanReport};
use crate::snapshot::ArrivalEntry;
use crate::tracker::crossing_time;

/// Enters a lock even when a previous holder panicked (same argument as
/// the server's shard locks: quality state is plain data with no
/// multi-step invariant spanning an unlock).
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Quality-plane configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Master switch. Disabled, every hook is a cheap early return and
    /// the published sections stay empty.
    pub enabled: bool,
    /// Retro-prediction horizons, seconds, ascending. An arrival-table
    /// entry is recorded against horizon `h` the first publication its
    /// lead time is within `horizons_s[h]`.
    pub horizons_s: [f64; 3],
    /// Pending-ledger entries per shard; the oldest entry is evicted
    /// (and counted) when a new issuance would exceed this.
    pub max_pending: usize,
    /// Quality window width in *stream* seconds — residual-sketch
    /// rotation and the time-series ring both rotate on stream time, so
    /// replays evaluate identically at any wall-clock speed.
    pub window_s: f64,
    /// Closed windows retained per series / sketch.
    pub windows: usize,
    /// Minimum stream-time gap between evaluation passes. Publication
    /// can run per batch; re-gathering the registry that often would tax
    /// the ingest path for no information gain.
    pub min_sample_gap_s: f64,
    /// Detector thresholds and window shape.
    pub slo: SloConfig,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            enabled: true,
            horizons_s: [60.0, 180.0, 300.0],
            max_pending: 4096,
            window_s: 60.0,
            windows: 10,
            min_sample_gap_s: 1.0,
            slo: SloConfig::default(),
        }
    }
}

/// Burn-rate SLO thresholds for the drift detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Max acceptable dead-reckoned fraction of locate calls.
    pub dead_reckon_max_ratio: f64,
    /// Max acceptable tile-miss (non-direct signature resolution)
    /// fraction of locate calls.
    pub tile_miss_max_ratio: f64,
    /// Max acceptable churned fraction of observed APs.
    pub ap_churn_max_ratio: f64,
    /// Max acceptable snapshot staleness, seconds.
    pub staleness_max_s: f64,
    /// Short burn window, in quality windows (fast detection).
    pub short_windows: usize,
    /// Long burn window, in quality windows (sustained confirmation).
    pub long_windows: usize,
    /// Minimum denominator events inside a burn window for a ratio
    /// detector to be eligible to fire — a 1-of-2 blip is not drift.
    pub min_events: u64,
    /// Exemplar trace ids attached to a fired detector, at most.
    pub max_exemplars: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            dead_reckon_max_ratio: 0.25,
            tile_miss_max_ratio: 0.4,
            ap_churn_max_ratio: 0.5,
            staleness_max_s: 30.0,
            short_windows: 1,
            long_windows: 5,
            min_events: 20,
            max_exemplars: 3,
        }
    }
}

// ---------------------------------------------------------------------
// Residual sketches
// ---------------------------------------------------------------------

const SKETCH_BUCKETS: usize = 32;

#[inline]
fn sketch_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(SKETCH_BUCKETS - 1)
    }
}

#[inline]
fn sketch_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= SKETCH_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-memory sketch of *signed* residual seconds: two 32-bucket
/// log-histograms (negative and non-negative magnitudes). Quantiles
/// walk the negative side from most- to least-negative, then the
/// non-negative side ascending, so extraction is monotone in `q` by
/// construction (the timeseries proptests pin the unsigned analogue).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSketch {
    count: u64,
    sum_abs_s: f64,
    neg: [u64; SKETCH_BUCKETS],
    nonneg: [u64; SKETCH_BUCKETS],
}

impl Default for ResidualSketch {
    fn default() -> Self {
        ResidualSketch {
            count: 0,
            sum_abs_s: 0.0,
            neg: [0; SKETCH_BUCKETS],
            nonneg: [0; SKETCH_BUCKETS],
        }
    }
}

impl ResidualSketch {
    /// Folds one signed residual (seconds) into the sketch.
    pub fn fold(&mut self, residual_s: f64) {
        if !residual_s.is_finite() {
            return;
        }
        let mag = residual_s.abs().round().min(u64::MAX as f64) as u64;
        let idx = sketch_bucket(mag);
        if residual_s < 0.0 {
            self.neg[idx] += 1;
        } else {
            self.nonneg[idx] += 1;
        }
        self.count += 1;
        self.sum_abs_s += residual_s.abs();
    }

    /// Residuals folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean absolute residual, seconds (0 when empty).
    pub fn mean_abs_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs_s / self.count as f64
        }
    }

    /// Signed quantile (`0.0..=1.0`), at bucket resolution: the signed
    /// upper-magnitude bound of the bucket containing the q-th residual
    /// in ascending signed order.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in (0..SKETCH_BUCKETS).rev() {
            seen += self.neg[i];
            if seen >= rank {
                return -(sketch_upper(i).min(1 << 62) as f64);
            }
        }
        for (i, &c) in self.nonneg.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return sketch_upper(i).min(1 << 62) as f64;
            }
        }
        sketch_upper(SKETCH_BUCKETS - 1).min(1 << 62) as f64
    }

    /// Magnitude quantile: the signed buckets folded together by
    /// absolute value — the "how wrong, regardless of direction" view
    /// the dashboards lead with. Returns a bucket upper bound.
    pub fn quantile_abs_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..SKETCH_BUCKETS {
            seen += self.neg[i] + self.nonneg[i];
            if seen >= rank {
                return sketch_upper(i).min(1 << 62) as f64;
            }
        }
        sketch_upper(SKETCH_BUCKETS - 1).min(1 << 62) as f64
    }

    /// Adds another sketch's residuals into this one.
    pub fn merge(&mut self, other: &ResidualSketch) {
        self.count += other.count;
        self.sum_abs_s += other.sum_abs_s;
        for (a, b) in self.neg.iter_mut().zip(&other.neg) {
            *a += b;
        }
        for (a, b) in self.nonneg.iter_mut().zip(&other.nonneg) {
            *a += b;
        }
    }
}

/// Cumulative + windowed sketches for one (route, horizon).
#[derive(Debug, Default)]
struct HorizonSketches {
    cumulative: ResidualSketch,
    current: ResidualSketch,
    /// Closed stream-time windows, oldest first, capped at
    /// [`QualityConfig::windows`].
    ring: VecDeque<ResidualSketch>,
}

impl HorizonSketches {
    fn rotate(&mut self, capacity: usize) {
        while self.ring.len() >= capacity.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(std::mem::take(&mut self.current));
    }

    fn recent(&self) -> ResidualSketch {
        let mut out = self.current.clone();
        for w in &self.ring {
            out.merge(w);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------

/// Key of one pending retro-prediction: a bus serves one route and stop
/// ids are route-scoped, so (bus, stop, horizon) is unique per shard.
type PendingKey = (BusKey, StopId, u8);

#[derive(Debug, Clone, Copy)]
struct PendingEta {
    route: RouteId,
    stop_s: f64,
    predicted_abs_s: f64,
}

/// Per-shard quality state, parallel to the server's shard table and
/// guarded by its own mutex *outside* the shard `RwLock`.
#[derive(Debug, Default)]
struct ShardQuality {
    pending: BTreeMap<PendingKey, PendingEta>,
    /// Issuance order, for FIFO eviction. May hold keys already
    /// confirmed (removed from `pending`); eviction skips them and the
    /// list is compacted when it outgrows the ledger bound.
    order: VecDeque<PendingKey>,
    residuals: BTreeMap<(RouteId, u8), HorizonSketches>,
}

/// Per-bus quality state, owned by the shard's bus table so the hot
/// ingest hook reaches it through the `BusState` it already fetched —
/// no extra hash probe, and no lane-mutex acquire until a settlement
/// is actually due.
#[derive(Debug)]
pub(crate) struct BusQuality {
    /// Previous scan's sorted AP-id set, for churn accounting. Empty
    /// means the bus has no prior non-empty scan: sets are only stored
    /// when a scan observed at least one AP. Mutated only under the
    /// shard write lock (the ingest path).
    prev_aps: Vec<ApId>,
    /// Bit pattern of the smallest pending `stop_s` for this bus — the
    /// confirmation fast path. A fix short of the floor cannot settle
    /// anything, so the hot hook skips the ledger (and its mutex)
    /// entirely. Every write happens with the bus's lane mutex held
    /// (issuance under the shard read lock, settlement under the write
    /// lock), so plain relaxed load/store cannot lose an update; the
    /// atomic exists for interior mutability under the read lock, with
    /// ordering supplied by the shard `RwLock` itself. The floor may go
    /// stale-low (eviction removes ledger entries without raising it);
    /// that costs one empty range scan, never a missed settlement.
    due_floor_bits: AtomicU64,
}

impl Default for BusQuality {
    fn default() -> Self {
        Self {
            prev_aps: Vec::new(),
            due_floor_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

impl BusQuality {
    fn due_floor(&self) -> f64 {
        f64::from_bits(self.due_floor_bits.load(Ordering::Relaxed))
    }

    /// Lowers the floor to `stop_s` if it isn't already lower. Callers
    /// hold the bus's lane mutex (see `due_floor_bits`), so the
    /// read-then-store pair cannot lose a concurrent update.
    pub(crate) fn floor_min(&self, stop_s: f64) {
        if stop_s < self.due_floor() {
            self.due_floor_bits
                .store(stop_s.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Count of ids in exactly one of two sorted, deduplicated slices.
fn sym_diff_count(a: &[ApId], b: &[ApId]) -> u64 {
    let (mut i, mut j, mut out) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out + (a.len() - i) as u64 + (b.len() - j) as u64
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Quality-plane accounting. The AP families are pure functions of the
/// report stream (deterministic across thread counts); the ETA families
/// ride snapshot-publication cadence and are listed in
/// [`crate::metrics::NONDETERMINISTIC_COUNTER_FAMILIES`].
#[derive(Debug, Default)]
pub struct QualityMetrics {
    /// Retro-predictions recorded into the pending ledger.
    pub eta_issued_total: Counter,
    /// Pending predictions confirmed by an actual arrival.
    pub eta_confirmed_total: Counter,
    /// Pending predictions evicted unconfirmed (ledger bound).
    pub eta_ledger_evicted_total: Counter,
    /// APs that appeared in or vanished from a bus's scan set between
    /// consecutive fixes.
    pub ap_churn_total: Counter,
    /// APs observed across fixes (the churn denominator).
    pub ap_observed_total: Counter,
}

impl QualityMetrics {
    /// A fresh, shareable ledger.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Collect for QualityMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        out.add_counter(
            metric_key("wilocator_eta_issued_total", labels),
            self.eta_issued_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_eta_confirmed_total", labels),
            self.eta_confirmed_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_eta_ledger_evicted_total", labels),
            self.eta_ledger_evicted_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_ap_churn_total", labels),
            self.ap_churn_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_ap_observed_total", labels),
            self.ap_observed_total.get(),
        );
    }
}

// ---------------------------------------------------------------------
// Published views
// ---------------------------------------------------------------------

/// Live accuracy of one (route, horizon): cumulative and recent-window
/// residual statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonQuality {
    /// The horizon, seconds.
    pub horizon_s: f64,
    /// Confirmations folded since startup.
    pub confirmed_total: u64,
    /// Cumulative mean absolute residual, seconds.
    pub mean_abs_error_s: f64,
    /// Cumulative signed residual quantiles, seconds (bucket bounds).
    pub p50_s: f64,
    /// 90th percentile.
    pub p90_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Cumulative 90th-percentile *absolute* residual, seconds.
    pub p90_abs_s: f64,
    /// Confirmations inside the retained windows.
    pub recent_confirmed: u64,
    /// 90th-percentile signed residual over the retained windows.
    pub recent_p90_s: f64,
    /// 90th-percentile absolute residual over the retained windows —
    /// the live "how wrong right now" number degradations move first.
    pub recent_p90_abs_s: f64,
}

/// Live accuracy of one route across the configured horizons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteQuality {
    /// One entry per configured horizon, ascending.
    pub horizons: Vec<HorizonQuality>,
}

/// One drift detector's published status.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorStatus {
    /// Stable detector name (`dead_reckon_fraction`, …).
    pub name: &'static str,
    /// Whether both burn windows exceed the threshold.
    pub fired: bool,
    /// Short-window burn rate: observed ratio over threshold (≥ 1
    /// means above SLO).
    pub short_burn: f64,
    /// Long-window burn rate.
    pub long_burn: f64,
    /// The configured threshold the burns are normalized by.
    pub threshold: f64,
    /// Denominator events in the short window (eligibility evidence).
    pub short_events: u64,
    /// Denominator events in the long window.
    pub long_events: u64,
    /// Retained flight-recorder traces whose anomaly matches this
    /// detector, newest first — the alert-to-causal-trace link.
    pub exemplar_trace_ids: Vec<u64>,
}

/// The quality sections published inside every [`crate::QuerySnapshot`]:
/// windowed time-series, per-route accuracy, and detector statuses.
/// Shared by `Arc` so snapshot clones stay cheap.
#[derive(Debug, Clone, Default)]
pub struct QualitySections {
    /// Stream time of the evaluation pass that produced these sections.
    pub evaluated_at_s: f64,
    /// Windowed aggregates of the tracked metric families.
    pub series: Vec<SeriesView>,
    /// Per-route live accuracy.
    pub routes: BTreeMap<RouteId, RouteQuality>,
    /// Drift-detector statuses, stable order.
    pub slo: Vec<DetectorStatus>,
}

// ---------------------------------------------------------------------
// The plane
// ---------------------------------------------------------------------

/// Counter families the ingest dashboard tracks by default.
const TRACKED_COUNTERS: &[&str] = &[
    "wilocator_reports_total",
    "wilocator_fixes_total",
    "wilocator_queries_total",
    "wilocator_eta_issued_total",
    "wilocator_eta_confirmed_total",
    "wilocator_ap_churn_total",
    "wilocator_ap_observed_total",
    "svd_locate_total",
    "svd_fix_dead_reckoned_total",
    "svd_fix_nearest_signature_total",
    "svd_fix_none_total",
];

const TRACKED_GAUGES: &[&str] = &["wilocator_active_buses", "wilocator_snapshot_staleness_us"];

const TRACKED_HISTOGRAMS: &[&str] = &["wilocator_shard_lock_hold_us", "wilocator_query_latency_us"];

#[derive(Debug)]
struct PlaneState {
    series: TimeSeries,
    /// Stream-time window index the residual sketches are open on.
    sketch_window: Option<u64>,
    /// Cached sections of the last evaluation, reused while the stream
    /// has advanced less than [`QualityConfig::min_sample_gap_s`].
    cached: Option<(f64, Arc<QualitySections>)>,
}

/// The quality observability plane. One per server, beside (never
/// inside) the shard locks.
#[derive(Debug)]
pub struct QualityPlane {
    config: QualityConfig,
    metrics: Arc<QualityMetrics>,
    lanes: Vec<Mutex<ShardQuality>>,
    state: Mutex<PlaneState>,
}

impl QualityPlane {
    /// A plane for `shards` server shards, rotating its time-series on
    /// `clock` (evaluation always drives it by stream time; the clock
    /// only anchors the type).
    pub fn new(shards: usize, config: QualityConfig, clock: Arc<dyn Clock>) -> Self {
        let mut series = TimeSeries::new(
            TimeSeriesConfig {
                window_us: (config.window_s.max(1e-3) * 1e6) as u64,
                windows: config.windows.max(1),
            },
            clock,
        );
        for f in TRACKED_COUNTERS {
            series.track(f, SeriesKind::Counter);
        }
        for f in TRACKED_GAUGES {
            series.track(f, SeriesKind::Gauge);
        }
        for f in TRACKED_HISTOGRAMS {
            series.track(f, SeriesKind::Histogram);
        }
        QualityPlane {
            config,
            metrics: QualityMetrics::shared(),
            lanes: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            state: Mutex::new(PlaneState {
                series,
                sketch_window: None,
                cached: None,
            }),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &QualityConfig {
        &self.config
    }

    /// The quality accounting ledger (for registry registration).
    pub fn metrics(&self) -> &Arc<QualityMetrics> {
        &self.metrics
    }

    /// Hot-path hook: one confirmed fix for `report.bus` on `route`.
    /// Folds AP churn into `bq` (the bus's shard-owned quality state)
    /// and settles any pending retro-predictions the fix has crossed.
    /// Called with the shard `RwLock` held for write; the per-shard
    /// quality mutex is taken only when the fix has reached the bus's
    /// due floor, so the steady-state hook touches no lock but the one
    /// its caller already holds (lock order: shard lock → quality
    /// mutex, module docs).
    #[allow(clippy::too_many_arguments)]
    // lint: hot_path(deny: blocks_or_syscalls, unbounded_iteration)
    pub(crate) fn on_fix(
        &self,
        shard: usize,
        report: &ScanReport,
        fix: &Fix,
        fixes: &[Fix],
        bq: &mut BusQuality,
        scratch: &mut Vec<ApId>,
        trace: Option<&TraceCtx<'_>>,
    ) {
        if !self.config.enabled {
            return;
        }
        // AP churn: symmetric difference of consecutive sorted AP sets.
        // The current set is built in the shard's scratch buffer and
        // swapped with the stored per-bus set, so the steady-state hook
        // performs no heap allocation. Scan readings usually arrive in
        // ascending AP order; the sort runs only when they do not.
        scratch.clear();
        scratch.extend(
            report
                .scans
                .iter()
                .flat_map(|s| s.readings.iter().map(|r| r.ap)),
        );
        if !scratch.windows(2).all(|w| w[0] < w[1]) {
            scratch.sort_unstable();
            scratch.dedup();
        }
        if !scratch.is_empty() {
            self.metrics.ap_observed_total.add(scratch.len() as u64);
            // An empty stored set is "no prior non-empty scan": the
            // first observation seeds the set without counting churn.
            if !bq.prev_aps.is_empty() {
                let churned = sym_diff_count(&bq.prev_aps, scratch);
                self.metrics.ap_churn_total.add(churned);
                if let Some(t) = trace {
                    // Over half the combined set turned over between two
                    // consecutive scans of the same bus: a local AP-set
                    // deformation worth a retained causal trace.
                    if churned * 2 > (bq.prev_aps.len() + scratch.len()) as u64 {
                        t.flag_anomaly("ap_churn");
                    }
                }
            }
            std::mem::swap(&mut bq.prev_aps, scratch);
        }
        // Arrival confirmation: settle pending predictions whose stop
        // the trajectory has now crossed. The floor check keeps the
        // common nothing-due case free of ledger (and mutex) traffic.
        if fix.s < bq.due_floor() {
            return;
        }
        let Some(cell) = self.lanes.get(shard) else {
            return;
        };
        let q = &mut *unpoisoned(cell.lock());
        let lo = (report.bus, StopId(0), 0u8);
        let hi = (report.bus, StopId(u32::MAX), u8::MAX);
        let mut due: Vec<PendingKey> = Vec::new();
        let mut remaining = f64::INFINITY;
        for (k, p) in q.pending.range(lo..=hi) {
            if fix.s >= p.stop_s {
                due.push(*k);
            } else {
                remaining = remaining.min(p.stop_s);
            }
        }
        bq.due_floor_bits
            .store(remaining.to_bits(), Ordering::Relaxed);
        for key in due {
            let Some(p) = q.pending.remove(&key) else {
                continue;
            };
            // `crossing_time` needs a fix pair straddling the stop; a
            // tracker whose first fix is already past it (mid-route
            // registration) settles as unconfirmable and is dropped.
            if let Some(actual) = crossing_time(fixes, p.stop_s) {
                self.metrics.eta_confirmed_total.inc();
                let sketches = q.residuals.entry((p.route, key.2)).or_default();
                let residual = p.predicted_abs_s - actual;
                sketches.cumulative.fold(residual);
                sketches.current.fold(residual);
            }
        }
    }

    /// Publication hook: records the arrival-table entries of one
    /// (route, stop) whose lead time has entered a horizon. Called from
    /// the snapshot builder with the shard read lock held (same lock
    /// order as [`QualityPlane::on_fix`]). `floor_min` is invoked, with
    /// the lane mutex held, for each bus that gained a pending entry —
    /// the caller routes it to that bus's [`BusQuality`] so the ingest
    /// hook knows a settlement is due.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue(
        &self,
        shard: usize,
        route: RouteId,
        stop: StopId,
        stop_s: f64,
        as_of: f64,
        entries: &[ArrivalEntry],
        mut floor_min: impl FnMut(BusKey, f64),
    ) {
        if !self.config.enabled || entries.is_empty() {
            return;
        }
        let Some(cell) = self.lanes.get(shard) else {
            return;
        };
        let mut q = unpoisoned(cell.lock());
        for entry in entries {
            let lead = entry.eta_s - as_of;
            if lead <= 0.0 {
                continue;
            }
            let mut inserted = false;
            for (h, horizon_s) in self.config.horizons_s.iter().enumerate() {
                if lead > *horizon_s {
                    continue;
                }
                let key = (entry.bus, stop, h as u8);
                if q.pending.contains_key(&key) {
                    continue;
                }
                while q.pending.len() >= self.config.max_pending.max(1) {
                    let Some(old) = q.order.pop_front() else {
                        break;
                    };
                    if q.pending.remove(&old).is_some() {
                        self.metrics.eta_ledger_evicted_total.inc();
                    }
                }
                q.pending.insert(
                    key,
                    PendingEta {
                        route,
                        stop_s,
                        predicted_abs_s: entry.eta_s,
                    },
                );
                q.order.push_back(key);
                inserted = true;
                self.metrics.eta_issued_total.inc();
            }
            if inserted {
                floor_min(entry.bus, stop_s);
            }
        }
        // Confirmed entries leave their keys behind in `order`; compact
        // before the backlog of dead keys outgrows the ledger itself.
        if q.order.len() > self.config.max_pending.max(1) * 2 {
            let pending = std::mem::take(&mut q.pending);
            q.order.retain(|k| pending.contains_key(k));
            q.pending = pending;
        }
    }

    /// Evaluation pass: rotates the stream-time windows, samples the
    /// time-series from `gather`, evaluates the detectors, and returns
    /// the sections to publish. Reuses the previous result while the
    /// stream has advanced less than the configured sampling gap, so
    /// per-batch publication stays cheap.
    pub(crate) fn sections(
        &self,
        as_of: f64,
        gather: impl FnOnce() -> MetricsSnapshot,
        staleness_s: f64,
        retained: impl FnOnce() -> Vec<TraceData>,
    ) -> Arc<QualitySections> {
        if !self.config.enabled {
            return Arc::new(QualitySections::default());
        }
        let mut state = unpoisoned(self.state.lock());
        if let Some((at, cached)) = &state.cached {
            if as_of >= *at && as_of - *at < self.config.min_sample_gap_s {
                return cached.clone();
            }
        }
        let now_us = (as_of.max(0.0) * 1e6) as u64;
        // Rotate the residual sketches onto the stream-time window grid
        // (never backwards; gaps rotate at most ring-capacity+1 times,
        // matching the series' own clamp).
        let window = now_us / ((self.config.window_s.max(1e-3) * 1e6) as u64).max(1);
        let open = state.sketch_window.unwrap_or(window);
        if window > open {
            let turns = (window - open).min(self.config.windows as u64 + 1) as usize;
            for cell in &self.lanes {
                let mut q = unpoisoned(cell.lock());
                for sketches in q.residuals.values_mut() {
                    for _ in 0..turns {
                        sketches.rotate(self.config.windows);
                    }
                }
            }
        }
        state.sketch_window = Some(window.max(open));
        state.series.sample_at(now_us, &gather());
        let routes = self.route_quality();
        let slo = self.evaluate_detectors(&state.series, staleness_s, retained);
        let sections = Arc::new(QualitySections {
            evaluated_at_s: as_of,
            series: state.series.view(),
            routes,
            slo,
        });
        state.cached = Some((as_of, sections.clone()));
        sections
    }

    /// Per-route accuracy views from the residual sketches. Every route
    /// lives in exactly one shard, so no cross-shard merge is needed.
    fn route_quality(&self) -> BTreeMap<RouteId, RouteQuality> {
        let mut out: BTreeMap<RouteId, RouteQuality> = BTreeMap::new();
        for cell in &self.lanes {
            let q = unpoisoned(cell.lock());
            for ((route, h), sketches) in &q.residuals {
                let recent = sketches.recent();
                let cum = &sketches.cumulative;
                let view = out.entry(*route).or_default();
                let horizon_s = self
                    .config
                    .horizons_s
                    .get(*h as usize)
                    .copied()
                    .unwrap_or(0.0);
                view.horizons.push(HorizonQuality {
                    horizon_s,
                    confirmed_total: cum.count(),
                    mean_abs_error_s: cum.mean_abs_s(),
                    p50_s: cum.quantile_s(0.5),
                    p90_s: cum.quantile_s(0.9),
                    p99_s: cum.quantile_s(0.99),
                    p90_abs_s: cum.quantile_abs_s(0.9),
                    recent_confirmed: recent.count(),
                    recent_p90_s: recent.quantile_s(0.9),
                    recent_p90_abs_s: recent.quantile_abs_s(0.9),
                });
            }
        }
        for view in out.values_mut() {
            view.horizons
                .sort_by(|a, b| a.horizon_s.total_cmp(&b.horizon_s));
        }
        out
    }

    fn evaluate_detectors(
        &self,
        series: &TimeSeries,
        staleness_s: f64,
        retained: impl FnOnce() -> Vec<TraceData>,
    ) -> Vec<DetectorStatus> {
        struct Spec {
            name: &'static str,
            anomaly: &'static str,
            num: &'static [&'static str],
            den: &'static [&'static str],
            threshold: f64,
        }
        let slo = &self.config.slo;
        let specs = [
            Spec {
                name: "dead_reckon_fraction",
                anomaly: "dead_reckoned",
                num: &["svd_fix_dead_reckoned_total"],
                den: &["svd_locate_total"],
                threshold: slo.dead_reckon_max_ratio,
            },
            Spec {
                name: "tile_miss_fraction",
                anomaly: "tile_mapping_miss",
                num: &["svd_fix_nearest_signature_total", "svd_fix_none_total"],
                den: &["svd_locate_total"],
                threshold: slo.tile_miss_max_ratio,
            },
            Spec {
                name: "ap_churn_fraction",
                anomaly: "ap_churn",
                num: &["wilocator_ap_churn_total"],
                den: &["wilocator_ap_observed_total"],
                threshold: slo.ap_churn_max_ratio,
            },
        ];
        let sum = |families: &[&str], n: usize| -> u64 {
            families
                .iter()
                .map(|f| series.recent_counter_delta(f, n))
                .sum()
        };
        let burn = |num: u64, den: u64, threshold: f64| -> f64 {
            if den == 0 || threshold <= 0.0 {
                0.0
            } else {
                (num as f64 / den as f64) / threshold
            }
        };
        let mut out = Vec::with_capacity(specs.len() + 1);
        let mut retained_once = Some(retained);
        let mut exemplar_pool: Option<Vec<TraceData>> = None;
        for spec in specs {
            let short_den = sum(spec.den, slo.short_windows);
            let long_den = sum(spec.den, slo.long_windows);
            let short_burn = burn(sum(spec.num, slo.short_windows), short_den, spec.threshold);
            let long_burn = burn(sum(spec.num, slo.long_windows), long_den, spec.threshold);
            let fired = short_den >= slo.min_events
                && long_den >= slo.min_events
                && short_burn >= 1.0
                && long_burn >= 1.0;
            let exemplar_trace_ids = if fired {
                // The retention buffer is drained at most once per
                // evaluation, however many detectors fire.
                if exemplar_pool.is_none() {
                    exemplar_pool = Some(retained_once.take().map(|f| f()).unwrap_or_default());
                }
                let mut ids: Vec<u64> = exemplar_pool
                    .as_deref()
                    .unwrap_or_default()
                    .iter()
                    .filter(|t| t.anomaly == Some(spec.anomaly))
                    .map(|t| t.trace_id)
                    .collect();
                ids.sort_unstable_by(|a, b| b.cmp(a));
                ids.truncate(slo.max_exemplars);
                ids
            } else {
                Vec::new()
            };
            out.push(DetectorStatus {
                name: spec.name,
                fired,
                short_burn,
                long_burn,
                threshold: spec.threshold,
                short_events: short_den,
                long_events: long_den,
                exemplar_trace_ids,
            });
        }
        // Staleness is a level, not a rate: both burns are the same
        // normalized reading, and no exemplar anomaly maps to it.
        let staleness_burn = if slo.staleness_max_s > 0.0 {
            staleness_s / slo.staleness_max_s
        } else {
            0.0
        };
        out.push(DetectorStatus {
            name: "snapshot_staleness",
            fired: staleness_burn >= 1.0,
            short_burn: staleness_burn,
            long_burn: staleness_burn,
            threshold: slo.staleness_max_s,
            short_events: 0,
            long_events: 0,
            exemplar_trace_ids: Vec::new(),
        });
        out
    }

    /// Pending ledger entries across shards (tests and debug).
    pub fn pending_len(&self) -> usize {
        self.lanes
            .iter()
            .map(|c| unpoisoned(c.lock()).pending.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_obs::SteppingClock;

    fn plane(config: QualityConfig) -> QualityPlane {
        QualityPlane::new(1, config, Arc::new(SteppingClock::frozen(0)))
    }

    fn fix_at(s: f64, time_s: f64) -> Fix {
        Fix {
            s,
            point: wilocator_geo::Point::new(s, 0.0),
            interval: (s, s),
            method: wilocator_svd::FixMethod::Exact,
            time_s,
        }
    }

    fn report(bus: u64, time_s: f64, aps: &[u32]) -> ScanReport {
        ScanReport {
            bus: BusKey(bus),
            time_s,
            scans: vec![wilocator_rf::Scan::new(
                time_s,
                aps.iter()
                    .map(|&ap| wilocator_rf::Reading {
                        ap: ApId(ap),
                        bssid: wilocator_rf::Bssid::from_ap_id(ApId(ap)),
                        rss_dbm: -60,
                    })
                    .collect(),
            )],
        }
    }

    fn entry(bus: u64, eta_s: f64) -> ArrivalEntry {
        ArrivalEntry {
            bus: BusKey(bus),
            eta_s,
            from_fix_time_s: 0.0,
        }
    }

    #[test]
    fn sketch_quantiles_are_signed_and_monotone() {
        let mut sk = ResidualSketch::default();
        for r in [-40.0, -10.0, -5.0, 1.0, 2.0, 3.0, 30.0, 80.0] {
            sk.fold(r);
        }
        assert_eq!(sk.count(), 8);
        let q10 = sk.quantile_s(0.1);
        let q50 = sk.quantile_s(0.5);
        let q99 = sk.quantile_s(0.99);
        assert!(q10 <= q50 && q50 <= q99, "{q10} {q50} {q99}");
        assert!(q10 < 0.0, "lowest decile is an early prediction");
        assert!(q99 >= 80.0);
        assert!((sk.mean_abs_s() - 171.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_issues_once_per_horizon_and_confirms_on_crossing() {
        let p = plane(QualityConfig::default());
        let mut bq = BusQuality::default();
        let mut scratch = Vec::new();
        // Bus 1 predicted to reach stop (at s=500) at t=150, issued at
        // t=50: lead 100 s is within the 180 s and 300 s horizons only.
        let floor = |_, s| bq.floor_min(s);
        p.issue(
            0,
            RouteId(0),
            StopId(2),
            500.0,
            50.0,
            &[entry(1, 150.0)],
            floor,
        );
        assert_eq!(p.metrics().eta_issued_total.get(), 2);
        assert_eq!(bq.due_floor(), 500.0, "issuance lowered the floor");
        // Re-issuing the same prediction is idempotent.
        p.issue(
            0,
            RouteId(0),
            StopId(2),
            500.0,
            55.0,
            &[entry(1, 150.0)],
            |_, s| bq.floor_min(s),
        );
        assert_eq!(p.metrics().eta_issued_total.get(), 2);
        assert_eq!(p.pending_len(), 2);
        // The fix stream crosses s=500 between t=140 and t=160: actual
        // crossing interpolates to t=150 → residual 0 on both horizons.
        let fixes = [fix_at(450.0, 140.0), fix_at(550.0, 160.0)];
        let last = fixes[fixes.len() - 1];
        p.on_fix(
            0,
            &report(1, 160.0, &[]),
            &last,
            &fixes,
            &mut bq,
            &mut scratch,
            None,
        );
        assert_eq!(p.metrics().eta_confirmed_total.get(), 2);
        assert_eq!(p.pending_len(), 0);
        assert_eq!(bq.due_floor(), f64::INFINITY, "nothing left pending");
        let routes = p.route_quality();
        let rq = routes.get(&RouteId(0)).expect("route quality");
        assert_eq!(rq.horizons.len(), 2);
        assert!(rq.horizons.iter().all(|h| h.confirmed_total == 1));
        assert!(rq.horizons.iter().all(|h| h.mean_abs_error_s == 0.0));
    }

    #[test]
    fn ledger_eviction_is_fifo_and_counted() {
        let config = QualityConfig {
            max_pending: 2,
            ..QualityConfig::default()
        };
        let p = plane(config);
        for bus in 1..=3u64 {
            p.issue(
                0,
                RouteId(0),
                StopId(0),
                100.0,
                0.0,
                &[entry(bus, 250.0)], // lead 250 → 300 s horizon only
                |_, _| {},
            );
        }
        assert_eq!(p.metrics().eta_issued_total.get(), 3);
        assert_eq!(p.metrics().eta_ledger_evicted_total.get(), 1);
        assert_eq!(p.pending_len(), 2);
    }

    #[test]
    fn ap_churn_counts_symmetric_difference_and_flags_anomaly() {
        let p = plane(QualityConfig::default());
        let mut bq = BusQuality::default();
        let mut scratch = Vec::new();
        let f = fix_at(10.0, 1.0);
        p.on_fix(
            0,
            &report(1, 1.0, &[1, 2, 3, 4]),
            &f,
            &[f],
            &mut bq,
            &mut scratch,
            None,
        );
        assert_eq!(p.metrics().ap_observed_total.get(), 4);
        assert_eq!(p.metrics().ap_churn_total.get(), 0);
        // One AP swapped: churn 2 of 8 observed.
        p.on_fix(
            0,
            &report(1, 2.0, &[1, 2, 3, 5]),
            &f,
            &[f],
            &mut bq,
            &mut scratch,
            None,
        );
        assert_eq!(p.metrics().ap_observed_total.get(), 8);
        assert_eq!(p.metrics().ap_churn_total.get(), 2);
    }

    #[test]
    fn sections_cache_by_stream_gap_and_rotate_windows() {
        let p = plane(QualityConfig {
            window_s: 60.0,
            min_sample_gap_s: 1.0,
            ..QualityConfig::default()
        });
        let gather = MetricsSnapshot::new;
        let a = p.sections(10.0, gather, 0.0, Vec::new);
        let b = p.sections(10.5, gather, 0.0, Vec::new);
        assert!(Arc::ptr_eq(&a, &b), "within the gap: cached");
        let c = p.sections(12.0, gather, 0.0, Vec::new);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.evaluated_at_s, 12.0);
        assert_eq!(c.slo.len(), 4, "three ratio detectors + staleness");
        assert!(c.slo.iter().all(|d| !d.fired));
    }

    #[test]
    fn staleness_detector_fires_on_level() {
        let p = plane(QualityConfig::default());
        let s = p.sections(5.0, MetricsSnapshot::new, 45.0, Vec::new);
        let stale = s
            .slo
            .iter()
            .find(|d| d.name == "snapshot_staleness")
            .expect("staleness detector");
        assert!(stale.fired);
        assert!((stale.short_burn - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_detector_fires_with_exemplars() {
        let p = plane(QualityConfig::default());
        // A metrics snapshot with 60% dead-reckoned locates, enough
        // events to clear the eligibility floor.
        let gather = || {
            let mut m = MetricsSnapshot::new();
            m.add_counter("svd_locate_total{route=\"0\"}", 100);
            m.add_counter("svd_fix_dead_reckoned_total{route=\"0\"}", 60);
            m
        };
        let retained = || {
            vec![
                TraceData {
                    trace_id: 7,
                    shard: 0,
                    anomaly: Some("dead_reckoned"),
                    spans: Vec::new(),
                },
                TraceData {
                    trace_id: 9,
                    shard: 0,
                    anomaly: Some("unknown_bus"),
                    spans: Vec::new(),
                },
                TraceData {
                    trace_id: 11,
                    shard: 0,
                    anomaly: Some("dead_reckoned"),
                    spans: Vec::new(),
                },
            ]
        };
        // First evaluation establishes the counter baselines; the second
        // observes the dead-reckoned surge as window deltas.
        p.sections(5.0, MetricsSnapshot::new, 0.0, Vec::new);
        let s = p.sections(10.0, gather, 0.0, retained);
        let dr = s
            .slo
            .iter()
            .find(|d| d.name == "dead_reckon_fraction")
            .expect("dead-reckon detector");
        assert!(dr.fired, "0.6 observed vs 0.25 threshold");
        assert!(dr.short_burn > 2.0);
        assert_eq!(dr.exemplar_trace_ids, vec![11, 7], "newest first");
        let tile = s
            .slo
            .iter()
            .find(|d| d.name == "tile_miss_fraction")
            .expect("tile detector");
        assert!(!tile.fired);
        assert!(tile.exemplar_trace_ids.is_empty());
    }

    #[test]
    fn disabled_plane_is_inert() {
        let p = plane(QualityConfig {
            enabled: false,
            ..QualityConfig::default()
        });
        p.issue(
            0,
            RouteId(0),
            StopId(0),
            100.0,
            0.0,
            &[entry(1, 50.0)],
            |_, _| {},
        );
        let f = fix_at(10.0, 1.0);
        let mut bq = BusQuality::default();
        let mut scratch = Vec::new();
        p.on_fix(
            0,
            &report(1, 1.0, &[1, 2]),
            &f,
            &[f],
            &mut bq,
            &mut scratch,
            None,
        );
        assert_eq!(p.metrics().eta_issued_total.get(), 0);
        assert_eq!(p.metrics().ap_observed_total.get(), 0);
        let s = p.sections(5.0, MetricsSnapshot::new, 99.0, Vec::new);
        assert!(s.slo.is_empty());
        assert!(s.series.is_empty());
    }

    #[test]
    fn sym_diff_counts_both_sides() {
        let a = [ApId(1), ApId(2), ApId(3)];
        let b = [ApId(2), ApId(4)];
        assert_eq!(sym_diff_count(&a, &b), 3);
        assert_eq!(sym_diff_count(&a, &a), 0);
        assert_eq!(sym_diff_count(&[], &b), 2);
    }
}

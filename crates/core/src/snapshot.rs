//! Epoch-published query snapshots: the rider-facing read path.
//!
//! The ingest side of the server mutates sharded state behind `RwLock`s;
//! serving millions of riders from those locks would couple read latency
//! to write contention. Instead the server periodically *publishes* an
//! immutable [`QuerySnapshot`] — every bus's latest fix, every stop's
//! arrival table, every route's traffic map — and readers answer from
//! the latest published snapshot without ever touching an ingest lock.
//!
//! # Publication protocol
//!
//! [`SnapshotCell`] is a ring of `N ≥ 2` slots, each holding an
//! `Arc<QuerySnapshot>`, plus an atomic epoch counter:
//!
//! * **Readers** load the epoch (`Acquire`), index slot `epoch % N`,
//!   clone the `Arc` out under that slot's read lock, and retry if the
//!   snapshot's own epoch no longer matches the loaded one (a publisher
//!   lapped the whole ring between the two instructions — possible only
//!   when a reader stalls for `N` full publish cycles mid-read). The
//!   critical section is one reference-count increment — no allocation,
//!   no shard lock, no waiting on writers (a writer never touches the
//!   slot the current epoch points at).
//! * **Writers** serialize on a publish gate, build the next snapshot
//!   (taking shard *read* locks one at a time), write it into slot
//!   `(epoch + 1) % N` under that slot's write lock, then advance the
//!   epoch with a `Release` store. A writer can only wait on a reader
//!   that has fallen `N − 1` whole publish cycles behind mid-clone.
//!
//! The retry makes per-reader epoch monotonicity unconditional: each
//! returned snapshot carries exactly the epoch the reader loaded, and
//! same-thread loads of one atomic are coherence-ordered, so a reader's
//! sequence of epochs never decreases. Without it, a lapped reader could
//! return epoch `N + k` and then `N + j` (`j < k`) on its next call.
//! The model checker found that schedule (`crates/check/tests/model.rs`,
//! `lapped_reader_would_regress_without_retry`) before any wall-clock
//! stress test did.
//!
//! # Memory reclamation
//!
//! Old snapshots are reclaimed by `Arc`: overwriting a ring slot drops
//! the ring's reference, and the snapshot is freed when the last reader
//! clone drops. No epoch-based reclamation scheme or unsafe code is
//! needed — the workspace forbids `unsafe` — because readers hold owning
//! references, never borrowed pointers.

use std::collections::BTreeMap;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Condvar, Mutex, RwLock};

use wilocator_road::{RouteId, StopId};
use wilocator_svd::Fix;

use crate::quality::QualitySections;
use crate::report::BusKey;
use crate::traffic_map::SegmentState;

/// Enters a lock even when a previous holder panicked (same argument as
/// the server's shard locks: snapshot slots hold plain data with no
/// multi-step invariant spanning an unlock).
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Query-plane configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlaneConfig {
    /// Publish a fresh snapshot automatically after every
    /// [`crate::WiLocator::ingest_batch`] and [`crate::WiLocator::train`].
    /// Disable to drive publication manually (tests pause the publisher
    /// this way to probe staleness behaviour).
    pub publish_on_ingest: bool,
    /// Ring slots in the [`SnapshotCell`]. More slots give stalled
    /// readers more publish cycles of grace before a writer can block on
    /// them; 2 is the functional minimum.
    pub slots: usize,
    /// Trace one query in `trace_every` through the flight recorder
    /// (key-derived, so sampling is deterministic per target); 0 turns
    /// query tracing off. Rider traffic outnumbers ingest by orders of
    /// magnitude, and every published trace crosses a per-ring mutex —
    /// tracing each query would serialise the read path the snapshot
    /// layer exists to keep lock-free. Set to 1 to trace every query
    /// (tests do).
    pub trace_every: u32,
}

impl Default for QueryPlaneConfig {
    fn default() -> Self {
        QueryPlaneConfig {
            publish_on_ingest: true,
            slots: 4,
            trace_every: 16,
        }
    }
}

/// One bus's published position: the route it serves and its latest fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusView {
    /// The route the bus is registered on.
    pub route: RouteId,
    /// The latest position fix at publish time.
    pub fix: Fix,
}

/// One predicted arrival in a stop's published table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEntry {
    /// The approaching bus.
    pub bus: BusKey,
    /// Predicted absolute arrival time at the stop, seconds.
    pub eta_s: f64,
    /// `time_s` of the fix the prediction was integrated from. Always
    /// equals the published [`BusView::fix`] of the same bus in the same
    /// snapshot — consistency tests assert exactly this pairing.
    pub from_fix_time_s: f64,
}

/// Per-section epoch stamps, written once at build time. A reader that
/// ever observes differing stamps has seen a torn snapshot — which the
/// single-`Arc` publication makes impossible, and tests verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionStamps {
    /// Epoch stamped on the bus-position section.
    pub buses: u64,
    /// Epoch stamped on the arrival-table section.
    pub arrivals: u64,
    /// Epoch stamped on the traffic-map section.
    pub traffic: u64,
}

/// An immutable, internally consistent view of the serving state,
/// published as one unit: positions, arrival tables and traffic maps all
/// computed from the same pass over the shards.
///
/// All collections are ordered (`BTreeMap`, pre-sorted `Vec`s) so that
/// iteration — and therefore any serialized response — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct QuerySnapshot {
    /// Publication sequence number; 0 is the empty pre-publish snapshot.
    pub epoch: u64,
    /// The `as_of` stream time the snapshot was built for, seconds.
    pub published_at_s: f64,
    /// Latest fix of every tracked bus, ordered by key.
    pub buses: BTreeMap<BusKey, BusView>,
    /// Per-(route, stop) arrival tables, soonest first (ties by bus key).
    pub arrivals: BTreeMap<(RouteId, StopId), Vec<ArrivalEntry>>,
    /// Per-route traffic maps in route segment order.
    pub traffic: BTreeMap<RouteId, Vec<SegmentState>>,
    /// Quality sections (time-series, per-route accuracy, detector
    /// statuses), evaluated on the publish path and shared by `Arc` so
    /// `/debug` readers never touch an ingest lock. Empty when the
    /// quality plane is disabled.
    pub quality: Arc<QualitySections>,
    /// Torn-read tripwire: every section carries the snapshot's epoch.
    pub stamps: SectionStamps,
}

impl QuerySnapshot {
    /// The empty snapshot served before the first publication.
    pub fn empty() -> Self {
        QuerySnapshot::default()
    }

    /// An empty snapshot stamped for `epoch` at `as_of`, ready for the
    /// builder to fill.
    pub fn stamped(epoch: u64, as_of: f64) -> Self {
        QuerySnapshot {
            epoch,
            published_at_s: as_of,
            stamps: SectionStamps {
                buses: epoch,
                arrivals: epoch,
                traffic: epoch,
            },
            ..QuerySnapshot::default()
        }
    }

    /// The published position of a bus.
    pub fn position(&self, bus: BusKey) -> Option<&BusView> {
        self.buses.get(&bus)
    }

    /// The arrival table of one (route, stop) pair.
    pub fn arrivals(&self, route: RouteId, stop: StopId) -> Option<&[ArrivalEntry]> {
        self.arrivals.get(&(route, stop)).map(Vec::as_slice)
    }

    /// All arrival tables for a stop id across routes (stop ids are
    /// per-route, so one id can name a stop on several routes), in route
    /// order.
    pub fn arrivals_at_stop(
        &self,
        stop: StopId,
    ) -> impl Iterator<Item = (RouteId, &[ArrivalEntry])> {
        self.arrivals
            .iter()
            .filter(move |((_, s), _)| *s == stop)
            .map(|((r, _), entries)| (*r, entries.as_slice()))
    }

    /// The published traffic map of a route.
    pub fn traffic(&self, route: RouteId) -> Option<&[SegmentState]> {
        self.traffic.get(&route).map(Vec::as_slice)
    }

    /// True when every section carries the snapshot's own epoch — the
    /// not-torn invariant readers assert.
    pub fn is_coherent(&self) -> bool {
        self.stamps.buses == self.epoch
            && self.stamps.arrivals == self.epoch
            && self.stamps.traffic == self.epoch
    }
}

/// The epoch-published snapshot cell (see the module docs for the
/// protocol and its memory-reclamation argument).
#[derive(Debug)]
pub struct SnapshotCell {
    /// Current epoch; slot `epoch % slots.len()` holds its snapshot.
    epoch: AtomicU64,
    /// The ring. Writers only ever lock the *next* slot for writing, so
    /// readers of the current slot never contend with a writer.
    slots: Vec<RwLock<Arc<QuerySnapshot>>>,
    /// Serializes publishers; readers never touch it.
    gate: Mutex<()>,
    /// Long-poll subscriber parking lot: [`SnapshotCell::wait_past_epoch`]
    /// waiters sleep on `published` under `subs`, and every publication
    /// wakes them. Deliberately separate from `gate` so a subscriber
    /// arriving mid-build never waits out the snapshot construction.
    subs: Mutex<()>,
    published: Condvar,
}

impl SnapshotCell {
    /// A cell with `slots` ring slots (clamped to at least 2), serving
    /// the empty epoch-0 snapshot until the first publication.
    pub fn new(slots: usize) -> Self {
        let empty = Arc::new(QuerySnapshot::empty());
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slots: (0..slots.max(2))
                .map(|_| RwLock::new(empty.clone()))
                .collect(),
            gate: Mutex::new(()),
            subs: Mutex::new(()),
            published: Condvar::new(),
        }
    }

    /// The epoch of the latest published snapshot (0 before the first).
    pub fn epoch(&self) -> u64 {
        // Ordering: Acquire — callers use this as a freshness fence
        // ("anything published before the epoch I saw is visible");
        // pinned by `snapshot_reads_are_monotone_and_coherent` in
        // crates/check/tests/model.rs.
        self.epoch.load(Ordering::Acquire)
    }

    /// The latest published snapshot. Wait-free in practice: one atomic
    /// load, one uncontended slot read lock, one `Arc` clone; the retry
    /// loop only runs when a publisher laps the whole ring mid-read.
    pub fn read(&self) -> Arc<QuerySnapshot> {
        // lint: allow(hot_path_effects) — retry fires only when a publisher laps the whole slot ring mid-read; one iteration in every non-adversarial schedule
        loop {
            // Ordering: Acquire pairs with the publisher's Release store
            // below, so observing epoch `e` makes snapshot `e`'s slot
            // write visible to the slot read — a Relaxed load here lets
            // the model serve a stale ring slot (torn view of epoch `e`).
            // Pinned by `snapshot_reads_are_monotone_and_coherent`; the
            // deliberately broken ordering is caught by
            // `buggy_publish_order_is_caught` (crates/check/tests/model.rs).
            let e = self.epoch.load(Ordering::Acquire);
            let idx = (e as usize) % self.slots.len();
            let snap = Arc::clone(&*unpoisoned(self.slots[idx].read()));
            // The slot can only hold epoch `e + kN` (the Acquire load
            // guarantees at-least-`e`); anything newer means we were
            // lapped — retry with the fresh epoch so the returned epoch
            // always equals a value this thread loaded, which is what
            // makes per-reader monotonicity hold (module docs).
            if snap.epoch == e {
                return snap;
            }
        }
    }

    /// Publishes the snapshot produced by `build`, which receives the
    /// epoch being published and the previous snapshot (for monotonic
    /// stream-time clamping). Returns the new epoch.
    ///
    /// Publishers serialize on the gate; the epoch only advances here,
    /// with a `Release` store readers pair with their `Acquire` load.
    // lint: hot_path(deny: blocks_or_syscalls, unbounded_iteration)
    pub fn publish_with(&self, builder: impl FnOnce(u64, &QuerySnapshot) -> QuerySnapshot) -> u64 {
        let _gate = unpoisoned(self.gate.lock());
        // Ordering: Relaxed is enough — every store to `epoch` happens
        // under this gate, so the previous publisher's store is visible
        // through the gate's lock/unlock edge, not the atomic's. The
        // load was Acquire before the model checker existed; downgraded
        // after `publish_gate_serializes_and_epoch_is_exact` and
        // `snapshot_reads_are_monotone_and_coherent`
        // (crates/check/tests/model.rs) passed exhaustively with
        // Relaxed (14 and 217 schedules at preemption bound 2, stale
        // reads enabled, at the time of the downgrade).
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        let snap = {
            let prev = self.read();
            // lint: allow(hot_path_effects) — caller-supplied builder (⊤): publishers pass the pure snapshot constructor, exercised by the publish-path tests
            Arc::new(builder(next, &prev))
        };
        let idx = (next as usize) % self.slots.len();
        *unpoisoned(self.slots[idx].write()) = snap;
        // Ordering: Release publishes the slot write (and the snapshot's
        // heap contents) to any reader whose Acquire load observes
        // `next`. Pinned by `snapshot_reads_are_monotone_and_coherent`;
        // storing before the slot write (the seeded bug) is caught by
        // `buggy_publish_order_is_caught`.
        self.epoch.store(next, Ordering::Release);
        // Wake long-poll subscribers. Lock-then-notify: a waiter either
        // loads the new epoch before sleeping, or is already parked in
        // `wait_timeout` (having released `subs`) by the time this lock
        // acquisition succeeds — so the notification cannot fall between
        // its epoch check and its wait.
        drop(unpoisoned(self.subs.lock()));
        self.published.notify_all();
        next
    }

    /// Blocks until the published epoch exceeds `epoch` or `timeout`
    /// elapses, and returns the epoch current at that point — the
    /// long-poll primitive behind the HTTP `/subscribe` endpoint.
    ///
    /// Waiters park on a subscriber mutex distinct from the publish
    /// gate, so they neither serialize with a publisher's snapshot build
    /// nor with the lock-free `read` path. Under the model checker's
    /// virtual `Condvar` every wait times out immediately (a sound
    /// over-approximation), which this loop tolerates by re-checking the
    /// epoch after every wake and returning on timeout.
    pub fn wait_past_epoch(&self, epoch: u64, timeout: std::time::Duration) -> u64 {
        let mut remaining = timeout;
        let mut parked = unpoisoned(self.subs.lock());
        loop {
            // Ordering: Acquire — same freshness fence as `epoch()`; a
            // woken subscriber goes on to `read()` the snapshot whose
            // publication woke it.
            let e = self.epoch.load(Ordering::Acquire);
            if e > epoch || remaining.is_zero() {
                return e;
            }
            let started = std::time::Instant::now();
            let (guard, result) = unpoisoned(self.published.wait_timeout(parked, remaining));
            parked = guard;
            if result.timed_out() {
                return self.epoch.load(Ordering::Acquire);
            }
            remaining = remaining.saturating_sub(started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with_epoch(epoch: u64) -> QuerySnapshot {
        QuerySnapshot::stamped(epoch, epoch as f64)
    }

    #[test]
    fn empty_cell_serves_epoch_zero() {
        let cell = SnapshotCell::new(4);
        assert_eq!(cell.epoch(), 0);
        let snap = cell.read();
        assert_eq!(snap.epoch, 0);
        assert!(snap.buses.is_empty());
        assert!(snap.is_coherent());
    }

    #[test]
    fn publish_advances_epoch_and_swaps_snapshot() {
        let cell = SnapshotCell::new(2);
        for expect in 1..=10u64 {
            let got = cell.publish_with(|epoch, prev| {
                assert_eq!(epoch, expect);
                assert_eq!(prev.epoch, expect - 1);
                snap_with_epoch(epoch)
            });
            assert_eq!(got, expect);
            assert_eq!(cell.read().epoch, expect);
        }
    }

    #[test]
    fn readers_see_monotone_coherent_epochs_under_concurrent_publish() {
        let cell = SnapshotCell::new(4);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for _ in 0..500 {
                    cell.publish_with(|epoch, _| snap_with_epoch(epoch));
                }
            });
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut last = 0u64;
                        for _ in 0..2_000 {
                            let snap = cell.read();
                            assert!(snap.is_coherent(), "torn snapshot at {}", snap.epoch);
                            assert!(snap.epoch >= last, "epoch went backwards");
                            last = snap.epoch;
                        }
                        last
                    })
                })
                .collect();
            writer.join().expect("writer");
            for r in readers {
                r.join().expect("reader");
            }
        });
        assert_eq!(cell.epoch(), 500);
    }

    #[test]
    fn old_snapshot_outlives_overwrite_via_arc() {
        let cell = SnapshotCell::new(2);
        cell.publish_with(|e, _| snap_with_epoch(e));
        let held = cell.read();
        assert_eq!(held.epoch, 1);
        // Publish enough times to overwrite epoch 1's ring slot.
        for _ in 0..4 {
            cell.publish_with(|e, _| snap_with_epoch(e));
        }
        // The held clone still reads epoch 1: reclamation is by Arc drop,
        // not by slot reuse.
        assert_eq!(held.epoch, 1);
        assert!(held.is_coherent());
        assert_eq!(cell.read().epoch, 5);
    }

    #[test]
    fn wait_past_epoch_times_out_wakes_and_short_circuits() {
        let cell = SnapshotCell::new(2);
        // Timeout path: nothing published, bounded wait returns epoch 0.
        let e = cell.wait_past_epoch(0, std::time::Duration::from_millis(5));
        assert_eq!(e, 0);
        // Short-circuit path: the epoch is already past the watermark.
        cell.publish_with(|e, _| snap_with_epoch(e));
        assert_eq!(
            cell.wait_past_epoch(0, std::time::Duration::from_secs(30)),
            1
        );
        // Wake path: a publisher on another thread releases the waiter
        // well before the (generous) timeout.
        std::thread::scope(|scope| {
            let waiter =
                scope.spawn(|| cell.wait_past_epoch(1, std::time::Duration::from_secs(30)));
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                cell.publish_with(|e, _| snap_with_epoch(e));
            });
            assert_eq!(waiter.join().expect("waiter"), 2);
        });
    }

    #[test]
    fn arrivals_at_stop_spans_routes() {
        let mut snap = QuerySnapshot::stamped(3, 100.0);
        let entry = |bus: u64| ArrivalEntry {
            bus: BusKey(bus),
            eta_s: 120.0,
            from_fix_time_s: 90.0,
        };
        snap.arrivals
            .insert((RouteId(0), StopId(1)), vec![entry(1)]);
        snap.arrivals
            .insert((RouteId(2), StopId(1)), vec![entry(2), entry(3)]);
        snap.arrivals
            .insert((RouteId(0), StopId(0)), vec![entry(4)]);
        let at: Vec<_> = snap.arrivals_at_stop(StopId(1)).collect();
        assert_eq!(at.len(), 2);
        assert_eq!(at[0].0, RouteId(0));
        assert_eq!(at[1].0, RouteId(2));
        assert_eq!(at[1].1.len(), 2);
        assert_eq!(
            snap.arrivals(RouteId(0), StopId(0)).map(<[_]>::len),
            Some(1)
        );
        assert!(snap.arrivals(RouteId(9), StopId(0)).is_none());
    }
}

//! Hybrid WiFi/GPS tracking — the paper's §VII extension.
//!
//! "WiLocator is by no means exclusive; it can seemly integrate with GPS
//! or Cell-ID based location systems. For instance, when a smartphone scans
//! no WiFi information for a while, the GPS module is activated so that
//! the system can adaptively work from WiFi-coverage areas to GPS viable
//! environments."
//!
//! [`HybridTracker`] keeps the energy-hungry GPS **off** while WiFi scans
//! keep producing fixes, activates it after a configurable run of empty
//! scans (a coverage gap), and powers it back down the moment WiFi
//! re-acquires. GPS fixes are map-matched to the route and *seed* the SVD
//! tracking filter so WiFi re-acquisition starts from the right prior.

use wilocator_geo::Point;
use wilocator_rf::ApId;
use wilocator_road::Route;
use wilocator_svd::{FixMethod, Prior, RoutePositioner, TrackingFilter};

/// Where a hybrid fix came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixSource {
    /// SVD positioning from WiFi scans.
    Wifi,
    /// Map-matched GPS (WiFi coverage gap).
    Gps,
    /// Neither available: dead reckoning.
    DeadReckoned,
}

/// A position fix with its source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridFix {
    /// Arc length along the route, metres.
    pub s: f64,
    /// Planar position on the route.
    pub point: Point,
    /// Observation time, seconds.
    pub time_s: f64,
    /// Which subsystem produced the fix.
    pub source: FixSource,
}

/// Configuration of the hybrid tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Consecutive empty WiFi scans before the GPS module is powered on.
    pub activate_gps_after: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            activate_gps_after: 2,
        }
    }
}

/// Adaptive WiFi-first, GPS-fallback tracker.
///
/// # Examples
///
/// See `tests` below and the coverage-gap integration test.
#[derive(Debug, Clone)]
pub struct HybridTracker {
    filter: TrackingFilter,
    route: Route,
    config: HybridConfig,
    empty_streak: usize,
    gps_active: bool,
    gps_ticks: usize,
    total_ticks: usize,
}

impl HybridTracker {
    /// Creates a hybrid tracker around an SVD positioner.
    pub fn new(positioner: RoutePositioner, config: HybridConfig) -> Self {
        let route = positioner.route().clone();
        HybridTracker {
            filter: TrackingFilter::new(positioner),
            route,
            config,
            empty_streak: 0,
            gps_active: false,
            gps_ticks: 0,
            total_ticks: 0,
        }
    }

    /// Whether the GPS module is currently powered.
    pub fn gps_active(&self) -> bool {
        self.gps_active
    }

    /// Fraction of ticks the GPS was powered — the energy the adaptive
    /// policy saves relative to an always-on AVL unit.
    pub fn gps_duty_cycle(&self) -> f64 {
        if self.total_ticks == 0 {
            return 0.0;
        }
        self.gps_ticks as f64 / self.total_ticks as f64
    }

    /// Processes one tick: the WiFi rank list (possibly empty) and, *only
    /// if the GPS is currently active*, a GPS fix obtained from `gps`.
    ///
    /// `gps` is a closure so the expensive acquisition is only performed
    /// when the module is actually on.
    pub fn ingest(
        &mut self,
        ranked: &[(ApId, i32)],
        time_s: f64,
        gps: impl FnOnce() -> Option<Point>,
    ) -> Option<HybridFix> {
        self.total_ticks += 1;
        if !ranked.is_empty() {
            // WiFi path: a heard scan always powers the GPS down.
            if let Some(fix) = self.filter.step(ranked, time_s) {
                if fix.method != FixMethod::DeadReckoned {
                    self.empty_streak = 0;
                    self.gps_active = false;
                    return Some(HybridFix {
                        s: fix.s,
                        point: fix.point,
                        time_s,
                        source: FixSource::Wifi,
                    });
                }
                // Scan heard but rejected: treat like a gap tick below,
                // remembering the dead-reckoned estimate.
                self.note_gap();
                if let Some(h) = self.try_gps(time_s, gps) {
                    return Some(h);
                }
                return Some(HybridFix {
                    s: fix.s,
                    point: fix.point,
                    time_s,
                    source: FixSource::DeadReckoned,
                });
            }
        }
        // Empty scan.
        self.note_gap();
        if let Some(h) = self.try_gps(time_s, gps) {
            return Some(h);
        }
        // Dead reckon through the filter (empty rank list).
        let fix = self.filter.step(&[], time_s)?;
        Some(HybridFix {
            s: fix.s,
            point: fix.point,
            time_s,
            source: FixSource::DeadReckoned,
        })
    }

    fn note_gap(&mut self) {
        self.empty_streak += 1;
        if self.empty_streak >= self.config.activate_gps_after {
            self.gps_active = true;
        }
    }

    fn try_gps(&mut self, time_s: f64, gps: impl FnOnce() -> Option<Point>) -> Option<HybridFix> {
        if !self.gps_active {
            return None;
        }
        self.gps_ticks += 1;
        let p = gps()?;
        let pos = self.route.project(p);
        // Seed the WiFi filter so re-acquisition starts from here.
        self.filter.seed(Prior { s: pos.s, time_s });
        Some(HybridFix {
            s: pos.s,
            point: pos.point,
            time_s,
            source: FixSource::Gps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, HomogeneousField, SignalField};
    use wilocator_road::{NetworkBuilder, RouteId};
    use wilocator_svd::{PositionerConfig, RouteTileIndex, SvdConfig};

    /// A 1.2 km street with APs only on the first and last 400 m: a WiFi
    /// coverage gap in the middle.
    fn gap_street() -> (Route, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1_200.0, 0.0));
        let e = b.add_edge(n0, n1, None).unwrap();
        let route = Route::new(RouteId(0), "gap", vec![e], &b.build()).unwrap();
        let mut aps = Vec::new();
        // Detection range of the mean field is ~215 m; the AP-free middle
        // must be wider than twice that for scans to actually go empty.
        let xs = [30.0, 110.0, 190.0, 250.0, 950.0, 1_030.0, 1_110.0, 1_170.0];
        for (i, &x) in xs.iter().enumerate() {
            aps.push(AccessPoint::new(
                ApId(i as u32),
                Point::new(x, if i % 2 == 0 { 15.0 } else { -15.0 }),
            ));
        }
        (route, HomogeneousField::new(aps))
    }

    fn tracker() -> (HybridTracker, Route, HomogeneousField) {
        let (route, field) = gap_street();
        let index = RouteTileIndex::build(&field, &route, SvdConfig::default(), 1.0);
        let pos = RoutePositioner::new(route.clone(), index, PositionerConfig::default());
        (
            HybridTracker::new(pos, HybridConfig::default()),
            route,
            field,
        )
    }

    fn ranked_at(field: &HomogeneousField, route: &Route, s: f64) -> Vec<(ApId, i32)> {
        field
            .detectable_at(route.point_at(s), -90.0)
            .into_iter()
            .map(|(ap, rss)| (ap, rss.round() as i32))
            .collect()
    }

    #[test]
    fn gps_stays_off_in_coverage() {
        let (mut t, route, field) = tracker();
        for k in 0..5 {
            let s = 40.0 + k as f64 * 60.0;
            let ranked = ranked_at(&field, &route, s);
            let fix = t
                .ingest(&ranked, k as f64 * 10.0, || panic!("GPS must stay off"))
                .unwrap();
            if k > 0 {
                assert_eq!(fix.source, FixSource::Wifi);
            }
        }
        assert!(!t.gps_active());
        assert_eq!(t.gps_duty_cycle(), 0.0);
    }

    #[test]
    fn gap_activates_gps_and_reentry_deactivates_it() {
        let (mut t, route, field) = tracker();
        let mut tick = 0u32;
        let mut step = |t: &mut HybridTracker, s: f64| {
            let ranked = ranked_at(&field, &route, s);
            let time = tick as f64 * 10.0;
            tick += 1;
            let truth = route.point_at(s);
            t.ingest(&ranked, time, || Some(truth))
        };
        // In coverage: WiFi.
        for k in 0..4 {
            step(&mut t, 50.0 + k as f64 * 80.0);
        }
        assert!(!t.gps_active());
        // Into the gap (s ≈ 480–720: beyond detection range of both
        // clusters, so scans come back empty).
        let mut gps_fixes = 0;
        for k in 0..4 {
            let s = 480.0 + k as f64 * 80.0;
            let fix = step(&mut t, s).unwrap();
            if fix.source == FixSource::Gps {
                gps_fixes += 1;
                // GPS is map-matched: on-route and accurate.
                assert!((fix.s - s).abs() < 1.0);
            }
        }
        assert!(
            gps_fixes >= 2,
            "GPS produced only {gps_fixes} fixes in the gap"
        );
        assert!(t.gps_active());
        // Back into coverage: WiFi resumes seeded by GPS, module powers off.
        let fix = step(&mut t, 1_000.0).unwrap();
        let fix2 = step(&mut t, 1_060.0).unwrap();
        assert!(
            fix.source == FixSource::Wifi || fix2.source == FixSource::Wifi,
            "WiFi did not re-acquire: {:?} / {:?}",
            fix.source,
            fix2.source
        );
        assert!(!t.gps_active(), "GPS still on after re-acquisition");
        // The duty cycle reflects the adaptive policy: well under 100 %.
        assert!(t.gps_duty_cycle() < 0.8, "duty {:.2}", t.gps_duty_cycle());
    }

    #[test]
    fn gps_outage_in_gap_dead_reckons() {
        let (mut t, route, field) = tracker();
        for k in 0..3 {
            let s = 50.0 + k as f64 * 80.0;
            t.ingest(&ranked_at(&field, &route, s), k as f64 * 10.0, || None);
        }
        // Deep in the gap with GPS outage (urban canyon).
        let fix = t
            .ingest(&ranked_at(&field, &route, 560.0), 30.0, || None)
            .unwrap();
        let fix = match fix.source {
            FixSource::DeadReckoned => fix,
            _ => t
                .ingest(&ranked_at(&field, &route, 640.0), 40.0, || None)
                .unwrap(),
        };
        assert_eq!(fix.source, FixSource::DeadReckoned);
    }
}

//! The WiLocator server: real-time bus tracking, arrival-time prediction
//! and traffic-map generation (Sections IV–V of the paper).
//!
//! This crate is the back-end of the paper's three-component architecture
//! (Fig. 4): riders' phones scan WiFi and upload reports; the server —
//! this crate — positions each bus on its route with the Signal Voronoi
//! Diagram, extracts segment travel times by interpolating intersection
//! crossings (Fig. 5), learns each segment's rush-hour structure through
//! the seasonal index (Eq. 6–7), predicts arrivals by combining historical
//! means with the recent residuals of *all* routes sharing a segment
//! (Eq. 8–9), and classifies live traffic by z-scoring travel-time
//! residuals (the rule-of-thumb thresholds of §V-A.4).
//!
//! Entry point: [`WiLocator`].
//!
//! # Examples
//!
//! ```
//! use wilocator_core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
//! use wilocator_geo::Point;
//! use wilocator_road::{NetworkBuilder, Route, RouteId};
//! use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan};
//!
//! // One street, two APs, one route.
//! let mut b = NetworkBuilder::new();
//! let n0 = b.add_node(Point::new(0.0, 0.0));
//! let n1 = b.add_node(Point::new(300.0, 0.0));
//! let e = b.add_edge(n0, n1, None)?;
//! let net = b.build();
//! let mut route = Route::new(RouteId(0), "9", vec![e], &net)?;
//! route.add_stops_evenly(2);
//! let field = HomogeneousField::new(vec![
//!     AccessPoint::new(ApId(0), Point::new(60.0, 20.0)),
//!     AccessPoint::new(ApId(1), Point::new(240.0, -20.0)),
//! ]);
//!
//! let server = WiLocator::new(&field, vec![route], WiLocatorConfig::default());
//! server.register_bus(BusKey(1), RouteId(0))?;
//! let fix = server.ingest(&ScanReport {
//!     bus: BusKey(1),
//!     time_s: 0.0,
//!     scans: vec![Scan::new(0.0, vec![
//!         Reading { ap: ApId(0), bssid: Bssid::from_ap_id(ApId(0)), rss_dbm: -50 },
//!         Reading { ap: ApId(1), bssid: Bssid::from_ap_id(ApId(1)), rss_dbm: -78 },
//!     ])],
//! })?;
//! assert!(fix.unwrap().s < 150.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod history;
pub mod hybrid;
pub mod metrics;
pub mod predict;
pub mod proximity;
pub mod quality;
pub mod report;
pub mod seasonal;
pub mod server;
pub mod snapshot;
pub mod sync;
pub mod tracker;
pub mod traffic_map;

pub use history::{TravelTimeStore, Traversal};
pub use hybrid::{FixSource, HybridConfig, HybridFix, HybridTracker};
pub use metrics::{
    PredictorMetrics, QueryEndpoint, QueryMetrics, ServerMetrics, ShardMetrics,
    NONDETERMINISTIC_COUNTER_FAMILIES,
};
pub use predict::{ArrivalPredictor, PredictorConfig};
pub use proximity::{group_by_proximity, scan_distance_db, DeviceId};
pub use quality::{
    DetectorStatus, HorizonQuality, QualityConfig, QualityMetrics, QualityPlane, QualitySections,
    ResidualSketch, RouteQuality, SloConfig,
};
pub use report::{BusKey, RouteIdentifier, ScanReport};
pub use seasonal::{
    partition_from_index, seasonal_index, SeasonalConfig, SeasonalIndex, SlotPartition,
};
pub use server::{CoreError, IngestResult, WiLocator, WiLocatorConfig};
pub use snapshot::{
    ArrivalEntry, BusView, QueryPlaneConfig, QuerySnapshot, SectionStamps, SnapshotCell,
};
pub use tracker::{
    crossing_time, segment_traversals, BusTracker, IngestOutcome, SegmentTraversal,
    TrackedTrajectory,
};
pub use traffic_map::{
    delta_from_history, delta_from_median, detect_anomalies, route_exclusions, unknown_fraction,
    Anomaly, SegmentState, TrafficMapConfig, TrafficMapGenerator, TrafficState,
};

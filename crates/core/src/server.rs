//! The WiLocator back-end server (Fig. 4).
//!
//! "We shift the computation burden to the server": this type owns the
//! per-route SVD positioners, the per-bus trackers, the travel-time store,
//! the trained predictor and the traffic-map generator, and exposes the
//! operations of the paper's three components — real-time tracking,
//! arrival-time prediction and traffic-map generation. State is behind
//! `parking_lot` locks so concurrent rider uploads and user queries can be
//! served from multiple threads.

use std::collections::HashMap;

use parking_lot::RwLock;
use wilocator_rf::SignalField;
use wilocator_road::{Route, RouteId, StopId};
use wilocator_svd::{
    Fix, PositionerConfig, RoutePositioner, RouteTileIndex, SvdConfig,
};

use crate::history::{TravelTimeStore, Traversal};
use crate::predict::{ArrivalPredictor, PredictorConfig};
use crate::report::{BusKey, RouteIdentifier, ScanReport};
use crate::tracker::{segment_traversals, BusTracker};
use crate::traffic_map::{SegmentState, TrafficMapConfig, TrafficMapGenerator};

/// Errors returned by the server API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The route id is not served by this deployment.
    UnknownRoute(RouteId),
    /// The bus key has not been registered.
    UnknownBus(BusKey),
    /// The stop id does not exist on the route.
    UnknownStop(StopId),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownRoute(r) => write!(f, "unknown route {r}"),
            CoreError::UnknownBus(b) => write!(f, "unknown bus {b}"),
            CoreError::UnknownStop(s) => write!(f, "unknown stop {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WiLocatorConfig {
    /// SVD construction parameters.
    pub svd: SvdConfig,
    /// Positioner parameters.
    pub positioner: PositionerConfig,
    /// Predictor parameters.
    pub predictor: PredictorConfig,
    /// Traffic-map parameters.
    pub traffic: TrafficMapConfig,
    /// Route sampling step for the tile index, metres.
    pub sample_step_m: f64,
    /// A traversal is committed to the store once the bus is this far past
    /// the segment end, metres (stabilises the crossing interpolation).
    pub commit_margin_m: f64,
}

impl Default for WiLocatorConfig {
    fn default() -> Self {
        WiLocatorConfig {
            svd: SvdConfig::default(),
            positioner: PositionerConfig::default(),
            predictor: PredictorConfig::default(),
            traffic: TrafficMapConfig::default(),
            sample_step_m: 2.0,
            commit_margin_m: 30.0,
        }
    }
}

#[derive(Debug)]
struct BusState {
    route: RouteId,
    tracker: BusTracker,
    committed_upto: usize,
}

#[derive(Debug, Default)]
struct ServerState {
    buses: HashMap<BusKey, BusState>,
    store: TravelTimeStore,
}

/// The WiLocator server.
///
/// # Examples
///
/// See the crate-level example and `examples/quickstart.rs`.
#[derive(Debug)]
pub struct WiLocator {
    config: WiLocatorConfig,
    routes: Vec<Route>,
    positioners: HashMap<RouteId, RoutePositioner>,
    identifier: RouteIdentifier,
    state: RwLock<ServerState>,
    predictor: RwLock<ArrivalPredictor>,
    traffic: TrafficMapGenerator,
}

impl WiLocator {
    /// Builds the server: constructs the route tile indexes from the
    /// geo-tag field (the SVD construction step of Fig. 4) and registers
    /// route names for announcement-based identification.
    pub fn new<F: SignalField + ?Sized>(
        field: &F,
        routes: Vec<Route>,
        config: WiLocatorConfig,
    ) -> Self {
        let mut positioners = HashMap::new();
        let mut identifier = RouteIdentifier::new();
        for route in &routes {
            let index = RouteTileIndex::build(field, route, config.svd, config.sample_step_m);
            positioners.insert(
                route.id(),
                RoutePositioner::new(route.clone(), index, config.positioner),
            );
            identifier.register(route.id(), route.name());
        }
        WiLocator {
            config,
            routes,
            positioners,
            identifier,
            state: RwLock::new(ServerState::default()),
            predictor: RwLock::new(ArrivalPredictor::new(config.predictor)),
            traffic: TrafficMapGenerator::new(config.traffic),
        }
    }

    /// The served routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Route lookup.
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.iter().find(|r| r.id() == id)
    }

    /// Registers a bus on a route (driver text input path of §V-A.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn register_bus(&self, bus: BusKey, route: RouteId) -> Result<(), CoreError> {
        let positioner = self
            .positioners
            .get(&route)
            .ok_or(CoreError::UnknownRoute(route))?;
        let mut st = self.state.write();
        st.buses.insert(
            bus,
            BusState {
                route,
                tracker: BusTracker::new(positioner.clone()),
                committed_upto: 0,
            },
        );
        Ok(())
    }

    /// Registers a bus from an announcement transcript (voice path of
    /// §V-A.1). Returns the identified route.
    pub fn register_bus_by_announcement(
        &self,
        bus: BusKey,
        transcript: &str,
    ) -> Option<RouteId> {
        let route = self.identifier.identify(transcript)?;
        self.register_bus(bus, route).ok()?;
        Some(route)
    }

    /// Ingests one scan report, returning the new position fix.
    ///
    /// Newly completed segment traversals (the bus has moved
    /// `commit_margin_m` past a segment end) are committed to the
    /// travel-time store, feeding prediction and the traffic map.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] for unregistered buses.
    pub fn ingest(&self, report: &ScanReport) -> Result<Option<Fix>, CoreError> {
        let mut st = self.state.write();
        let bus = st
            .buses
            .get_mut(&report.bus)
            .ok_or(CoreError::UnknownBus(report.bus))?;
        let fix = bus.tracker.ingest(report);
        let Some(fix) = fix else {
            return Ok(None);
        };
        // Commit traversals the bus has safely cleared.
        let route = bus.tracker.route().clone();
        let route_id = bus.route;
        let fixes = bus.tracker.trajectory().fixes().to_vec();
        let mut committed_upto = bus.committed_upto;
        let mut new_records = Vec::new();
        for tr in segment_traversals(&route, &fixes) {
            if tr.edge_index < committed_upto {
                continue;
            }
            if route.edge_end_s(tr.edge_index) + self.config.commit_margin_m > fix.s {
                break;
            }
            new_records.push((route.edges()[tr.edge_index], tr));
            committed_upto = tr.edge_index + 1;
        }
        st.buses.get_mut(&report.bus).expect("present").committed_upto = committed_upto;
        for (edge, tr) in new_records {
            st.store.record(
                edge,
                Traversal {
                    route: route_id,
                    t_enter: tr.t_enter,
                    t_exit: tr.t_exit,
                },
            );
        }
        Ok(Some(fix))
    }

    /// Finishes a bus trip: commits all remaining traversals and removes
    /// the tracker.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] for unregistered buses.
    pub fn finish_bus(&self, bus: BusKey) -> Result<(), CoreError> {
        let mut st = self.state.write();
        let state = st.buses.remove(&bus).ok_or(CoreError::UnknownBus(bus))?;
        let route = state.tracker.route().clone();
        let fixes = state.tracker.trajectory().fixes().to_vec();
        for tr in segment_traversals(&route, &fixes) {
            if tr.edge_index >= state.committed_upto {
                st.store.record(
                    route.edges()[tr.edge_index],
                    Traversal {
                        route: state.route,
                        t_enter: tr.t_enter,
                        t_exit: tr.t_exit,
                    },
                );
            }
        }
        Ok(())
    }

    /// The latest position fix of a bus.
    pub fn position(&self, bus: BusKey) -> Option<Fix> {
        self.state.read().buses.get(&bus)?.tracker.trajectory().last().copied()
    }

    /// The tracked trajectory fixes of a bus.
    pub fn trajectory(&self, bus: BusKey) -> Option<Vec<Fix>> {
        Some(
            self.state
                .read()
                .buses
                .get(&bus)?
                .tracker
                .trajectory()
                .fixes()
                .to_vec(),
        )
    }

    /// Offline training (§V-A.3): seasonal index → slot partitions, from
    /// everything recorded before `as_of`.
    pub fn train(&self, as_of: f64) {
        let st = self.state.read();
        self.predictor.write().train(&st.store, as_of);
    }

    /// Predicts the absolute arrival time of `bus` at stop `stop` of its
    /// route (Equations 8–9), from its latest fix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] / [`CoreError::UnknownStop`].
    pub fn predict_arrival(&self, bus: BusKey, stop: StopId) -> Result<f64, CoreError> {
        let st = self.state.read();
        let state = st.buses.get(&bus).ok_or(CoreError::UnknownBus(bus))?;
        let route = state.tracker.route();
        let stop = route.stop(stop).ok_or(CoreError::UnknownStop(stop))?;
        let fix = state
            .tracker
            .trajectory()
            .last()
            .ok_or(CoreError::UnknownBus(bus))?;
        let predictor = self.predictor.read();
        Ok(predictor.predict_arrival(&st.store, route, fix.s, fix.time_s, stop.s()))
    }

    /// Predicts the arrival time at `stop_s` for a hypothetical bus of
    /// `route` at `current_s` at time `t` (used by the evaluation harness).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn predict_arrival_at(
        &self,
        route: RouteId,
        current_s: f64,
        t: f64,
        stop_s: f64,
    ) -> Result<f64, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let st = self.state.read();
        let predictor = self.predictor.read();
        Ok(predictor.predict_arrival(&st.store, r, current_s, t, stop_s))
    }

    /// Rider-facing query (the paper's third component, the trip-plan
    /// interface): every active bus of `route` that has not yet passed
    /// `stop`, with its predicted arrival time, soonest first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] / [`CoreError::UnknownStop`].
    pub fn arrivals_at(
        &self,
        route: RouteId,
        stop: StopId,
    ) -> Result<Vec<(BusKey, f64)>, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let stop = r.stop(stop).ok_or(CoreError::UnknownStop(stop))?;
        let st = self.state.read();
        let predictor = self.predictor.read();
        let mut out: Vec<(BusKey, f64)> = st
            .buses
            .iter()
            .filter(|(_, b)| b.route == route)
            .filter_map(|(&key, b)| {
                let fix = b.tracker.trajectory().last()?;
                (fix.s < stop.s()).then(|| {
                    (
                        key,
                        predictor.predict_arrival(&st.store, r, fix.s, fix.time_s, stop.s()),
                    )
                })
            })
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        Ok(out)
    }

    /// The live traffic map of a route at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn traffic_map(&self, route: RouteId, t: f64) -> Result<Vec<SegmentState>, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let st = self.state.read();
        let predictor = self.predictor.read();
        Ok(self.traffic.route_map(&st.store, &predictor, r, t))
    }

    /// Read access to the travel-time store (evaluation hooks).
    pub fn with_store<T>(&self, f: impl FnOnce(&TravelTimeStore) -> T) -> T {
        f(&self.state.read().store)
    }

    /// Read access to the trained predictor (evaluation hooks).
    pub fn with_predictor<T>(&self, f: impl FnOnce(&ArrivalPredictor) -> T) -> T {
        f(&self.predictor.read())
    }

    /// The positioner of a route (evaluation hooks).
    pub fn positioner(&self, route: RouteId) -> Option<&RoutePositioner> {
        self.positioners.get(&route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan};
    use wilocator_road::NetworkBuilder;

    pub(crate) fn setup() -> (WiLocator, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(800.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let net = b.build();
        let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net).unwrap();
        route.add_stops_evenly(3);
        let mut aps = Vec::new();
        let mut x = 40.0;
        let mut i = 0u32;
        while x < 800.0 {
            aps.push(AccessPoint::new(
                ApId(i),
                Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
            ));
            i += 1;
            x += 80.0;
        }
        let field = HomogeneousField::new(aps);
        let server = WiLocator::new(&field, vec![route], WiLocatorConfig::default());
        (server, field)
    }

    pub(crate) fn report(field: &HomogeneousField, route: &Route, s: f64, t: f64, bus: u64) -> ScanReport {
        let p = route.point_at(s);
        let readings: Vec<Reading> = field
            .detectable_at(p, -90.0)
            .into_iter()
            .map(|(ap, rss)| Reading {
                ap,
                bssid: Bssid::from_ap_id(ap),
                rss_dbm: rss.round() as i32,
            })
            .collect();
        ScanReport {
            bus: BusKey(bus),
            time_s: t,
            scans: vec![Scan::new(t, readings)],
        }
    }

    fn drive(server: &WiLocator, field: &HomogeneousField, bus: u64, t0: f64, speed: f64) {
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(bus), RouteId(0)).unwrap();
        let mut t = t0;
        loop {
            let s = (t - t0) * speed;
            if s > route.length() {
                break;
            }
            server.ingest(&report(field, &route, s, t, bus)).unwrap();
            t += 10.0;
        }
        server.finish_bus(BusKey(bus)).unwrap();
    }

    #[test]
    fn unknown_route_and_bus_errors() {
        let (server, field) = setup();
        assert_eq!(
            server.register_bus(BusKey(1), RouteId(9)),
            Err(CoreError::UnknownRoute(RouteId(9)))
        );
        let route = server.routes()[0].clone();
        let rep = report(&field, &route, 0.0, 0.0, 2);
        assert_eq!(server.ingest(&rep), Err(CoreError::UnknownBus(BusKey(2))));
        assert_eq!(
            server.finish_bus(BusKey(2)),
            Err(CoreError::UnknownBus(BusKey(2)))
        );
    }

    #[test]
    fn announcement_registration() {
        let (server, _) = setup();
        assert_eq!(
            server.register_bus_by_announcement(BusKey(1), "route 9 bound for Boundary"),
            Some(RouteId(0))
        );
        assert!(server
            .register_bus_by_announcement(BusKey(2), "route 55")
            .is_none());
    }

    #[test]
    fn tracking_produces_positions() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        for k in 0..5 {
            let t = k as f64 * 10.0;
            server
                .ingest(&report(&field, &route, t * 8.0, t, 1))
                .unwrap();
        }
        let fix = server.position(BusKey(1)).expect("tracked");
        assert!((fix.s - 320.0).abs() < 60.0, "fix at {}", fix.s);
        assert_eq!(server.trajectory(BusKey(1)).unwrap().len(), 5);
    }

    #[test]
    fn traversals_committed_to_store() {
        let (server, field) = setup();
        drive(&server, &field, 1, 0.0, 8.0);
        let (records, edges) = server.with_store(|s| (s.len(), s.edge_count()));
        assert_eq!(edges, 2, "both segments recorded");
        assert!(records >= 2);
        // Ground-truth segment time is 400 m / 8 m/s = 50 s.
        server.with_store(|s| {
            for e in s.edges().collect::<Vec<_>>() {
                for tr in s.traversals(e) {
                    // 400 m at 8 m/s = 50 s; the first segment carries
                    // extra startup-extrapolation noise.
                    assert!(
                        (tr.travel_time() - 50.0).abs() < 25.0,
                        "travel time {}",
                        tr.travel_time()
                    );
                }
            }
        });
    }

    #[test]
    fn prediction_after_history() {
        let (server, field) = setup();
        // Five buses build history.
        for b in 0..5 {
            drive(&server, &field, b, b as f64 * 400.0, 8.0);
        }
        server.train(10_000.0);
        // A new bus at the start asks for the final stop's arrival.
        server.register_bus(BusKey(99), RouteId(0)).unwrap();
        let route = server.routes()[0].clone();
        server
            .ingest(&report(&field, &route, 5.0, 3_000.0, 99))
            .unwrap();
        let final_stop = route.stops().last().unwrap().id();
        let eta = server.predict_arrival(BusKey(99), final_stop).unwrap();
        // ~800 m at 8 m/s ≈ 100 s from now.
        let offset = eta - 3_000.0;
        assert!((60.0..200.0).contains(&offset), "eta offset {offset}");
    }

    #[test]
    fn predict_arrival_at_unknown_route_errors() {
        let (server, _) = setup();
        assert!(matches!(
            server.predict_arrival_at(RouteId(7), 0.0, 0.0, 100.0),
            Err(CoreError::UnknownRoute(_))
        ));
    }

    #[test]
    fn traffic_map_has_entry_per_segment() {
        let (server, field) = setup();
        for b in 0..10 {
            drive(&server, &field, b, b as f64 * 400.0, 8.0);
        }
        let map = server.traffic_map(RouteId(0), 5_000.0).unwrap();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn arrivals_at_lists_approaching_buses() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        // Two buses on the road: one at 100 m, one at 600 m.
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        server.register_bus(BusKey(2), RouteId(0)).unwrap();
        server.ingest(&report(&field, &route, 100.0, 1_000.0, 1)).unwrap();
        server.ingest(&report(&field, &route, 600.0, 1_000.0, 2)).unwrap();
        // Stop mid-route at s = 400: only bus 1 is still approaching.
        let mid_stop = route.stops()[1].id();
        let arrivals = server.arrivals_at(RouteId(0), mid_stop).unwrap();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].0, BusKey(1));
        assert!(arrivals[0].1 > 1_000.0);
        // Final stop: both approach, bus 2 arrives first.
        let last_stop = route.stops().last().unwrap().id();
        let arrivals = server.arrivals_at(RouteId(0), last_stop).unwrap();
        assert_eq!(arrivals.len(), 2);
        assert_eq!(arrivals[0].0, BusKey(2));
        assert!(arrivals[0].1 <= arrivals[1].1);
        // Unknown stop errors.
        assert!(matches!(
            server.arrivals_at(RouteId(0), StopId(99)),
            Err(CoreError::UnknownStop(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CoreError::UnknownRoute(RouteId(0)),
            CoreError::UnknownBus(BusKey(0)),
            CoreError::UnknownStop(StopId(0)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}


//! The WiLocator back-end server (Fig. 4).
//!
//! "We shift the computation burden to the server": this type owns the
//! per-route SVD positioners, the per-bus trackers, the travel-time store,
//! the trained predictor and the traffic-map generator, and exposes the
//! operations of the paper's three components — real-time tracking,
//! arrival-time prediction and traffic-map generation.
//!
//! # Sharding
//!
//! Server state is split into *shards*: connected components of routes
//! that share at least one road segment. Each shard owns its bus
//! trackers, travel-time store, predictor and traffic-map state behind
//! one `RwLock`, so uploads for unrelated routes never contend. Segments
//! partition cleanly across shards (a segment shared by two routes puts
//! both routes in the same shard), which preserves Equation 8's
//! cross-route residual borrowing exactly: every traversal of a segment
//! lands in the one shard that owns it. The route table, positioners and
//! the bus → shard directory are read-mostly; only registration touches
//! the directory with a write lock.
//!
//! Lock ordering: the bus directory is always acquired before any shard
//! lock, and no operation ever holds two shard locks at once.

use crate::sync::{Arc, RwLock};
use std::collections::HashMap;

use wilocator_obs::{
    Clock, MetricsSnapshot, MonotonicClock, Registry, TraceConfig, TraceCtx, TraceData, Tracer,
};
use wilocator_rf::SignalField;
use wilocator_road::{EdgeId, Route, RouteId, StopId};
use wilocator_svd::{
    Fix, FixMethod, PositionerConfig, PositioningMetrics, RoutePositioner, RouteTileIndex,
    SvdConfig,
};

use crate::history::{TravelTimeStore, Traversal};
use crate::metrics::{QueryMetrics, ServerMetrics, ShardMetrics};
use crate::predict::{ArrivalPredictor, PredictorConfig};
use crate::quality::{BusQuality, QualityConfig, QualityPlane};
use crate::report::{BusKey, RouteIdentifier, ScanReport};
use crate::snapshot::{ArrivalEntry, BusView, QueryPlaneConfig, QuerySnapshot, SnapshotCell};
use crate::tracker::{crossing_time, segment_traversals, BusTracker, IngestOutcome};
use crate::traffic_map::{SegmentState, TrafficMapConfig, TrafficMapGenerator};

/// Errors returned by the server API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The route id is not served by this deployment.
    UnknownRoute(RouteId),
    /// The bus key has not been registered.
    UnknownBus(BusKey),
    /// The stop id does not exist on the route.
    UnknownStop(StopId),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownRoute(r) => write!(f, "unknown route {r}"),
            CoreError::UnknownBus(b) => write!(f, "unknown bus {b}"),
            CoreError::UnknownStop(s) => write!(f, "unknown stop {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Outcome of ingesting one report: `Ok(Some(fix))` when the scan
/// anchored a position, `Ok(None)` when it was absorbed without one.
pub type IngestResult = Result<Option<Fix>, CoreError>;

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WiLocatorConfig {
    /// SVD construction parameters.
    pub svd: SvdConfig,
    /// Positioner parameters.
    pub positioner: PositionerConfig,
    /// Predictor parameters.
    pub predictor: PredictorConfig,
    /// Traffic-map parameters.
    pub traffic: TrafficMapConfig,
    /// Route sampling step for the tile index, metres.
    pub sample_step_m: f64,
    /// A traversal is committed to the store once the bus is this far past
    /// the segment end, metres (stabilises the crossing interpolation).
    pub commit_margin_m: f64,
    /// Tracing / flight-recorder parameters.
    pub trace: TraceConfig,
    /// Query-plane (epoch-published snapshot) parameters.
    pub query: QueryPlaneConfig,
    /// Quality-plane (retro-prediction ledger, drift detectors)
    /// parameters.
    pub quality: QualityConfig,
}

impl Default for WiLocatorConfig {
    fn default() -> Self {
        WiLocatorConfig {
            svd: SvdConfig::default(),
            positioner: PositionerConfig::default(),
            predictor: PredictorConfig::default(),
            traffic: TrafficMapConfig::default(),
            sample_step_m: 2.0,
            commit_margin_m: 30.0,
            trace: TraceConfig::default(),
            query: QueryPlaneConfig::default(),
            quality: QualityConfig::default(),
        }
    }
}

#[derive(Debug)]
struct BusState {
    route: RouteId,
    tracker: BusTracker,
    committed_upto: usize,
    /// Churn set and confirmation floor, reached by the quality plane's
    /// ingest hook without a hash probe (this state rides the bus entry
    /// the hot path already fetched).
    quality: BusQuality,
}

impl BusState {
    /// Commits the segment traversals the latest fix has safely cleared,
    /// scanning only segments past `committed_upto`. The crossing
    /// interpolation uses the first straddling fix pair, which later
    /// fixes never displace, so committing eagerly here produces the same
    /// records as re-deriving the full trip at finish time.
    fn drain_cleared(&mut self, commit_margin_m: f64) -> Vec<(EdgeId, Traversal)> {
        let mut out = Vec::new();
        let mut new_upto = self.committed_upto;
        {
            let route = self.tracker.route();
            let fixes = self.tracker.trajectory().fixes();
            let Some(fix) = fixes.last() else {
                return out;
            };
            let mut i = self.committed_upto;
            while i < route.edges().len() {
                if route.edge_end_s(i) + commit_margin_m > fix.s {
                    break;
                }
                if let (Some(t_enter), Some(t_exit)) = (
                    crossing_time(fixes, route.edge_start_s(i)),
                    crossing_time(fixes, route.edge_end_s(i)),
                ) {
                    if t_exit > t_enter {
                        out.push((
                            route.edges()[i],
                            Traversal {
                                route: self.route,
                                t_enter,
                                t_exit,
                            },
                        ));
                        new_upto = i + 1;
                    }
                }
                i += 1;
            }
        }
        self.committed_upto = new_upto;
        out
    }
}

/// Everything one group of edge-sharing routes owns: trackers of the
/// buses on those routes, the travel-time records of their segments, a
/// predictor trained on those records, and the traffic-map state.
#[derive(Debug)]
struct Shard {
    buses: HashMap<BusKey, BusState>,
    store: TravelTimeStore,
    predictor: ArrivalPredictor,
    traffic: TrafficMapGenerator,
    /// Scratch for the quality hook's current-scan AP set, so the
    /// steady-state ingest path never allocates for churn accounting.
    quality_scratch: Vec<wilocator_rf::ApId>,
}

/// Groups routes into connected components over shared segments.
/// Returns `(shard index per route position, shard count)`.
fn shard_partition(routes: &[Route]) -> (Vec<usize>, usize) {
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let n = routes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut owner: HashMap<EdgeId, usize> = HashMap::new();
    for (i, route) in routes.iter().enumerate() {
        for &edge in route.edges() {
            match owner.get(&edge) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
                None => {
                    owner.insert(edge, i);
                }
            }
        }
    }
    // Densify component roots into shard ids, in route order.
    let mut shard_of_root: HashMap<usize, usize> = HashMap::new();
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        let root = find(&mut parent, i);
        let next = shard_of_root.len();
        let id = *shard_of_root.entry(root).or_insert(next);
        shards.push(id);
    }
    let count = shard_of_root.len();
    (shards, count)
}

/// Enters a lock even when a previous holder panicked.
///
/// Shard and directory state are plain data with no multi-step invariant
/// spanning an unlock, so the state behind a poisoned lock is still
/// consistent; recovering the guard keeps one panicked request from
/// turning into a permanently poisoned server. The serving path itself is
/// panic-free (enforced by wilocator-lint W002), so in practice this
/// recovery never fires.
fn unpoisoned<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Detail-sampling key for a report's trace: derived from content (bus
/// and report time), never from wall time or arrival order, so replays
/// sample the same reports at any thread count.
fn trace_key(report: &ScanReport) -> u64 {
    report.bus.0 ^ report.time_s.to_bits().rotate_left(17)
}

/// The WiLocator server.
///
/// # Examples
///
/// See the crate-level example and `examples/quickstart.rs`.
#[derive(Debug)]
pub struct WiLocator {
    config: WiLocatorConfig,
    routes: Vec<Route>,
    positioners: HashMap<RouteId, RoutePositioner>,
    identifier: RouteIdentifier,
    /// Read-mostly: built once, never mutated after construction.
    shard_of_route: HashMap<RouteId, usize>,
    shards: Vec<RwLock<Shard>>,
    /// Bus → shard directory. Written on (de)registration, read on every
    /// upload. Always acquired *before* any shard lock.
    bus_dir: RwLock<HashMap<BusKey, usize>>,
    /// Cached hardware parallelism; on single-core hosts `ingest_batch`
    /// skips thread spawning entirely.
    parallelism: usize,
    /// Per-shard ingest ledgers, parallel to `shards` but *outside* the
    /// locks: recording (including the lock-hold histogram) never needs
    /// the shard lock.
    shard_metrics: Vec<Arc<ShardMetrics>>,
    /// Cross-shard transport accounting.
    server_metrics: Arc<ServerMetrics>,
    /// Flight recorder: per-shard trace rings plus the tail-sampled
    /// retention buffer ([`wilocator_obs::Tracer`]). Shared with nothing
    /// but the registry; recording never takes a shard lock.
    tracer: Arc<Tracer>,
    /// The epoch-published query snapshot cell: readers answer rider
    /// queries from here without ever touching a shard lock.
    snapshot: SnapshotCell,
    /// Query-plane accounting (endpoint counts, publication progress,
    /// staleness); shared with the serving front end.
    query_metrics: Arc<QueryMetrics>,
    /// Quality observability plane: per-shard retro-prediction ledgers
    /// beside (never inside) the shard locks, evaluated on the publish
    /// path into the snapshot's quality sections.
    quality: QualityPlane,
    /// Every ledger (server, shards, predictors, route positioners),
    /// labelled; [`WiLocator::metrics`] gathers it into one snapshot.
    registry: Registry,
}

impl WiLocator {
    /// Builds the server: constructs the route tile indexes from the
    /// geo-tag field (the SVD construction step of Fig. 4), registers
    /// route names for announcement-based identification, and groups
    /// routes into shards by shared segments.
    pub fn new<F: SignalField + ?Sized>(
        field: &F,
        routes: Vec<Route>,
        config: WiLocatorConfig,
    ) -> Self {
        Self::new_with_clock(field, routes, config, Arc::new(MonotonicClock::new()))
    }

    /// [`WiLocator::new`] with an explicit span clock. Deterministic
    /// replay harnesses pass a [`wilocator_obs::SteppingClock`] so span
    /// durations — and therefore slow-path tail sampling — reproduce
    /// byte-identically; production callers use the monotonic default.
    pub fn new_with_clock<F: SignalField + ?Sized>(
        field: &F,
        routes: Vec<Route>,
        config: WiLocatorConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::new_with_clocks(
            field,
            routes,
            config,
            clock,
            Arc::new(MonotonicClock::new()),
        )
    }

    /// [`WiLocator::new_with_clock`] with a separate query-plane clock.
    ///
    /// The span clock is consumed one reading per span; snapshot
    /// publication must not read from it, or publish cadence would shift
    /// every later span stamp and break deterministic trace goldens. So
    /// staleness and query latency run on their own clock — wall time by
    /// default, a stepping clock in staleness-bound tests.
    pub fn new_with_clocks<F: SignalField + ?Sized>(
        field: &F,
        routes: Vec<Route>,
        config: WiLocatorConfig,
        clock: Arc<dyn Clock>,
        query_clock: Arc<dyn Clock>,
    ) -> Self {
        let registry = Registry::new();
        let mut positioners = HashMap::new();
        let mut identifier = RouteIdentifier::new();
        for route in &routes {
            let index = RouteTileIndex::build(field, route, config.svd, config.sample_step_m);
            let pos_metrics = PositioningMetrics::shared();
            registry.register(
                format!("route=\"{}\"", route.id().0),
                pos_metrics.clone() as Arc<dyn wilocator_obs::Collect>,
            );
            positioners.insert(
                route.id(),
                RoutePositioner::new(route.clone(), index, config.positioner)
                    .with_metrics(pos_metrics),
            );
            identifier.register(route.id(), route.name());
        }
        let (assignment, count) = shard_partition(&routes);
        let shard_of_route: HashMap<RouteId, usize> = routes
            .iter()
            .zip(&assignment)
            .map(|(r, &s)| (r.id(), s))
            .collect();
        let mut shard_metrics = Vec::with_capacity(count.max(1));
        let shards = (0..count.max(1))
            .map(|i| {
                let label = format!("shard=\"{i}\"");
                let metrics = ShardMetrics::shared();
                registry.register(
                    label.clone(),
                    metrics.clone() as Arc<dyn wilocator_obs::Collect>,
                );
                shard_metrics.push(metrics);
                let predictor = ArrivalPredictor::new(config.predictor);
                registry.register(
                    label,
                    predictor.metrics().clone() as Arc<dyn wilocator_obs::Collect>,
                );
                RwLock::new(Shard {
                    buses: HashMap::new(),
                    store: TravelTimeStore::new(),
                    predictor,
                    traffic: TrafficMapGenerator::new(config.traffic),
                    quality_scratch: Vec::new(),
                })
            })
            .collect();
        let server_metrics = ServerMetrics::shared();
        registry.register(
            "",
            server_metrics.clone() as Arc<dyn wilocator_obs::Collect>,
        );
        let tracer = Arc::new(Tracer::new(config.trace, count.max(1), clock));
        registry.register("", tracer.clone() as Arc<dyn wilocator_obs::Collect>);
        let quality = QualityPlane::new(count.max(1), config.quality, query_clock.clone());
        registry.register(
            "",
            quality.metrics().clone() as Arc<dyn wilocator_obs::Collect>,
        );
        let query_metrics = QueryMetrics::new(query_clock);
        registry.register("", query_metrics.clone() as Arc<dyn wilocator_obs::Collect>);
        WiLocator {
            config,
            routes,
            positioners,
            identifier,
            shard_of_route,
            shards,
            bus_dir: RwLock::new(HashMap::new()),
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shard_metrics,
            server_metrics,
            tracer,
            snapshot: SnapshotCell::new(config.query.slots),
            query_metrics,
            quality,
            registry,
        }
    }

    /// The served routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Route lookup.
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.iter().find(|r| r.id() == id)
    }

    /// Number of shards (connected components of edge-sharing routes).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for_route(&self, route: RouteId) -> Result<usize, CoreError> {
        self.shard_of_route
            .get(&route)
            .copied()
            .ok_or(CoreError::UnknownRoute(route))
    }

    fn shard_for_bus(&self, bus: BusKey) -> Result<usize, CoreError> {
        unpoisoned(self.bus_dir.read())
            .get(&bus)
            .copied()
            .ok_or(CoreError::UnknownBus(bus))
    }

    /// Registers a bus on a route (driver text input path of §V-A.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn register_bus(&self, bus: BusKey, route: RouteId) -> Result<(), CoreError> {
        let positioner = self
            .positioners
            .get(&route)
            .ok_or(CoreError::UnknownRoute(route))?;
        let shard_idx = self.shard_for_route(route)?;
        let mut dir = unpoisoned(self.bus_dir.write());
        // Re-registration moves the bus: clear any previous tracker first
        // (one shard lock at a time, directory lock held throughout).
        let previous = dir.insert(bus, shard_idx);
        if let Some(old) = previous {
            if old != shard_idx {
                unpoisoned(self.shards[old].write()).buses.remove(&bus);
            }
        }
        self.server_metrics.buses_registered_total.inc();
        if previous.is_none() {
            self.server_metrics.active_buses.inc();
        }
        unpoisoned(self.shards[shard_idx].write()).buses.insert(
            bus,
            BusState {
                route,
                tracker: BusTracker::new(positioner.clone()),
                committed_upto: 0,
                quality: BusQuality::default(),
            },
        );
        Ok(())
    }

    /// Registers a bus from an announcement transcript (voice path of
    /// §V-A.1). Returns the identified route.
    pub fn register_bus_by_announcement(&self, bus: BusKey, transcript: &str) -> Option<RouteId> {
        let route = self.identifier.identify(transcript)?;
        self.register_bus(bus, route).ok()?;
        Some(route)
    }

    /// One report against an already-locked shard: track, then commit the
    /// traversals the new fix has cleared. `metrics` is the shard's
    /// ledger; the outcome of every report lands in exactly one of its
    /// stale/absorbed/fix counters. On a fix, the quality plane folds AP
    /// churn and settles pending retro-predictions (its per-shard mutex
    /// nests inside this shard's write lock — the documented order).
    // lint: hot_path(deny: blocks_or_syscalls, unbounded_iteration)
    fn ingest_locked(
        shard: &mut Shard,
        metrics: &ShardMetrics,
        quality: &QualityPlane,
        shard_idx: usize,
        report: &ScanReport,
        commit_margin_m: f64,
        trace: Option<&TraceCtx<'_>>,
    ) -> Result<Option<Fix>, CoreError> {
        let bus = shard
            .buses
            .get_mut(&report.bus)
            .ok_or(CoreError::UnknownBus(report.bus))?;
        metrics.reports_total.inc();
        let outcome = bus.tracker.ingest_classified_traced(report, trace);
        if let Some(t) = trace {
            t.field("route", bus.route.0);
            t.field("outcome", outcome.label());
        }
        match outcome {
            IngestOutcome::Stale => {
                metrics.reports_stale_total.inc();
                Ok(None)
            }
            IngestOutcome::NoFix => {
                metrics.reports_absorbed_total.inc();
                Ok(None)
            }
            IngestOutcome::Fix(fix) => {
                metrics.fixes_total.inc();
                if let Some(t) = trace.filter(|_| fix.method == FixMethod::DeadReckoned) {
                    t.flag_anomaly("dead_reckoned");
                }
                if let Some(t) = trace.filter(|_| fix.method == FixMethod::NearestSignature) {
                    // The direct tile lookup missed and positioning fell
                    // back to the global nearest-signature search — the
                    // per-fix evidence behind the tile-miss drift detector.
                    t.flag_anomaly("tile_mapping_miss");
                }
                let span = trace.map(|t| t.child_span("commit"));
                let mut committed = 0u64;
                for (edge, tr) in bus.drain_cleared(commit_margin_m) {
                    shard.store.record(edge, tr);
                    committed += 1;
                }
                metrics.traversals_committed_total.add(committed);
                if let Some(sp) = &span {
                    sp.field("traversals", committed);
                }
                if let Some(state) = shard.buses.get_mut(&report.bus) {
                    quality.on_fix(
                        shard_idx,
                        report,
                        &fix,
                        state.tracker.trajectory().fixes(),
                        &mut state.quality,
                        &mut shard.quality_scratch,
                        trace,
                    );
                }
                Ok(Some(fix))
            }
        }
    }

    /// Ingests one scan report, returning the new position fix.
    ///
    /// Newly completed segment traversals (the bus has moved
    /// `commit_margin_m` past a segment end) are committed to the
    /// travel-time store, feeding prediction and the traffic map.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] for unregistered buses.
    pub fn ingest(&self, report: &ScanReport) -> Result<Option<Fix>, CoreError> {
        self.server_metrics.ingest_total.inc();
        let result = match self.shard_for_bus(report.bus) {
            Ok(shard_idx) => {
                let metrics = &self.shard_metrics[shard_idx];
                let poisoned = self.shards[shard_idx].is_poisoned();
                let mut shard = unpoisoned(self.shards[shard_idx].write());
                // The hold stamps double as the root span's stamps, so
                // tracing a report costs no extra clock reads.
                let clock = self.tracer.clock();
                let start_us = clock.now_us();
                let trace = self.tracer.start_root_span_keyed(
                    shard_idx,
                    "ingest",
                    start_us,
                    trace_key(report),
                );
                if let Some(t) = &trace {
                    t.field("bus", report.bus.0);
                    if poisoned {
                        t.flag_anomaly("lock_poison_recovered");
                    }
                }
                let outcome = Self::ingest_locked(
                    &mut shard,
                    metrics,
                    &self.quality,
                    shard_idx,
                    report,
                    self.config.commit_margin_m,
                    trace.as_ref(),
                );
                let end_us = clock.now_us();
                if let Some(t) = trace {
                    t.finish_at(end_us);
                }
                metrics.lock_hold_us.record(end_us.saturating_sub(start_us));
                outcome
            }
            Err(e) => {
                // Rejected at the directory: record an anomaly-flagged root
                // span (shard 0 hosts directory-level traces) so unknown
                // buses show up in the flight recorder.
                let trace = self.tracer.start_root_span(0, "ingest");
                if let Some(t) = &trace {
                    t.field("bus", report.bus.0);
                    t.flag_anomaly("unknown_bus");
                }
                Err(e)
            }
        };
        if result.is_err() {
            self.server_metrics.unknown_bus_total.inc();
        }
        result
    }

    /// Ingests a batch of scan reports, returning one result per report in
    /// input order.
    ///
    /// Reports are grouped by shard; each shard's group is processed under
    /// a single lock acquisition, and independent shards are processed on
    /// scoped threads (on hosts with more than one core — single-core
    /// hosts process shards in turn, still under one lock acquisition
    /// each). Relative order of reports for the same bus is
    /// preserved, so a batch produces exactly the per-bus fix sequences
    /// and store contents that the same reports would produce through
    /// [`WiLocator::ingest`] one at a time.
    // lint: hot_path(deny: blocks_or_syscalls, unbounded_iteration)
    pub fn ingest_batch(&self, reports: &[ScanReport]) -> Vec<IngestResult> {
        self.server_metrics.ingest_batches_total.inc();
        self.server_metrics
            .ingest_batch_reports_total
            .add(reports.len() as u64);
        self.server_metrics.batch_size.record(reports.len() as u64);
        let mut results: Vec<IngestResult> = vec![Ok(None); reports.len()];
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        {
            let dir = unpoisoned(self.bus_dir.read());
            for (i, report) in reports.iter().enumerate() {
                match dir.get(&report.bus) {
                    Some(&s) => groups[s].push(i),
                    None => {
                        let trace = self.tracer.start_root_span(0, "ingest");
                        if let Some(t) = &trace {
                            t.field("bus", report.bus.0);
                            t.flag_anomaly("unknown_bus");
                        }
                        results[i] = Err(CoreError::UnknownBus(report.bus));
                    }
                }
            }
        }
        let margin = self.config.commit_margin_m;
        let busy: Vec<usize> = (0..groups.len())
            .filter(|&s| !groups[s].is_empty())
            .collect();
        if busy.len() <= 1 || self.parallelism <= 1 {
            // One shard (or a single-core host): threads can't help, but a
            // batch still amortises one lock acquisition per busy shard.
            for &s in &busy {
                let metrics = &self.shard_metrics[s];
                let poisoned = self.shards[s].is_poisoned();
                let mut shard = unpoisoned(self.shards[s].write());
                // One clock read per report: each report's end stamp is
                // the next one's start, and the pair bounding the group
                // doubles as the lock-hold measurement.
                let clock = self.tracer.clock();
                let hold_start = clock.now_us();
                let mut prev = hold_start;
                for &i in &groups[s] {
                    let trace = self.tracer.start_root_span_keyed(
                        s,
                        "ingest",
                        prev,
                        trace_key(&reports[i]),
                    );
                    if let Some(t) = &trace {
                        t.field("bus", reports[i].bus.0);
                        if poisoned {
                            t.flag_anomaly("lock_poison_recovered");
                        }
                    }
                    results[i] = Self::ingest_locked(
                        &mut shard,
                        metrics,
                        &self.quality,
                        s,
                        &reports[i],
                        margin,
                        trace.as_ref(),
                    );
                    let now = clock.now_us();
                    if let Some(t) = trace {
                        t.finish_at(now);
                    }
                    prev = now;
                }
                metrics.lock_hold_us.record(prev.saturating_sub(hold_start));
            }
            self.count_batch_errors(&results);
            self.publish_after_batch(reports);
            return results;
        }
        let per_shard: Vec<(usize, Vec<IngestResult>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = busy
                .iter()
                .map(|&s| {
                    let indices = &groups[s];
                    let lock = &self.shards[s];
                    let metrics = &self.shard_metrics[s];
                    let tracer = &self.tracer;
                    let quality = &self.quality;
                    scope.spawn(move || {
                        let poisoned = lock.is_poisoned();
                        let mut shard = unpoisoned(lock.write());
                        let clock = tracer.clock();
                        let hold_start = clock.now_us();
                        let mut prev = hold_start;
                        let local = indices
                            .iter()
                            .map(|&i| {
                                let trace = tracer.start_root_span_keyed(
                                    s,
                                    "ingest",
                                    prev,
                                    trace_key(&reports[i]),
                                );
                                if let Some(t) = &trace {
                                    t.field("bus", reports[i].bus.0);
                                    if poisoned {
                                        t.flag_anomaly("lock_poison_recovered");
                                    }
                                }
                                let out = Self::ingest_locked(
                                    &mut shard,
                                    metrics,
                                    quality,
                                    s,
                                    &reports[i],
                                    margin,
                                    trace.as_ref(),
                                );
                                let now = clock.now_us();
                                if let Some(t) = trace {
                                    t.finish_at(now);
                                }
                                prev = now;
                                out
                            })
                            .collect();
                        metrics.lock_hold_us.record(prev.saturating_sub(hold_start));
                        (s, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(hot_path_effects) — joins this batch's own scoped shard workers; bounded by the batch fan-out, no external I/O
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // A panicked shard thread is a bug in ingest itself;
                    // re-raise the original payload rather than masking it
                    // behind a generic message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for (s, local) in per_shard {
            for (&i, r) in groups[s].iter().zip(local) {
                results[i] = r;
            }
        }
        self.count_batch_errors(&results);
        self.publish_after_batch(reports);
        results
    }

    /// Every `Err` in a batch is an unknown-bus rejection (whether caught
    /// at the directory or inside a shard); counted once per report here.
    fn count_batch_errors(&self, results: &[IngestResult]) {
        let errs = results.iter().filter(|r| r.is_err()).count() as u64;
        self.server_metrics.unknown_bus_total.add(errs);
    }

    /// Finishes a bus trip: commits all remaining traversals and removes
    /// the tracker.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] for unregistered buses.
    pub fn finish_bus(&self, bus: BusKey) -> Result<(), CoreError> {
        let shard_idx = {
            let mut dir = unpoisoned(self.bus_dir.write());
            dir.remove(&bus).ok_or(CoreError::UnknownBus(bus))?
        };
        self.server_metrics.active_buses.dec();
        self.server_metrics.buses_finished_total.inc();
        let metrics = &self.shard_metrics[shard_idx];
        let mut shard = unpoisoned(self.shards[shard_idx].write());
        let _hold = metrics.lock_hold_us.time_with(self.tracer.clock());
        let state = shard.buses.remove(&bus).ok_or(CoreError::UnknownBus(bus))?;
        let route = state.tracker.route();
        let fixes = state.tracker.trajectory().fixes();
        let mut committed = 0u64;
        for tr in segment_traversals(route, fixes) {
            if tr.edge_index >= state.committed_upto {
                shard.store.record(
                    route.edges()[tr.edge_index],
                    Traversal {
                        route: state.route,
                        t_enter: tr.t_enter,
                        t_exit: tr.t_exit,
                    },
                );
                committed += 1;
            }
        }
        metrics.traversals_committed_total.add(committed);
        Ok(())
    }

    /// The latest position fix of a bus.
    pub fn position(&self, bus: BusKey) -> Option<Fix> {
        let shard_idx = self.shard_for_bus(bus).ok()?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        shard.buses.get(&bus)?.tracker.trajectory().last().copied()
    }

    /// The tracked trajectory fixes of a bus.
    pub fn trajectory(&self, bus: BusKey) -> Option<Vec<Fix>> {
        let shard_idx = self.shard_for_bus(bus).ok()?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        Some(shard.buses.get(&bus)?.tracker.trajectory().fixes().to_vec())
    }

    /// Offline training (§V-A.3): seasonal index → slot partitions, from
    /// everything recorded before `as_of`. Each shard trains its own
    /// predictor from its own store; training is per-segment, and
    /// segments partition across shards, so this equals training one
    /// global predictor on the merged store.
    pub fn train(&self, as_of: f64) {
        self.server_metrics.train_calls_total.inc();
        for lock in &self.shards {
            let shard = &mut *unpoisoned(lock.write());
            shard.predictor.train(&shard.store, as_of);
        }
        if self.config.query.publish_on_ingest {
            self.publish_snapshot(as_of);
        }
    }

    /// Predicts the absolute arrival time of `bus` at stop `stop` of its
    /// route (Equations 8–9), from its latest fix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownBus`] / [`CoreError::UnknownStop`].
    pub fn predict_arrival(&self, bus: BusKey, stop: StopId) -> Result<f64, CoreError> {
        let shard_idx = self.shard_for_bus(bus)?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        let state = shard.buses.get(&bus).ok_or(CoreError::UnknownBus(bus))?;
        let route = state.tracker.route();
        let stop = route.stop(stop).ok_or(CoreError::UnknownStop(stop))?;
        let fix = state
            .tracker
            .trajectory()
            .last()
            .ok_or(CoreError::UnknownBus(bus))?;
        let trace = self.tracer.start_root_span(shard_idx, "predict_arrival");
        if let Some(t) = &trace {
            t.field("bus", bus.0);
            t.field("stop", stop.id().0);
        }
        Ok(shard.predictor.predict_arrival_traced(
            &shard.store,
            route,
            fix.s,
            fix.time_s,
            stop.s(),
            trace.as_ref(),
        ))
    }

    /// Predicts the arrival time at `stop_s` for a hypothetical bus of
    /// `route` at `current_s` at time `t` (used by the evaluation harness).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn predict_arrival_at(
        &self,
        route: RouteId,
        current_s: f64,
        t: f64,
        stop_s: f64,
    ) -> Result<f64, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let shard_idx = self.shard_for_route(route)?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        Ok(shard
            .predictor
            .predict_arrival(&shard.store, r, current_s, t, stop_s))
    }

    /// Rider-facing query (the paper's third component, the trip-plan
    /// interface): every active bus of `route` that has not yet passed
    /// `stop`, with its predicted arrival time, soonest first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] / [`CoreError::UnknownStop`].
    pub fn arrivals_at(
        &self,
        route: RouteId,
        stop: StopId,
    ) -> Result<Vec<(BusKey, f64)>, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let stop = r.stop(stop).ok_or(CoreError::UnknownStop(stop))?;
        let shard_idx = self.shard_for_route(route)?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        let mut out: Vec<(BusKey, f64)> = shard
            .buses
            // lint: allow(unordered_iter) — collected, then sorted by (arrival time, bus key) before returning
            .iter()
            .filter(|(_, b)| b.route == route)
            .filter_map(|(&key, b)| {
                let fix = b.tracker.trajectory().last()?;
                (fix.s < stop.s()).then(|| {
                    (
                        key,
                        shard.predictor.predict_arrival(
                            &shard.store,
                            r,
                            fix.s,
                            fix.time_s,
                            stop.s(),
                        ),
                    )
                })
            })
            .collect();
        // Arrival-time ties (buses at the same fix) order by bus key, so
        // the rider-facing list replays identically across processes.
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// The live traffic map of a route at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn traffic_map(&self, route: RouteId, t: f64) -> Result<Vec<SegmentState>, CoreError> {
        let r = self.route(route).ok_or(CoreError::UnknownRoute(route))?;
        let shard_idx = self.shard_for_route(route)?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        Ok(shard
            .traffic
            .route_map(&shard.store, &shard.predictor, r, t))
    }

    /// Auto-publication hook: after a batch lands, publish a snapshot
    /// stamped with the newest report time in the batch (the publisher
    /// itself clamps the stamp monotone across racing lanes).
    fn publish_after_batch(&self, reports: &[ScanReport]) {
        if !self.config.query.publish_on_ingest || reports.is_empty() {
            return;
        }
        let mut as_of = f64::NEG_INFINITY;
        for report in reports {
            as_of = as_of.max(report.time_s);
        }
        if as_of.is_finite() {
            self.publish_snapshot(as_of);
        }
    }

    /// Builds and publishes a fresh immutable [`QuerySnapshot`] for
    /// stream time `as_of`, returning the new epoch.
    ///
    /// The builder takes each shard's *read* lock once, computes every
    /// bus view, arrival table and traffic map from that one coherent
    /// pass, and hands the result to the snapshot cell — readers switch
    /// to it atomically and never observe a half-built view. Arrival
    /// integration runs unledgered so continuous publication never
    /// distorts the rider-facing Eq. 8/9 accounting, and nothing here
    /// emits trace spans, so deterministic replay goldens are unaffected
    /// by publish cadence.
    pub fn publish_snapshot(&self, as_of: f64) -> u64 {
        let epoch = self.snapshot.publish_with(|epoch, prev| {
            // Stream time never runs backwards across racing publishers.
            self.build_snapshot(epoch, as_of.max(prev.published_at_s))
        });
        self.query_metrics.mark_published(epoch);
        epoch
    }

    /// The latest published query snapshot. Never touches a shard lock
    /// or the publish gate: one atomic load, one uncontended slot read
    /// lock, one `Arc` clone.
    pub fn query_snapshot(&self) -> Arc<QuerySnapshot> {
        self.snapshot.read()
    }

    /// The epoch of the latest published snapshot (0 before the first).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Long-poll primitive: blocks until the published epoch exceeds
    /// `epoch` or `timeout` elapses, returning the epoch current at that
    /// point. Waiters park outside both the publish gate and the read
    /// path ([`SnapshotCell::wait_past_epoch`]).
    pub fn wait_past_epoch(&self, epoch: u64, timeout: std::time::Duration) -> u64 {
        self.snapshot.wait_past_epoch(epoch, timeout)
    }

    /// The query-plane accounting ledger (shared with the front end).
    pub fn query_metrics(&self) -> &Arc<QueryMetrics> {
        &self.query_metrics
    }

    /// The query-plane configuration this server was built with.
    pub fn query_config(&self) -> QueryPlaneConfig {
        self.config.query
    }

    /// Maintenance hook: runs `f` while holding `shard`'s *write* lock,
    /// returning `None` for an out-of-range shard index. Exists so tests
    /// can prove the read path's independence from ingest: queries issued
    /// from inside `f` must still complete, because snapshot reads never
    /// acquire a shard lock.
    pub fn quiesce_shard<T>(&self, shard: usize, f: impl FnOnce() -> T) -> Option<T> {
        let lock = self.shards.get(shard)?;
        let _guard = unpoisoned(lock.write());
        Some(f())
    }

    /// One coherent pass over the shards: every section of the snapshot
    /// is computed from the same locked view of each shard.
    fn build_snapshot(&self, epoch: u64, as_of: f64) -> QuerySnapshot {
        let mut snap = QuerySnapshot::stamped(epoch, as_of);
        for (idx, lock) in self.shards.iter().enumerate() {
            let shard = unpoisoned(lock.read());
            // lint: allow(unordered_iter) — lands in the snapshot's BTreeMap, which orders the published view by bus key
            for (&key, state) in &shard.buses {
                if let Some(&fix) = state.tracker.trajectory().last() {
                    snap.buses.insert(
                        key,
                        BusView {
                            route: state.route,
                            fix,
                        },
                    );
                }
            }
            for route in &self.routes {
                if self.shard_of_route.get(&route.id()) != Some(&idx) {
                    continue;
                }
                for stop in route.stops() {
                    let mut entries: Vec<ArrivalEntry> = snap
                        .buses
                        // lint: allow(unordered_iter) — snapshot buses are a BTreeMap, and the entries are sorted below regardless
                        .iter()
                        .filter(|(_, view)| view.route == route.id() && view.fix.s < stop.s())
                        .map(|(&bus, view)| ArrivalEntry {
                            bus,
                            eta_s: shard.predictor.predict_arrival_unledgered(
                                &shard.store,
                                route,
                                view.fix.s,
                                view.fix.time_s,
                                stop.s(),
                            ),
                            from_fix_time_s: view.fix.time_s,
                        })
                        .collect();
                    entries.sort_by(|a, b| {
                        a.eta_s.total_cmp(&b.eta_s).then_with(|| a.bus.cmp(&b.bus))
                    });
                    // Record the published ETAs whose lead time entered a
                    // horizon into the retro-prediction ledger (quality
                    // mutex nests inside this shard read lock), pulling
                    // each recipient bus's confirmation floor down to
                    // this stop so its ingest hook knows work is due.
                    self.quality.issue(
                        idx,
                        route.id(),
                        stop.id(),
                        stop.s(),
                        as_of,
                        &entries,
                        |bus, floor_s| {
                            if let Some(state) = shard.buses.get(&bus) {
                                state.quality.floor_min(floor_s);
                            }
                        },
                    );
                    snap.arrivals.insert((route.id(), stop.id()), entries);
                }
                snap.traffic.insert(
                    route.id(),
                    shard
                        .traffic
                        .route_map(&shard.store, &shard.predictor, route, as_of),
                );
            }
        }
        // Evaluate (or reuse, inside the sampling gap) the quality
        // sections after every shard lock is released: the evaluation
        // pass gathers the whole registry and must not extend any shard
        // critical section.
        snap.quality = self.quality.sections(
            as_of,
            || self.registry.gather(),
            self.query_metrics.staleness_s(),
            || self.tracer.retained(),
        );
        snap
    }

    /// The quality observability plane (ledger sizes, configuration).
    pub fn quality_plane(&self) -> &QualityPlane {
        &self.quality
    }

    /// Read access to a merged snapshot of the travel-time records across
    /// all shards (evaluation hooks). Shard locks are taken one at a time
    /// while the snapshot is assembled.
    pub fn with_store<T>(&self, f: impl FnOnce(&TravelTimeStore) -> T) -> T {
        let mut merged = TravelTimeStore::new();
        for lock in &self.shards {
            merged.merge_from(&unpoisoned(lock.read()).store);
        }
        f(&merged)
    }

    /// Read access to the trained predictor of a route's shard
    /// (evaluation hooks).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRoute`] for unserved routes.
    pub fn with_predictor<T>(
        &self,
        route: RouteId,
        f: impl FnOnce(&ArrivalPredictor) -> T,
    ) -> Result<T, CoreError> {
        let shard_idx = self.shard_for_route(route)?;
        let shard = unpoisoned(self.shards[shard_idx].read());
        Ok(f(&shard.predictor))
    }

    /// The positioner of a route (evaluation hooks).
    pub fn positioner(&self, route: RouteId) -> Option<&RoutePositioner> {
        self.positioners.get(&route)
    }

    /// A point-in-time snapshot of every metric the server exposes:
    /// server-wide transport counters, per-shard ingest ledgers (labelled
    /// `shard="i"`), per-shard predictor accounting, and per-route
    /// positioning accounting (labelled `route="<id>"`). Recording is
    /// lock-free; gathering reads the atomics without touching any shard
    /// lock, so this is safe to call from a scrape loop while ingestion
    /// runs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.gather()
    }

    /// The snapshot in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics().prometheus_text()
    }

    /// The flight recorder behind this server's spans.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Per-bus timeline query: every trace still held by the flight
    /// recorder (ring buffers plus the tail-sampled retention set) whose
    /// root span carries `bus` as its `bus` field, ordered by trace id
    /// (admission order).
    pub fn timeline(&self, bus: BusKey) -> Vec<TraceData> {
        self.tracer.timeline_for("bus", bus.0)
    }

    /// Everything the flight recorder currently holds as Chrome
    /// trace-event JSON — load it at `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn trace_chrome_json(&self) -> String {
        self.tracer.chrome_trace_json()
    }

    /// Everything the flight recorder currently holds in the deterministic
    /// text form used by golden tests.
    pub fn trace_text_dump(&self) -> String {
        self.tracer.text_dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilocator_geo::Point;
    use wilocator_obs::FieldValue;
    use wilocator_rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan};
    use wilocator_road::NetworkBuilder;

    pub(crate) fn setup() -> (WiLocator, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(800.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let net = b.build();
        let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net).unwrap();
        route.add_stops_evenly(3);
        let mut aps = Vec::new();
        let mut x = 40.0;
        let mut i = 0u32;
        while x < 800.0 {
            aps.push(AccessPoint::new(
                ApId(i),
                Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
            ));
            i += 1;
            x += 80.0;
        }
        let field = HomogeneousField::new(aps);
        let server = WiLocator::new(&field, vec![route], WiLocatorConfig::default());
        (server, field)
    }

    pub(crate) fn report(
        field: &HomogeneousField,
        route: &Route,
        s: f64,
        t: f64,
        bus: u64,
    ) -> ScanReport {
        let p = route.point_at(s);
        let readings: Vec<Reading> = field
            .detectable_at(p, -90.0)
            .into_iter()
            .map(|(ap, rss)| Reading {
                ap,
                bssid: Bssid::from_ap_id(ap),
                rss_dbm: rss.round() as i32,
            })
            .collect();
        ScanReport {
            bus: BusKey(bus),
            time_s: t,
            scans: vec![Scan::new(t, readings)],
        }
    }

    fn drive(server: &WiLocator, field: &HomogeneousField, bus: u64, t0: f64, speed: f64) {
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(bus), RouteId(0)).unwrap();
        let mut t = t0;
        loop {
            let s = (t - t0) * speed;
            if s > route.length() {
                break;
            }
            server.ingest(&report(field, &route, s, t, bus)).unwrap();
            t += 10.0;
        }
        server.finish_bus(BusKey(bus)).unwrap();
    }

    /// Two disjoint 800 m streets, each carrying one route; a third route
    /// rides the first street's segments. Routes 0 and 2 must share a
    /// shard, route 1 must not.
    fn setup_two_streets() -> (WiLocator, HomogeneousField) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(800.0, 0.0));
        let m0 = b.add_node(Point::new(0.0, 600.0));
        let m1 = b.add_node(Point::new(400.0, 600.0));
        let m2 = b.add_node(Point::new(800.0, 600.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let f0 = b.add_edge(m0, m1, None).unwrap();
        let f1 = b.add_edge(m1, m2, None).unwrap();
        let net = b.build();
        let mut r0 = Route::new(RouteId(0), "9", vec![e0, e1], &net).unwrap();
        let mut r1 = Route::new(RouteId(1), "14", vec![f0, f1], &net).unwrap();
        let mut r2 = Route::new(RouteId(2), "9 express", vec![e0, e1], &net).unwrap();
        r0.add_stops_evenly(3);
        r1.add_stops_evenly(3);
        r2.add_stops_evenly(3);
        let mut aps = Vec::new();
        let mut i = 0u32;
        for y in [0.0, 600.0] {
            let mut x = 40.0;
            while x < 800.0 {
                aps.push(AccessPoint::new(
                    ApId(i),
                    Point::new(x, y + if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
                ));
                i += 1;
                x += 80.0;
            }
        }
        let field = HomogeneousField::new(aps);
        let server = WiLocator::new(&field, vec![r0, r1, r2], WiLocatorConfig::default());
        (server, field)
    }

    #[test]
    fn unknown_route_and_bus_errors() {
        let (server, field) = setup();
        assert_eq!(
            server.register_bus(BusKey(1), RouteId(9)),
            Err(CoreError::UnknownRoute(RouteId(9)))
        );
        let route = server.routes()[0].clone();
        let rep = report(&field, &route, 0.0, 0.0, 2);
        assert_eq!(server.ingest(&rep), Err(CoreError::UnknownBus(BusKey(2))));
        assert_eq!(
            server.finish_bus(BusKey(2)),
            Err(CoreError::UnknownBus(BusKey(2)))
        );
    }

    #[test]
    fn announcement_registration() {
        let (server, _) = setup();
        assert_eq!(
            server.register_bus_by_announcement(BusKey(1), "route 9 bound for Boundary"),
            Some(RouteId(0))
        );
        assert!(server
            .register_bus_by_announcement(BusKey(2), "route 55")
            .is_none());
    }

    #[test]
    fn tracking_produces_positions() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        for k in 0..5 {
            let t = k as f64 * 10.0;
            server
                .ingest(&report(&field, &route, t * 8.0, t, 1))
                .unwrap();
        }
        let fix = server.position(BusKey(1)).expect("tracked");
        assert!((fix.s - 320.0).abs() < 60.0, "fix at {}", fix.s);
        assert_eq!(server.trajectory(BusKey(1)).unwrap().len(), 5);
    }

    #[test]
    fn traversals_committed_to_store() {
        let (server, field) = setup();
        drive(&server, &field, 1, 0.0, 8.0);
        let (records, edges) = server.with_store(|s| (s.len(), s.edge_count()));
        assert_eq!(edges, 2, "both segments recorded");
        assert!(records >= 2);
        // Ground-truth segment time is 400 m / 8 m/s = 50 s.
        server.with_store(|s| {
            for e in s.edges().collect::<Vec<_>>() {
                for tr in s.traversals(e) {
                    // 400 m at 8 m/s = 50 s; the first segment carries
                    // extra startup-extrapolation noise.
                    assert!(
                        (tr.travel_time() - 50.0).abs() < 25.0,
                        "travel time {}",
                        tr.travel_time()
                    );
                }
            }
        });
    }

    #[test]
    fn prediction_after_history() {
        let (server, field) = setup();
        // Five buses build history.
        for b in 0..5 {
            drive(&server, &field, b, b as f64 * 400.0, 8.0);
        }
        server.train(10_000.0);
        // A new bus at the start asks for the final stop's arrival.
        server.register_bus(BusKey(99), RouteId(0)).unwrap();
        let route = server.routes()[0].clone();
        server
            .ingest(&report(&field, &route, 5.0, 3_000.0, 99))
            .unwrap();
        let final_stop = route.stops().last().unwrap().id();
        let eta = server.predict_arrival(BusKey(99), final_stop).unwrap();
        // ~800 m at 8 m/s ≈ 100 s from now.
        let offset = eta - 3_000.0;
        assert!((60.0..200.0).contains(&offset), "eta offset {offset}");
    }

    #[test]
    fn predict_arrival_at_unknown_route_errors() {
        let (server, _) = setup();
        assert!(matches!(
            server.predict_arrival_at(RouteId(7), 0.0, 0.0, 100.0),
            Err(CoreError::UnknownRoute(_))
        ));
    }

    #[test]
    fn traffic_map_has_entry_per_segment() {
        let (server, field) = setup();
        for b in 0..10 {
            drive(&server, &field, b, b as f64 * 400.0, 8.0);
        }
        let map = server.traffic_map(RouteId(0), 5_000.0).unwrap();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn arrivals_at_lists_approaching_buses() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        // Two buses on the road: one at 100 m, one at 600 m.
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        server.register_bus(BusKey(2), RouteId(0)).unwrap();
        server
            .ingest(&report(&field, &route, 100.0, 1_000.0, 1))
            .unwrap();
        server
            .ingest(&report(&field, &route, 600.0, 1_000.0, 2))
            .unwrap();
        // Stop mid-route at s = 400: only bus 1 is still approaching.
        let mid_stop = route.stops()[1].id();
        let arrivals = server.arrivals_at(RouteId(0), mid_stop).unwrap();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].0, BusKey(1));
        assert!(arrivals[0].1 > 1_000.0);
        // Final stop: both approach, bus 2 arrives first.
        let last_stop = route.stops().last().unwrap().id();
        let arrivals = server.arrivals_at(RouteId(0), last_stop).unwrap();
        assert_eq!(arrivals.len(), 2);
        assert_eq!(arrivals[0].0, BusKey(2));
        assert!(arrivals[0].1 <= arrivals[1].1);
        // Unknown stop errors.
        assert!(matches!(
            server.arrivals_at(RouteId(0), StopId(99)),
            Err(CoreError::UnknownStop(_))
        ));
    }

    #[test]
    fn shards_group_routes_by_shared_segments() {
        let (server, _) = setup_two_streets();
        assert_eq!(server.shard_count(), 2);
        let s0 = server.shard_for_route(RouteId(0)).unwrap();
        let s1 = server.shard_for_route(RouteId(1)).unwrap();
        let s2 = server.shard_for_route(RouteId(2)).unwrap();
        assert_eq!(s0, s2, "edge-sharing routes share a shard");
        assert_ne!(s0, s1, "disjoint routes get their own shard");
    }

    #[test]
    fn batch_matches_sequential_ingest() {
        let (batched, field) = setup_two_streets();
        let (sequential, _) = setup_two_streets();
        let routes: Vec<Route> = batched.routes().to_vec();
        let mut reports = Vec::new();
        for (bus, route_idx) in [(1u64, 0usize), (2, 1), (3, 2)] {
            batched
                .register_bus(BusKey(bus), routes[route_idx].id())
                .unwrap();
            sequential
                .register_bus(BusKey(bus), routes[route_idx].id())
                .unwrap();
            for k in 0..20 {
                let t = k as f64 * 10.0;
                let s = (t * 6.0).min(routes[route_idx].length());
                reports.push(report(&field, &routes[route_idx], s, t, bus));
            }
        }
        // Interleave buses within the batch while keeping per-bus order.
        reports.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap());
        let batch_results = batched.ingest_batch(&reports);
        assert!(batch_results.iter().all(|r| r.is_ok()));
        for r in &reports {
            sequential.ingest(r).unwrap();
        }
        for bus in [1u64, 2, 3] {
            assert_eq!(
                batched.trajectory(BusKey(bus)),
                sequential.trajectory(BusKey(bus)),
                "bus {bus} trajectories diverge"
            );
        }
        let (a, b) = (
            batched.with_store(|s| s.len()),
            sequential.with_store(|s| s.len()),
        );
        assert_eq!(a, b, "store record counts diverge");
    }

    #[test]
    fn batch_reports_unknown_bus_in_place() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        let reports = vec![
            report(&field, &route, 0.0, 0.0, 1),
            report(&field, &route, 0.0, 0.0, 77),
            report(&field, &route, 80.0, 10.0, 1),
        ];
        let results = server.ingest_batch(&reports);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(CoreError::UnknownBus(BusKey(77))));
        assert!(results[2].is_ok());
    }

    #[test]
    fn metrics_account_for_every_report() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        drive(&server, &field, 1, 0.0, 8.0);
        // One unknown-bus rejection on top of the driven trip.
        let _ = server.ingest(&report(&field, &route, 0.0, 0.0, 42));
        server.train(10_000.0);
        let snap = server.metrics();
        let reports = snap.counter_family_total("wilocator_reports_total");
        assert!(reports > 0, "reports metered");
        assert_eq!(
            reports,
            snap.counter_family_total("wilocator_fixes_total")
                + snap.counter_family_total("wilocator_reports_absorbed_total")
                + snap.counter_family_total("wilocator_reports_stale_total"),
            "every report lands in exactly one outcome counter"
        );
        assert_eq!(snap.counter("wilocator_unknown_bus_total"), 1);
        assert_eq!(snap.counter("wilocator_buses_registered_total"), 1);
        assert_eq!(snap.counter("wilocator_buses_finished_total"), 1);
        assert_eq!(snap.gauge("wilocator_active_buses"), 0);
        assert_eq!(snap.counter("wilocator_train_calls_total"), 1);
        // The positioner's per-route ledger saw the same locate calls.
        assert_eq!(
            snap.counter_family_total("svd_locate_total"),
            reports,
            "one locate per tracked report"
        );
        // Both segments were committed (eagerly or at finish).
        assert!(snap.counter_family_total("wilocator_traversals_committed_total") >= 2);
        // Training metered one seasonal index per recorded edge.
        assert_eq!(
            snap.counter_family_total("predict_seasonal_indexes_built_total"),
            2
        );
        // Lock-hold spans were recorded under the shard label.
        assert!(
            snap.histogram("wilocator_shard_lock_hold_us{shard=\"0\"}")
                .map(|h| h.count > 0)
                .unwrap_or(false),
            "lock hold histogram populated"
        );
        // Prometheus exposition renders without panicking and names the
        // core families.
        let text = server.metrics_text();
        assert!(text.contains("# TYPE wilocator_reports_total counter"));
        assert!(text.contains("wilocator_shard_lock_hold_us_count"));
    }

    #[test]
    fn batch_metrics_count_reports_not_chunks() {
        let (server, field) = setup();
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        let reports: Vec<ScanReport> = (0..6)
            .map(|k| report(&field, &route, k as f64 * 40.0, k as f64 * 10.0, 1))
            .collect();
        server.ingest_batch(&reports[..2]);
        server.ingest_batch(&reports[2..]);
        let snap = server.metrics();
        assert_eq!(snap.counter("wilocator_ingest_batches_total"), 2);
        assert_eq!(snap.counter("wilocator_ingest_batch_reports_total"), 6);
        assert_eq!(snap.histogram("wilocator_batch_size").unwrap().count, 2);
        assert_eq!(snap.counter_family_total("wilocator_reports_total"), 6);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CoreError::UnknownRoute(RouteId(0)),
            CoreError::UnknownBus(BusKey(0)),
            CoreError::UnknownStop(StopId(0)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// [`setup`] with a stepping clock, so span durations (and the
    /// tail-sampling decisions built on them) are reproducible.
    fn setup_stepping(step_us: u64) -> (WiLocator, HomogeneousField) {
        let (_, field) = setup();
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(400.0, 0.0));
        let n2 = b.add_node(Point::new(800.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let net = b.build();
        let mut route = Route::new(RouteId(0), "9", vec![e0, e1], &net).unwrap();
        route.add_stops_evenly(3);
        let config = WiLocatorConfig {
            trace: TraceConfig::detailed(),
            ..WiLocatorConfig::default()
        };
        let server = WiLocator::new_with_clock(
            &field,
            vec![route],
            config,
            Arc::new(wilocator_obs::SteppingClock::new(0, step_us)),
        );
        (server, field)
    }

    #[test]
    fn ingest_opens_nested_spans_per_report() {
        let (server, field) = setup_stepping(1);
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(7), RouteId(0)).unwrap();
        for k in 0..4 {
            server
                .ingest(&report(&field, &route, k as f64 * 40.0, k as f64 * 10.0, 7))
                .unwrap();
        }
        let recent = server.tracer().recent();
        assert_eq!(recent.len(), 4, "one trace per ingested report");
        for trace in &recent {
            let root = trace.root().expect("root span");
            assert_eq!(root.name, "ingest");
            assert_eq!(root.field("bus"), Some(FieldValue::U64(7)));
            assert!(
                root.field("outcome").is_some(),
                "every ingest root is annotated with its IngestOutcome"
            );
            assert!(
                trace.spans.iter().any(|s| s.name == "track"),
                "tracker child span present"
            );
        }
        // At least one report produced a fix, whose trace then carries the
        // positioning and commit stages.
        let fixed: Vec<_> = recent
            .iter()
            .filter(|t| {
                t.root()
                    .and_then(|r| r.field("outcome"))
                    .is_some_and(|v| matches!(v, FieldValue::Str("fix")))
            })
            .collect();
        assert!(!fixed.is_empty());
        for trace in fixed {
            for stage in ["locate", "commit"] {
                assert!(
                    trace.spans.iter().any(|s| s.name == stage),
                    "fix trace missing `{stage}` span"
                );
            }
        }
    }

    #[test]
    fn unknown_bus_traces_are_retained_as_anomalies() {
        let (server, field) = setup_stepping(1);
        let route = server.routes()[0].clone();
        let rep = report(&field, &route, 0.0, 0.0, 99);
        assert!(server.ingest(&rep).is_err());
        let batch = server.ingest_batch(std::slice::from_ref(&rep));
        assert!(batch[0].is_err());
        let retained = server.tracer().retained();
        assert_eq!(retained.len(), 2, "both rejected ingests retained");
        for trace in &retained {
            assert_eq!(trace.anomaly, Some("unknown_bus"));
            assert_eq!(
                trace.root().and_then(|r| r.field("bus")),
                Some(FieldValue::U64(99))
            );
        }
    }

    #[test]
    fn timeline_filters_traces_by_bus() {
        let (server, field) = setup_stepping(1);
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        server.register_bus(BusKey(2), RouteId(0)).unwrap();
        for k in 0..3 {
            let t = k as f64 * 10.0;
            server.ingest(&report(&field, &route, t, t, 1)).unwrap();
            server.ingest(&report(&field, &route, t, t, 2)).unwrap();
        }
        let line = server.timeline(BusKey(2));
        assert_eq!(line.len(), 3);
        assert!(line
            .windows(2)
            .all(|pair| pair[0].trace_id < pair[1].trace_id));
        assert!(server.timeline(BusKey(3)).is_empty());
    }

    #[test]
    fn predict_arrival_trace_reaches_predictor_span() {
        let (server, field) = setup_stepping(1);
        drive(&server, &field, 1, 0.0, 8.0);
        server.train(1_000_000.0);
        server.register_bus(BusKey(2), RouteId(0)).unwrap();
        let route = server.routes()[0].clone();
        server.ingest(&report(&field, &route, 0.0, 0.0, 2)).unwrap();
        server
            .ingest(&report(&field, &route, 80.0, 10.0, 2))
            .unwrap();
        server.predict_arrival(BusKey(2), StopId(2)).unwrap();
        let trace = server
            .tracer()
            .recent()
            .into_iter()
            .rev()
            .find(|t| t.root().map(|r| r.name) == Some("predict_arrival"))
            .expect("predict_arrival trace recorded");
        let root = trace.root().unwrap();
        assert_eq!(root.field("bus"), Some(FieldValue::U64(2)));
        assert_eq!(root.field("stop"), Some(FieldValue::U64(2)));
        let child = trace
            .spans
            .iter()
            .find(|s| s.name == "predict")
            .expect("predict child span");
        assert!(child.field("segments").is_some());
        assert!(child.field("eta_s").is_some());
    }

    #[test]
    fn chrome_export_and_text_dump_cover_recorded_traces() {
        let (server, field) = setup_stepping(1);
        let route = server.routes()[0].clone();
        server.register_bus(BusKey(1), RouteId(0)).unwrap();
        server.ingest(&report(&field, &route, 0.0, 0.0, 1)).unwrap();
        let json = server.trace_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"ingest\""));
        let text = server.trace_text_dump();
        assert!(text.contains("span 0 parent - ingest"));
    }
}

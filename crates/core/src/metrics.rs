//! Server observability: per-shard ingest accounting, server-wide batch
//! accounting and predictor accounting.
//!
//! All three structs are relaxed-atomic ledgers ([`wilocator_obs`]):
//! recording never locks or allocates, so they sit directly on the
//! ingest hot path. Every counter here counts *events*, which under the
//! server's per-bus replay determinism makes the totals bit-identical
//! across thread counts; the histograms time wall-clock spans and are
//! not (they are excluded from
//! [`wilocator_obs::MetricsSnapshot::deterministic_lines`]).
//!
//! One transport-level exception: `wilocator_ingest_batches_total`
//! counts *calls* to [`crate::WiLocator::ingest_batch`], which depends
//! on how a caller chunks the same report stream — replay-identity
//! tests must exclude it (batch *report* totals stay deterministic).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;

use wilocator_obs::{metric_key, Clock, Collect, Counter, Gauge, Histogram, MetricsSnapshot};

/// Per-shard ingest accounting. Lives *outside* the shard's `RwLock`
/// (in a `Vec<Arc<ShardMetrics>>` parallel to the shard table), so
/// recording — including the lock-hold histogram — never needs the
/// shard lock.
///
/// Invariant at any quiescent point:
/// `reports_total == fixes_total + reports_absorbed_total + reports_stale_total`.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Reports that reached this shard's tracker (known bus).
    pub reports_total: Counter,
    /// Reports dropped as older than the bus's latest fix (network
    /// reordering); the committed trajectory is untouched.
    pub reports_stale_total: Counter,
    /// Reports absorbed without a fix (e.g. acquisition not yet locked).
    pub reports_absorbed_total: Counter,
    /// Position fixes produced.
    pub fixes_total: Counter,
    /// Segment traversals committed to the travel-time store (both the
    /// eager drain on ingest and the tail commit on finish).
    pub traversals_committed_total: Counter,
    /// Microseconds the shard write lock was held per acquisition.
    pub lock_hold_us: Histogram,
}

impl ShardMetrics {
    /// A fresh, shareable ledger.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Collect for ShardMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        out.add_counter(
            metric_key("wilocator_reports_total", labels),
            self.reports_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_reports_stale_total", labels),
            self.reports_stale_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_reports_absorbed_total", labels),
            self.reports_absorbed_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_fixes_total", labels),
            self.fixes_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_traversals_committed_total", labels),
            self.traversals_committed_total.get(),
        );
        out.add_histogram(
            metric_key("wilocator_shard_lock_hold_us", labels),
            self.lock_hold_us.snapshot(),
        );
    }
}

/// Server-wide (cross-shard) accounting: the transport envelope around
/// the per-shard ledgers.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Single-report [`crate::WiLocator::ingest`] calls.
    pub ingest_total: Counter,
    /// [`crate::WiLocator::ingest_batch`] calls. NOT replay-deterministic
    /// across different batch chunkings — see the module docs.
    pub ingest_batches_total: Counter,
    /// Reports submitted through batches (deterministic: every report is
    /// counted once however the stream is chunked).
    pub ingest_batch_reports_total: Counter,
    /// Reports rejected because the bus was not registered.
    pub unknown_bus_total: Counter,
    /// Buses registered (re-registration counts again).
    pub buses_registered_total: Counter,
    /// Buses finished.
    pub buses_finished_total: Counter,
    /// [`crate::WiLocator::train`] calls.
    pub train_calls_total: Counter,
    /// Currently registered buses.
    pub active_buses: Gauge,
    /// Batch sizes (reports per `ingest_batch` call). Excluded from the
    /// deterministic subset along with the batch-call counter.
    pub batch_size: Histogram,
}

impl ServerMetrics {
    /// A fresh, shareable ledger.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Collect for ServerMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        out.add_counter(
            metric_key("wilocator_ingest_total", labels),
            self.ingest_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_ingest_batches_total", labels),
            self.ingest_batches_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_ingest_batch_reports_total", labels),
            self.ingest_batch_reports_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_unknown_bus_total", labels),
            self.unknown_bus_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_buses_registered_total", labels),
            self.buses_registered_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_buses_finished_total", labels),
            self.buses_finished_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_train_calls_total", labels),
            self.train_calls_total.get(),
        );
        out.add_gauge(
            // lint: allow(metric_hygiene) — dimensionless count of live entities
            metric_key("wilocator_active_buses", labels),
            self.active_buses.get(),
        );
        out.add_histogram(
            // lint: allow(metric_hygiene) — dimensionless reports-per-batch count
            metric_key("wilocator_batch_size", labels),
            self.batch_size.snapshot(),
        );
    }
}

/// Counter families that count transport-level *calls* or wall-clock
/// artifacts rather than events, and therefore differ across batch
/// chunkings or timings of the same report stream. Replay-identity and
/// golden comparisons must drop these lines from
/// [`wilocator_obs::MetricsSnapshot::deterministic_lines`]; kept next to
/// the counters so tests and docs can't drift.
///
/// The trace families: slow-path retention and the retention buffer's
/// byte pressure depend on span *durations*, which only a stepping clock
/// makes reproducible — anomaly retention, by contrast, is a pure
/// function of the report stream and stays in the deterministic set.
///
/// The query-plane families: snapshot publication piggybacks on
/// `ingest_batch` calls, so the publish counter and epoch gauge inherit
/// the batch counter's chunking dependence; query counts follow rider
/// load rather than the report stream; and staleness follows the wall
/// clock.
///
/// The quality-plane ETA families: retro-predictions are issued on the
/// publish path, so issuance (and therefore confirmation and eviction)
/// inherits publish cadence's chunking dependence. The quality plane's
/// AP-churn families, by contrast, are recorded per fix and stay in the
/// deterministic set.
pub const NONDETERMINISTIC_COUNTER_FAMILIES: &[&str] = &[
    "wilocator_ingest_batches_total",
    "wilocator_trace_retained_slow_total",
    "wilocator_trace_retention_evicted_total",
    "wilocator_trace_retained_bytes",
    "wilocator_queries_total",
    "wilocator_query_not_found_total",
    "wilocator_query_bad_request_total",
    "wilocator_snapshot_publish_total",
    "wilocator_snapshot_epoch",
    "wilocator_snapshot_staleness_us",
    "wilocator_eta_issued_total",
    "wilocator_eta_confirmed_total",
    "wilocator_eta_ledger_evicted_total",
];

/// Arrival-predictor accounting (Equations 8–9): training coverage and
/// how often the recent-residual borrow actually fires online.
///
/// Owned by [`crate::ArrivalPredictor`] behind an `Arc`, so clones of a
/// predictor (evaluation harnesses clone freely) share one ledger.
#[derive(Debug, Default)]
pub struct PredictorMetrics {
    /// [`crate::ArrivalPredictor::train`] calls.
    pub train_total: Counter,
    /// Seasonal indexes built across all train calls (one per edge).
    pub seasonal_indexes_built_total: Counter,
    /// Base slots that carried data across those indexes.
    pub seasonal_slots_populated_total: Counter,
    /// Slot partitions that split the day (rush-hour structure found).
    pub multi_slot_partitions_total: Counter,
    /// Equation 8 evaluations.
    pub predict_segment_total: Counter,
    /// Recent buses whose residual was borrowed, summed over predictions
    /// (the `K` of Equation 8).
    pub residual_borrow_total: Counter,
    /// Predictions where at least one residual was borrowed.
    pub residual_applied_total: Counter,
    /// Segments predicted by the cruise-speed fallback (no history).
    pub segment_fallback_total: Counter,
    /// Equation 9 arrival integrations.
    pub predict_arrival_total: Counter,
}

impl Collect for PredictorMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        let pairs: [(&str, &Counter); 9] = [
            ("predict_train_total", &self.train_total),
            (
                "predict_seasonal_indexes_built_total",
                &self.seasonal_indexes_built_total,
            ),
            (
                "predict_seasonal_slots_populated_total",
                &self.seasonal_slots_populated_total,
            ),
            (
                "predict_multi_slot_partitions_total",
                &self.multi_slot_partitions_total,
            ),
            ("predict_segment_total", &self.predict_segment_total),
            ("predict_residual_borrow_total", &self.residual_borrow_total),
            (
                "predict_residual_applied_total",
                &self.residual_applied_total,
            ),
            (
                "predict_segment_fallback_total",
                &self.segment_fallback_total,
            ),
            ("predict_arrival_total", &self.predict_arrival_total),
        ];
        for (name, c) in pairs {
            out.add_counter(metric_key(name, labels), c.get());
        }
    }
}

/// The rider-facing endpoints the query plane accounts per-endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryEndpoint {
    /// `GET /arrivals/{stop}`.
    Arrivals,
    /// `GET /position/{bus}`.
    Position,
    /// `GET /traffic/{route}`.
    Traffic,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /debug/timeseries`.
    DebugTimeseries,
    /// `GET /debug/quality`.
    DebugQuality,
    /// `GET /debug/slo`.
    DebugSlo,
    /// `GET /subscribe` (long-poll for the next epoch).
    Subscribe,
}

impl QueryEndpoint {
    /// The `endpoint` label value in the exposition.
    pub fn label(self) -> &'static str {
        match self {
            QueryEndpoint::Arrivals => "arrivals",
            QueryEndpoint::Position => "position",
            QueryEndpoint::Traffic => "traffic",
            QueryEndpoint::Metrics => "metrics",
            QueryEndpoint::Healthz => "healthz",
            QueryEndpoint::DebugTimeseries => "debug_timeseries",
            QueryEndpoint::DebugQuality => "debug_quality",
            QueryEndpoint::DebugSlo => "debug_slo",
            QueryEndpoint::Subscribe => "subscribe",
        }
    }

    /// Every endpoint, in exposition order.
    pub const ALL: [QueryEndpoint; 9] = [
        QueryEndpoint::Arrivals,
        QueryEndpoint::Position,
        QueryEndpoint::Traffic,
        QueryEndpoint::Metrics,
        QueryEndpoint::Healthz,
        QueryEndpoint::DebugTimeseries,
        QueryEndpoint::DebugQuality,
        QueryEndpoint::DebugSlo,
        QueryEndpoint::Subscribe,
    ];
}

/// Query-plane accounting: per-endpoint request counts, request-outcome
/// counters, publication progress and snapshot staleness.
///
/// Lives beside the snapshot cell, *outside* every lock: the read path
/// records with relaxed atomics exactly like the ingest ledgers. The
/// staleness gauge is computed at gather time from the publish stamp and
/// the query-plane clock (deliberately *not* the span clock: publication
/// must not consume span-clock readings, or publish cadence would shift
/// deterministic trace goldens), so a paused publisher shows up as a
/// growing gauge without anyone polling.
#[derive(Debug)]
pub struct QueryMetrics {
    /// `GET /arrivals/{stop}` requests.
    pub arrivals_total: Counter,
    /// `GET /position/{bus}` requests.
    pub position_total: Counter,
    /// `GET /traffic/{route}` requests.
    pub traffic_total: Counter,
    /// `GET /metrics` requests.
    pub metrics_total: Counter,
    /// `GET /healthz` requests.
    pub healthz_total: Counter,
    /// `GET /debug/timeseries` requests.
    pub debug_timeseries_total: Counter,
    /// `GET /debug/quality` requests.
    pub debug_quality_total: Counter,
    /// `GET /debug/slo` requests.
    pub debug_slo_total: Counter,
    /// `GET /subscribe` long-poll requests.
    pub subscribe_total: Counter,
    /// Requests that named an unknown stop, bus or route.
    pub not_found_total: Counter,
    /// Requests rejected before routing (malformed path or method).
    pub bad_request_total: Counter,
    /// Snapshots published.
    pub snapshot_publish_total: Counter,
    /// Epoch of the latest published snapshot.
    pub snapshot_epoch: Gauge,
    /// Microseconds per query, request receipt to response write.
    pub latency_us: Histogram,
    /// Query-clock stamp of the latest publication (0 before the first).
    published_at_us: AtomicU64,
    /// The query-plane clock staleness and latency are measured on.
    clock: Arc<dyn Clock>,
}

impl QueryMetrics {
    /// A fresh ledger on `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(QueryMetrics {
            arrivals_total: Counter::new(),
            position_total: Counter::new(),
            traffic_total: Counter::new(),
            metrics_total: Counter::new(),
            healthz_total: Counter::new(),
            debug_timeseries_total: Counter::new(),
            debug_quality_total: Counter::new(),
            debug_slo_total: Counter::new(),
            subscribe_total: Counter::new(),
            not_found_total: Counter::new(),
            bad_request_total: Counter::new(),
            snapshot_publish_total: Counter::new(),
            snapshot_epoch: Gauge::new(),
            latency_us: Histogram::default(),
            published_at_us: AtomicU64::new(0),
            clock,
        })
    }

    /// The clock staleness and latency are measured on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Counts one request against its endpoint.
    pub fn record_query(&self, endpoint: QueryEndpoint) {
        self.endpoint_counter(endpoint).inc()
    }

    fn endpoint_counter(&self, endpoint: QueryEndpoint) -> &Counter {
        match endpoint {
            QueryEndpoint::Arrivals => &self.arrivals_total,
            QueryEndpoint::Position => &self.position_total,
            QueryEndpoint::Traffic => &self.traffic_total,
            QueryEndpoint::Metrics => &self.metrics_total,
            QueryEndpoint::Healthz => &self.healthz_total,
            QueryEndpoint::DebugTimeseries => &self.debug_timeseries_total,
            QueryEndpoint::DebugQuality => &self.debug_quality_total,
            QueryEndpoint::DebugSlo => &self.debug_slo_total,
            QueryEndpoint::Subscribe => &self.subscribe_total,
        }
    }

    /// Records a publication: bumps the publish counter and epoch gauge
    /// and restamps the staleness base.
    pub fn mark_published(&self, epoch: u64) {
        self.snapshot_publish_total.inc();
        self.snapshot_epoch
            .set(i64::try_from(epoch).unwrap_or(i64::MAX));
        // `.max(1)` keeps a clock that starts at 0 (stepping-clock
        // replays) from colliding with the unpublished sentinel.
        // Ordering: Relaxed — `published_at_us` is a monotone timestamp
        // read in isolation by `staleness_us`; no other memory hangs off
        // it, so only per-location coherence is needed. The tearing
        // bound relaxed metrics tolerate is pinned by
        // `relaxed_metrics_tear_within_documented_bound` in
        // crates/check/tests/model.rs.
        self.published_at_us
            .store(self.clock.now_us().max(1), Ordering::Relaxed);
    }

    /// Microseconds since the latest publication on the shared clock
    /// (0 before the first publish — an empty server is not "stale").
    pub fn staleness_us(&self) -> u64 {
        // Ordering: Relaxed — see `mark_published`; a reader pairing a
        // fresh epoch with a one-publish-stale timestamp only inflates
        // reported staleness by a publish interval, which the metric's
        // consumers tolerate by design.
        let at = self.published_at_us.load(Ordering::Relaxed);
        if at == 0 {
            return 0;
        }
        // lint: allow(read_path_purity) — dyn Clock dispatch defaults to ⊤; every Clock impl is a pure time read, no locks or blocking
        self.clock.now_us().saturating_sub(at)
    }

    /// Staleness in seconds, clamped at zero. The clamp is structural —
    /// [`QueryMetrics::staleness_us`] saturates at the integer layer —
    /// but this method is the audited unit boundary: a skewed or
    /// backwards-stepping clock must surface as `0.0`, never as a
    /// negative age (the regression test drives a decreasing clock
    /// through exactly that path).
    pub fn staleness_s(&self) -> f64 {
        (self.staleness_us() as f64 / 1e6).max(0.0)
    }
}

impl Collect for QueryMetrics {
    fn collect_into(&self, labels: &str, out: &mut MetricsSnapshot) {
        for endpoint in QueryEndpoint::ALL {
            let tag = format!("endpoint=\"{}\"", endpoint.label());
            let merged = if labels.is_empty() {
                tag
            } else {
                format!("{labels},{tag}")
            };
            out.add_counter(
                metric_key("wilocator_queries_total", &merged),
                self.endpoint_counter(endpoint).get(),
            );
        }
        out.add_counter(
            metric_key("wilocator_query_not_found_total", labels),
            self.not_found_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_query_bad_request_total", labels),
            self.bad_request_total.get(),
        );
        out.add_counter(
            metric_key("wilocator_snapshot_publish_total", labels),
            self.snapshot_publish_total.get(),
        );
        out.add_gauge(
            // lint: allow(metric_hygiene) — dimensionless monotone sequence number
            metric_key("wilocator_snapshot_epoch", labels),
            self.snapshot_epoch.get(),
        );
        out.add_gauge(
            metric_key("wilocator_snapshot_staleness_us", labels),
            i64::try_from(self.staleness_us()).unwrap_or(i64::MAX),
        );
        out.add_histogram(
            metric_key("wilocator_query_latency_us", labels),
            self.latency_us.snapshot(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_metrics_collect_under_shard_label() {
        let m = ShardMetrics::default();
        m.reports_total.add(5);
        m.fixes_total.add(3);
        m.reports_absorbed_total.inc();
        m.reports_stale_total.inc();
        m.lock_hold_us.record(12);
        let mut snap = MetricsSnapshot::new();
        m.collect_into("shard=\"2\"", &mut snap);
        assert_eq!(snap.counter("wilocator_reports_total{shard=\"2\"}"), 5);
        assert_eq!(
            snap.counter("wilocator_fixes_total{shard=\"2\"}")
                + snap.counter("wilocator_reports_absorbed_total{shard=\"2\"}")
                + snap.counter("wilocator_reports_stale_total{shard=\"2\"}"),
            snap.counter("wilocator_reports_total{shard=\"2\"}")
        );
        assert_eq!(
            snap.histogram("wilocator_shard_lock_hold_us{shard=\"2\"}")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn server_metrics_collect_everything() {
        let m = ServerMetrics::default();
        m.ingest_batches_total.add(7);
        m.ingest_batch_reports_total.add(100);
        m.active_buses.set(4);
        m.batch_size.record(50);
        let mut snap = MetricsSnapshot::new();
        m.collect_into("", &mut snap);
        assert_eq!(snap.counter("wilocator_ingest_batches_total"), 7);
        assert_eq!(snap.counter("wilocator_ingest_batch_reports_total"), 100);
        assert_eq!(snap.gauge("wilocator_active_buses"), 4);
        assert_eq!(snap.histogram("wilocator_batch_size").unwrap().count, 1);
        // The call counter is listed as chunking-dependent.
        assert!(NONDETERMINISTIC_COUNTER_FAMILIES.contains(&"wilocator_ingest_batches_total"));
    }

    #[test]
    fn query_metrics_collect_per_endpoint_and_compute_staleness() {
        let clock = Arc::new(wilocator_obs::SteppingClock::new(1_000, 100));
        let m = QueryMetrics::new(clock);
        assert_eq!(m.staleness_us(), 0, "unpublished server is not stale");
        m.record_query(QueryEndpoint::Arrivals);
        m.record_query(QueryEndpoint::Arrivals);
        m.record_query(QueryEndpoint::Healthz);
        m.not_found_total.inc();
        m.mark_published(7);
        // One clock read at publish; each staleness read steps once more.
        assert_eq!(m.staleness_us(), 100);
        assert_eq!(m.staleness_us(), 200);
        let mut snap = MetricsSnapshot::new();
        m.collect_into("", &mut snap);
        assert_eq!(
            snap.counter("wilocator_queries_total{endpoint=\"arrivals\"}"),
            2
        );
        assert_eq!(
            snap.counter("wilocator_queries_total{endpoint=\"healthz\"}"),
            1
        );
        assert_eq!(snap.counter_family_total("wilocator_queries_total"), 3);
        assert_eq!(snap.counter("wilocator_query_not_found_total"), 1);
        assert_eq!(snap.counter("wilocator_snapshot_publish_total"), 1);
        assert_eq!(snap.gauge("wilocator_snapshot_epoch"), 7);
        assert_eq!(snap.gauge("wilocator_snapshot_staleness_us"), 300);
        // Every query-plane family is excluded from replay-identity
        // comparisons: publication rides on batch chunking, queries on
        // rider load, staleness on the clock.
        for family in [
            "wilocator_queries_total",
            "wilocator_query_not_found_total",
            "wilocator_query_bad_request_total",
            "wilocator_snapshot_publish_total",
            "wilocator_snapshot_epoch",
            "wilocator_snapshot_staleness_us",
        ] {
            assert!(NONDETERMINISTIC_COUNTER_FAMILIES.contains(&family));
        }
    }

    #[test]
    fn staleness_is_clamped_under_clock_skew() {
        // A clock that steps *backwards*: each read is earlier than the
        // last, the worst case of NTP skew between the publish stamp and
        // the staleness read.
        #[derive(Debug)]
        struct SkewedClock(std::sync::atomic::AtomicU64);
        impl wilocator_obs::Clock for SkewedClock {
            fn now_us(&self) -> u64 {
                self.0.fetch_sub(500, std::sync::atomic::Ordering::Relaxed)
            }
        }
        let m = QueryMetrics::new(Arc::new(SkewedClock(std::sync::atomic::AtomicU64::new(
            10_000,
        ))));
        m.mark_published(1); // stamps at 10_000; later reads are earlier
        assert_eq!(m.staleness_us(), 0, "saturating_sub floors at zero");
        assert_eq!(m.staleness_s(), 0.0, "seconds view never goes negative");
        // A well-behaved stepping clock still measures forward age.
        let clock = Arc::new(wilocator_obs::SteppingClock::new(1_000, 250));
        let m = QueryMetrics::new(clock);
        m.mark_published(1);
        assert_eq!(m.staleness_s(), 0.00025);
    }

    #[test]
    fn predictor_metrics_collect() {
        let m = PredictorMetrics::default();
        m.predict_segment_total.add(4);
        m.residual_borrow_total.add(9);
        m.residual_applied_total.add(3);
        let mut snap = MetricsSnapshot::new();
        m.collect_into("shard=\"0\"", &mut snap);
        assert_eq!(
            snap.counter("predict_residual_borrow_total{shard=\"0\"}"),
            9
        );
        assert_eq!(snap.counter_family_total("predict_segment_total"), 4);
    }
}

//! Seasonal index and time-slot partitioning (Equations 6–7).
//!
//! For each road segment the server computes, per base time slot `l`, the
//! ratio `SI(i, l) = T̄(i,·,·,l) / T̄(i,·,·,·)` of the slot's average travel
//! time to the whole-day average. `SI ≈ 1` everywhere means no periodicity;
//! slots with large SI are rush hours. Consecutive base slots with similar
//! SI are merged into bigger slots "such that each day can be divided into
//! less slots, to increase the sample size" — the prototype ends up with
//! five (§V-B.2).

use wilocator_road::EdgeId;

use crate::history::TravelTimeStore;

/// Seconds in a day (mirrors the simulator's convention).
pub const DAY_S: f64 = 86_400.0;

/// Configuration of the seasonal analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalConfig {
    /// Number of base slots per day (`L`); 24 = hourly, as in the paper's
    /// example ("e.g., each hour is a time slot").
    pub base_slots: usize,
    /// Merge neighbouring slots whose SI differs by less than this.
    pub merge_epsilon: f64,
    /// A slot with SI at or above this is flagged as rush hour.
    pub rush_threshold: f64,
}

impl Default for SeasonalConfig {
    fn default() -> Self {
        SeasonalConfig {
            base_slots: 24,
            merge_epsilon: 0.12,
            rush_threshold: 1.25,
        }
    }
}

/// The per-edge seasonal index over base slots.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalIndex {
    /// `SI(i, l)` per base slot; `None` for slots with no data.
    pub index: Vec<Option<f64>>,
    /// Number of records that contributed.
    pub samples: usize,
}

impl SeasonalIndex {
    /// True when every populated slot is within `epsilon` of 1 — no
    /// periodicity (the paper: "If SI(i, l) = 1 for any l, there is no
    /// periodicity of travel time").
    pub fn is_flat(&self, epsilon: f64) -> bool {
        self.index
            .iter()
            .flatten()
            .all(|&si| (si - 1.0).abs() <= epsilon)
    }

    /// Number of base slots that carried at least one record (the
    /// coverage figure the predictor's training metrics report).
    pub fn populated_slots(&self) -> usize {
        self.index.iter().flatten().count()
    }

    /// Base slots flagged as rush hours under `threshold`.
    pub fn rush_slots(&self, threshold: f64) -> Vec<usize> {
        self.index
            .iter()
            .enumerate()
            .filter_map(|(l, si)| si.filter(|&v| v >= threshold).map(|_| l))
            .collect()
    }
}

/// Computes the seasonal index of `edge` from all traversals completed
/// before `as_of` (Equation 6), averaging across routes and days.
pub fn seasonal_index(
    store: &TravelTimeStore,
    edge: EdgeId,
    as_of: f64,
    config: &SeasonalConfig,
) -> SeasonalIndex {
    let l = config.base_slots.max(1);
    let slot_len = DAY_S / l as f64;
    let mut sums = vec![0.0f64; l];
    let mut counts = vec![0usize; l];
    let mut total = 0.0;
    let mut n = 0usize;
    for tr in store.completed_before(edge, as_of) {
        let tod = tr.t_enter.rem_euclid(DAY_S);
        let slot = ((tod / slot_len) as usize).min(l - 1);
        sums[slot] += tr.travel_time();
        counts[slot] += 1;
        total += tr.travel_time();
        n += 1;
    }
    if n == 0 {
        return SeasonalIndex {
            index: vec![None; l],
            samples: 0,
        };
    }
    let grand_mean = total / n as f64;
    let index = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| (c > 0).then(|| (s / c as f64) / grand_mean))
        .collect();
    SeasonalIndex { index, samples: n }
}

/// A partition of the day into merged slots.
///
/// # Examples
///
/// ```
/// use wilocator_core::SlotPartition;
/// // Boundaries at 08:00 and 10:00 ⇒ three slots.
/// let p = SlotPartition::new(vec![8.0 * 3600.0, 10.0 * 3600.0]);
/// assert_eq!(p.slot_count(), 3);
/// assert_eq!(p.slot_of(9.0 * 3600.0), 1);
/// assert_eq!(p.slot_of(23.0 * 3600.0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPartition {
    /// Interior boundaries, seconds of day, strictly increasing.
    boundaries: Vec<f64>,
}

impl SlotPartition {
    /// Creates a partition from interior boundaries (sorted, deduplicated).
    pub fn new(mut boundaries: Vec<f64>) -> Self {
        boundaries.retain(|b| (0.0..DAY_S).contains(b));
        boundaries.sort_by(|a, b| a.total_cmp(b));
        boundaries.dedup();
        SlotPartition { boundaries }
    }

    /// A single all-day slot.
    pub fn whole_day() -> Self {
        SlotPartition {
            boundaries: Vec::new(),
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The slot containing second-of-day `tod` (absolute times are reduced
    /// modulo one day).
    pub fn slot_of(&self, t: f64) -> usize {
        let tod = t.rem_euclid(DAY_S);
        self.boundaries.iter().take_while(|&&b| b <= tod).count()
    }

    /// The interior boundaries, seconds of day.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The next boundary strictly after absolute time `t`, as an absolute
    /// time (for slot-by-slot arrival computation in Equation 9). Midnight
    /// counts: the slot index resets to 0 at the start of each day.
    pub fn next_boundary_after(&self, t: f64) -> f64 {
        let day = (t / DAY_S).floor();
        let tod = t - day * DAY_S;
        for &b in &self.boundaries {
            if b > tod {
                return day * DAY_S + b;
            }
        }
        (day + 1.0) * DAY_S
    }
}

/// Builds a slot partition from a seasonal index by merging consecutive
/// base slots with similar SI (Equation 7's grouping step).
pub fn partition_from_index(si: &SeasonalIndex, config: &SeasonalConfig) -> SlotPartition {
    let l = si.index.len();
    if l <= 1 || si.samples == 0 {
        return SlotPartition::whole_day();
    }
    let slot_len = DAY_S / l as f64;
    let mut boundaries = Vec::new();
    let mut prev: Option<f64> = None;
    for (i, v) in si.index.iter().enumerate() {
        let cur = v.unwrap_or(1.0);
        if let Some(p) = prev {
            if (cur - p).abs() > config.merge_epsilon {
                boundaries.push(i as f64 * slot_len);
            }
        }
        prev = Some(cur);
    }
    SlotPartition::new(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Traversal;
    use wilocator_road::RouteId;

    /// A store with hourly traversals over `days` days: 60 s baseline,
    /// 120 s during hours 8–9 (rush).
    fn rushy_store(edge: EdgeId, days: usize) -> TravelTimeStore {
        let mut s = TravelTimeStore::new();
        for day in 0..days {
            for hour in 6..22 {
                let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0;
                let tt = if (8..10).contains(&hour) { 120.0 } else { 60.0 };
                s.record(
                    edge,
                    Traversal {
                        route: RouteId((hour % 2) as u32),
                        t_enter: t0,
                        t_exit: t0 + tt,
                    },
                );
            }
        }
        s
    }

    #[test]
    fn seasonal_index_detects_rush() {
        let e = EdgeId(0);
        let store = rushy_store(e, 5);
        let si = seasonal_index(&store, e, 1e12, &SeasonalConfig::default());
        assert_eq!(si.samples, 5 * 16);
        let rush = si.rush_slots(1.25);
        assert_eq!(rush, vec![8, 9]);
        assert!(!si.is_flat(0.1));
        // Hours 6..22 carried data.
        assert_eq!(si.populated_slots(), 16);
        // Unpopulated night slots carry no index.
        assert!(si.index[2].is_none());
    }

    #[test]
    fn flat_store_has_flat_index() {
        let e = EdgeId(0);
        let mut s = TravelTimeStore::new();
        for day in 0..3 {
            for hour in 0..24 {
                let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0;
                s.record(
                    e,
                    Traversal {
                        route: RouteId(0),
                        t_enter: t0,
                        t_exit: t0 + 60.0,
                    },
                );
            }
        }
        let si = seasonal_index(&s, e, 1e12, &SeasonalConfig::default());
        assert!(si.is_flat(1e-9));
        assert!(si.rush_slots(1.25).is_empty());
    }

    #[test]
    fn empty_edge_yields_no_index() {
        let s = TravelTimeStore::new();
        let si = seasonal_index(&s, EdgeId(0), 1e12, &SeasonalConfig::default());
        assert_eq!(si.samples, 0);
        assert!(si.index.iter().all(|v| v.is_none()));
    }

    #[test]
    fn as_of_cuts_future_data() {
        let e = EdgeId(0);
        let store = rushy_store(e, 5);
        let early = seasonal_index(&store, e, DAY_S, &SeasonalConfig::default());
        assert_eq!(early.samples, 16);
    }

    #[test]
    fn partition_splits_around_rush() {
        let e = EdgeId(0);
        let store = rushy_store(e, 5);
        let si = seasonal_index(&store, e, 1e12, &SeasonalConfig::default());
        let p = partition_from_index(&si, &SeasonalConfig::default());
        // Boundaries at 08:00 and 10:00 at minimum.
        assert!(p.boundaries().contains(&(8.0 * 3_600.0)));
        assert!(p.boundaries().contains(&(10.0 * 3_600.0)));
        // Rush hours land in their own slot.
        let rush_slot = p.slot_of(8.5 * 3_600.0);
        assert_ne!(rush_slot, p.slot_of(7.5 * 3_600.0));
        assert_ne!(rush_slot, p.slot_of(10.5 * 3_600.0));
    }

    #[test]
    fn slot_partition_lookup() {
        let p = SlotPartition::new(vec![8.0 * 3_600.0, 10.0 * 3_600.0, 17.0 * 3_600.0]);
        assert_eq!(p.slot_count(), 4);
        assert_eq!(p.slot_of(0.0), 0);
        assert_eq!(p.slot_of(8.0 * 3_600.0), 1); // boundary belongs right
        assert_eq!(p.slot_of(9.0 * 3_600.0), 1);
        assert_eq!(p.slot_of(12.0 * 3_600.0), 2);
        assert_eq!(p.slot_of(20.0 * 3_600.0), 3);
        // Absolute times reduce modulo a day.
        assert_eq!(p.slot_of(DAY_S + 9.0 * 3_600.0), 1);
    }

    #[test]
    fn next_boundary_wraps_to_next_day() {
        let p = SlotPartition::new(vec![8.0 * 3_600.0, 17.0 * 3_600.0]);
        assert_eq!(p.next_boundary_after(6.0 * 3_600.0), 8.0 * 3_600.0);
        assert_eq!(p.next_boundary_after(9.0 * 3_600.0), 17.0 * 3_600.0);
        // After the last boundary of the day, the next slot change is
        // midnight (the slot index resets to 0 there).
        assert_eq!(p.next_boundary_after(20.0 * 3_600.0), DAY_S);
    }

    #[test]
    fn whole_day_partition() {
        let p = SlotPartition::whole_day();
        assert_eq!(p.slot_count(), 1);
        assert_eq!(p.slot_of(12.0 * 3_600.0), 0);
    }

    #[test]
    fn empty_index_partition_is_whole_day() {
        let si = SeasonalIndex {
            index: vec![None; 24],
            samples: 0,
        };
        let p = partition_from_index(&si, &SeasonalConfig::default());
        assert_eq!(p.slot_count(), 1);
    }
}

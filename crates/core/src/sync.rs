//! Synchronization façade for this crate's concurrent protocol modules.
//!
//! [`crate::snapshot`], [`crate::server`] and [`crate::metrics`] import
//! their lock and atomic types from here instead of `std::sync` (lint
//! rule W010 `raw_sync` enforces it). In a normal build these are
//! exactly the `std` types; under `RUSTFLAGS='--cfg wilocator_check'`
//! they become `wilocator-check`'s virtual primitives, so the model
//! checker explores the *real* publication and sharding code rather
//! than a hand-copied model of it. See `crates/check` and DESIGN.md
//! §14.

pub use wilocator_check::sync::*;

//! Real-time traffic map generation and anomaly detection (§IV, §V-A.4).
//!
//! WiLocator classifies each road segment from the *statistics of travel
//! time*, not vehicle velocity, because "each bus route usually has
//! different regular speed when traveling the same road segment" and
//! different segments pose different speed limits. The travel-time
//! residual of the latest bus is z-scored against the segment's residual
//! history; by the rule of thumb, `z > 1.64` marks the segment *very slow*
//! with 95 % confidence and `z > 1.00` *slow*.
//!
//! Anomaly localisation follows Fig. 6: a run of consecutive trajectory
//! fixes whose inter-fix road distance stays below δ (the bus is crawling)
//! away from stops and intersections marks the anomaly site between the
//! first and last fix of the run.

use wilocator_road::{EdgeId, Route};
use wilocator_svd::Fix;

use crate::history::TravelTimeStore;
use crate::predict::ArrivalPredictor;

/// Traffic state of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficState {
    /// Travel time consistent with history.
    Normal,
    /// Residual z-score above the slow threshold.
    Slow,
    /// Residual z-score above the very-slow threshold (95 % confidence).
    VerySlow,
    /// Not enough data to classify.
    Unknown,
}

impl std::fmt::Display for TrafficState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficState::Normal => "normal",
            TrafficState::Slow => "slow",
            TrafficState::VerySlow => "very slow",
            TrafficState::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Configuration of the traffic-map generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficMapConfig {
    /// z-score above which a segment is *slow* (`c2` in the paper).
    pub slow_z: f64,
    /// z-score above which a segment is *very slow* (`c1`; 1.64 ⇒ 95 %).
    pub very_slow_z: f64,
    /// Minimum residual history before classifying.
    pub min_samples: usize,
    /// How recent the latest traversal must be to classify, seconds.
    pub freshness_s: f64,
}

impl Default for TrafficMapConfig {
    fn default() -> Self {
        TrafficMapConfig {
            slow_z: 1.0,
            very_slow_z: 1.64,
            min_samples: 8,
            freshness_s: 2_700.0,
        }
    }
}

/// One classified segment of the live traffic map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentState {
    /// The segment.
    pub edge: EdgeId,
    /// Its classification.
    pub state: TrafficState,
    /// The z-score behind the classification (0 for unknown).
    pub z: f64,
}

/// Generates traffic maps from the travel-time store.
#[derive(Debug, Clone, Default)]
pub struct TrafficMapGenerator {
    config: TrafficMapConfig,
}

impl TrafficMapGenerator {
    /// Creates a generator.
    pub fn new(config: TrafficMapConfig) -> Self {
        TrafficMapGenerator { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &TrafficMapConfig {
        &self.config
    }

    /// Classifies one segment at time `t`.
    ///
    /// Residuals are computed against the route- and slot-specific
    /// historical mean supplied by `predictor` (excluding route-related
    /// factors, as the paper prescribes).
    pub fn classify(
        &self,
        store: &TravelTimeStore,
        predictor: &ArrivalPredictor,
        edge: EdgeId,
        t: f64,
    ) -> SegmentState {
        // Residual history ε̂(i, l): each traversal's travel time minus
        // its own route- and slot-specific historical mean Th (the paper's
        // per-slot residual). Because every residual is normalised by the
        // slot it happened in, residuals from different slots are
        // comparable and the full history can be pooled — which keeps the
        // latest record fresh even right after a slot boundary.
        let mut residuals: Vec<f64> = Vec::new();
        let mut latest: Option<(f64, f64)> = None; // (t_exit, residual)
        for tr in store.completed_before(edge, t) {
            let Some(th) = predictor.historical_mean(store, edge, Some(tr.route), tr.t_enter)
            else {
                continue;
            };
            let r = tr.travel_time() - th;
            residuals.push(r);
            if latest.map(|(te, _)| tr.t_exit > te).unwrap_or(true) {
                latest = Some((tr.t_exit, r));
            }
        }
        let Some((t_exit, current_r)) = latest else {
            return SegmentState {
                edge,
                state: TrafficState::Unknown,
                z: 0.0,
            };
        };
        if residuals.len() < self.config.min_samples || t - t_exit > self.config.freshness_s {
            return SegmentState {
                edge,
                state: TrafficState::Unknown,
                z: 0.0,
            };
        }
        let n = residuals.len() as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-6);
        let z = (current_r - mean) / std;
        let state = if z > self.config.very_slow_z {
            TrafficState::VerySlow
        } else if z > self.config.slow_z {
            TrafficState::Slow
        } else {
            TrafficState::Normal
        };
        SegmentState { edge, state, z }
    }

    /// Classifies every segment of a route — the live traffic map. Unlike
    /// velocity-threshold maps, no segment with history is left unmarked
    /// (the WiLocator advantage visible in Fig. 11).
    pub fn route_map(
        &self,
        store: &TravelTimeStore,
        predictor: &ArrivalPredictor,
        route: &Route,
        t: f64,
    ) -> Vec<SegmentState> {
        route
            .edges()
            .iter()
            .map(|&e| self.classify(store, predictor, e, t))
            .collect()
    }
}

/// A localised traffic anomaly on a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Route arc-length range of the anomaly site (between `p_k` and `p_m`
    /// in the paper's notation).
    pub s_range: (f64, f64),
    /// Time range over which the crawl was observed.
    pub t_range: (f64, f64),
}

/// Derives the crawl threshold δ as a fraction of the *median* historical
/// per-scan displacement. The median is robust against the dwell (zero)
/// and light-wait spikes that inflate the standard deviation; a bus moving
/// at less than `fraction` of its typical pace is crawling.
pub fn delta_from_median(displacements: &[f64], fraction: f64) -> f64 {
    if displacements.is_empty() {
        return 1.0;
    }
    let mut sorted = displacements.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    (sorted[sorted.len() / 2] * fraction).max(1.0)
}

/// Derives the crawl threshold δ from historical per-scan displacements:
/// mean minus `c` standard deviations, floored at 1 m.
pub fn delta_from_history(displacements: &[f64], c: f64) -> f64 {
    if displacements.is_empty() {
        return 1.0;
    }
    let n = displacements.len() as f64;
    let mean = displacements.iter().sum::<f64>() / n;
    let var = displacements
        .iter()
        .map(|d| (d - mean).powi(2))
        .sum::<f64>()
        / n;
    (mean - c * var.sqrt()).max(1.0)
}

/// The longest plausible dwell at a stop or light, seconds: a slow run
/// near a stop/intersection lasting no longer than this is a boarding or
/// red-light dwell (the paper: "other possible cases causing a false
/// anomaly … can be easily identified based on the bus position"), while a
/// longer one is a genuine jam even if a stop sits inside it.
pub const MAX_DWELL_S: f64 = 90.0;

/// Detects anomaly sites in a tracked trajectory (Fig. 6): maximal runs of
/// `min_run` or more consecutive inter-fix displacements below `delta_m`.
/// Runs whose midpoint lies within `exclusion_radius_m` of a position in
/// `exclusions` (stops, intersections) are dropped **only when** they are
/// short enough ([`MAX_DWELL_S`]) to be a boarding or red-light dwell.
pub fn detect_anomalies(
    fixes: &[Fix],
    delta_m: f64,
    min_run: usize,
    exclusions: &[f64],
    exclusion_radius_m: f64,
) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    let flush = |start: usize, end: usize, out: &mut Vec<Anomaly>| {
        // Run of displacements [start..end] ⇒ fixes [start..=end+1].
        if end + 1 - start < min_run {
            return;
        }
        let s0 = fixes[start].s;
        let s1 = fixes[end + 1].s;
        let mid = 0.5 * (s0 + s1);
        let duration = fixes[end + 1].time_s - fixes[start].time_s;
        let near_exclusion = exclusions
            .iter()
            .any(|&x| (mid - x).abs() <= exclusion_radius_m);
        if near_exclusion && duration <= MAX_DWELL_S {
            return;
        }
        out.push(Anomaly {
            s_range: (s0, s1),
            t_range: (fixes[start].time_s, fixes[end + 1].time_s),
        });
    };
    for i in 0..fixes.len().saturating_sub(1) {
        let ds = fixes[i + 1].s - fixes[i].s;
        if ds < delta_m {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(start) = run_start.take() {
            flush(start, i - 1, &mut out);
        }
    }
    if let Some(start) = run_start {
        flush(start, fixes.len() - 2, &mut out);
    }
    out
}

/// Convenience: exclusion positions (stops and intersections) of a route.
pub fn route_exclusions(route: &Route) -> Vec<f64> {
    let mut out: Vec<f64> = route.stops().iter().map(|s| s.s()).collect();
    out.extend((0..route.edges().len()).map(|i| route.edge_start_s(i)));
    out.push(route.length());
    out
}

/// Ground-truth-free summary: fraction of a route's segments left
/// unclassified (the "unmarked segments" WiLocator avoids in Fig. 11).
pub fn unknown_fraction(map: &[SegmentState]) -> f64 {
    if map.is_empty() {
        return 0.0;
    }
    map.iter()
        .filter(|s| s.state == TrafficState::Unknown)
        .count() as f64
        / map.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Traversal;
    use crate::predict::PredictorConfig;
    use crate::seasonal::DAY_S;
    use wilocator_geo::Point;
    use wilocator_road::RouteId;
    use wilocator_svd::FixMethod;

    fn store_with_baseline(edge: EdgeId, n: usize, tt: f64) -> TravelTimeStore {
        let mut s = TravelTimeStore::new();
        for i in 0..n {
            let t0 = 10_000.0 + i as f64 * 600.0;
            s.record(
                edge,
                Traversal {
                    route: RouteId(0),
                    t_enter: t0,
                    t_exit: t0 + tt + (i % 3) as f64, // tiny spread
                },
            );
        }
        s
    }

    fn predictor() -> ArrivalPredictor {
        ArrivalPredictor::new(PredictorConfig::default())
    }

    #[test]
    fn normal_traffic_classified_normal() {
        let e = EdgeId(0);
        let store = store_with_baseline(e, 20, 90.0);
        let gen = TrafficMapGenerator::default();
        let state = gen.classify(&store, &predictor(), e, 10_000.0 + 20.0 * 600.0 + 60.0);
        assert_eq!(state.state, TrafficState::Normal, "z = {}", state.z);
    }

    #[test]
    fn jammed_segment_classified_very_slow() {
        let e = EdgeId(0);
        let mut store = store_with_baseline(e, 20, 90.0);
        let now = 10_000.0 + 21.0 * 600.0;
        store.record(
            e,
            Traversal {
                route: RouteId(1),
                t_enter: now - 400.0,
                t_exit: now - 400.0 + 320.0, // 3.5× the usual time
            },
        );
        let gen = TrafficMapGenerator::default();
        let state = gen.classify(&store, &predictor(), e, now);
        assert_eq!(state.state, TrafficState::VerySlow, "z = {}", state.z);
        assert!(state.z > 1.64);
    }

    #[test]
    fn no_data_is_unknown() {
        let store = TravelTimeStore::new();
        let gen = TrafficMapGenerator::default();
        let state = gen.classify(&store, &predictor(), EdgeId(5), 1_000.0);
        assert_eq!(state.state, TrafficState::Unknown);
    }

    #[test]
    fn stale_data_is_unknown() {
        let e = EdgeId(0);
        let store = store_with_baseline(e, 20, 90.0);
        let gen = TrafficMapGenerator::default();
        // A day later with no fresh traversal.
        let state = gen.classify(&store, &predictor(), e, 10_000.0 + DAY_S);
        assert_eq!(state.state, TrafficState::Unknown);
    }

    #[test]
    fn few_samples_is_unknown() {
        let e = EdgeId(0);
        let store = store_with_baseline(e, 3, 90.0);
        let gen = TrafficMapGenerator::default();
        let state = gen.classify(&store, &predictor(), e, 10_000.0 + 3.0 * 600.0);
        assert_eq!(state.state, TrafficState::Unknown);
    }

    fn mk_fix(t: f64, s: f64) -> Fix {
        Fix {
            s,
            point: Point::new(s, 0.0),
            interval: (s, s),
            method: FixMethod::Exact,
            time_s: t,
        }
    }

    #[test]
    fn crawl_run_detected_as_anomaly() {
        // Bus at 10 m/s, then crawling 1 m per 10 s tick around s = 500.
        let mut fixes = Vec::new();
        let mut s = 0.0;
        let mut t = 0.0;
        while s < 480.0 {
            fixes.push(mk_fix(t, s));
            s += 100.0;
            t += 10.0;
        }
        for _ in 0..6 {
            fixes.push(mk_fix(t, s));
            s += 1.5;
            t += 10.0;
        }
        while s < 1_000.0 {
            fixes.push(mk_fix(t, s));
            s += 100.0;
            t += 10.0;
        }
        let anomalies = detect_anomalies(&fixes, 10.0, 3, &[], 0.0);
        assert_eq!(anomalies.len(), 1);
        let a = anomalies[0];
        assert!(a.s_range.0 >= 400.0 && a.s_range.1 <= 550.0, "{:?}", a);
        assert!(a.t_range.1 > a.t_range.0);
    }

    #[test]
    fn crawl_near_stop_is_filtered() {
        let mut fixes = vec![mk_fix(0.0, 480.0)];
        let mut t = 10.0;
        let mut s = 481.0;
        for _ in 0..5 {
            fixes.push(mk_fix(t, s));
            t += 10.0;
            s += 1.0;
        }
        fixes.push(mk_fix(t, 600.0));
        // A stop sits at s = 485: the dwell explains the crawl.
        let anomalies = detect_anomalies(&fixes, 10.0, 3, &[485.0], 30.0);
        assert!(anomalies.is_empty());
        // Without the exclusion it is reported.
        let anomalies = detect_anomalies(&fixes, 10.0, 3, &[], 0.0);
        assert_eq!(anomalies.len(), 1);
    }

    #[test]
    fn short_runs_ignored() {
        let fixes = vec![
            mk_fix(0.0, 0.0),
            mk_fix(10.0, 100.0),
            mk_fix(20.0, 101.0), // single slow displacement
            mk_fix(30.0, 200.0),
        ];
        assert!(detect_anomalies(&fixes, 10.0, 3, &[], 0.0).is_empty());
    }

    #[test]
    fn delta_from_history_stats() {
        let d = delta_from_history(&[100.0, 100.0, 100.0, 100.0], 1.5);
        assert_eq!(d, 100.0); // zero variance
        let d2 = delta_from_history(&[80.0, 120.0, 100.0, 100.0], 1.0);
        assert!(d2 < 100.0 && d2 > 50.0);
        assert_eq!(delta_from_history(&[], 1.0), 1.0);
        // Never negative.
        assert_eq!(delta_from_history(&[1.0, 200.0], 5.0), 1.0);
    }

    #[test]
    fn unknown_fraction_counts() {
        let map = vec![
            SegmentState {
                edge: EdgeId(0),
                state: TrafficState::Normal,
                z: 0.0,
            },
            SegmentState {
                edge: EdgeId(1),
                state: TrafficState::Unknown,
                z: 0.0,
            },
        ];
        assert_eq!(unknown_fraction(&map), 0.5);
        assert_eq!(unknown_fraction(&[]), 0.0);
    }

    #[test]
    fn traffic_state_display() {
        assert_eq!(TrafficState::VerySlow.to_string(), "very slow");
        assert_eq!(TrafficState::Unknown.to_string(), "unknown");
    }
}

//! Rider-to-bus assignment by scan proximity (§V-A.1).
//!
//! "The bus riders, close to the driver by proximity sensor, have
//! approximately the same trajectory, therefore we can easily determine
//! which bus the riders are on." Two phones on the same bus hear nearly
//! identical WiFi environments; phones on different buses (metres vs
//! hundreds of metres apart) do not. This module clusters simultaneous
//! device scans by RSS-vector similarity, so one driver's identified route
//! (voice announcement or text input) propagates to every rider on board.

use std::collections::BTreeMap;

use wilocator_rf::{ApId, Scan};

/// An opaque device identifier (a rider's or driver's phone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u64);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Scan-similarity metric between two devices' simultaneous scans:
/// mean absolute RSS difference (dB) over the shared APs, plus a miss
/// penalty per AP heard by exactly one device. Lower = closer. Returns
/// `f64::INFINITY` when the scans share no AP at all.
pub fn scan_distance_db(a: &Scan, b: &Scan, miss_penalty_db: f64) -> f64 {
    // BTreeMaps so the float accumulation below runs in ApId order:
    // f64 addition is commutative but not associative, and this distance
    // feeds clustering decisions that must replay identically.
    let map_a: BTreeMap<ApId, i32> = a.readings.iter().map(|r| (r.ap, r.rss_dbm)).collect();
    let map_b: BTreeMap<ApId, i32> = b.readings.iter().map(|r| (r.ap, r.rss_dbm)).collect();
    let mut shared = 0usize;
    let mut sum = 0.0;
    let mut misses = 0usize;
    for (ap, &ra) in &map_a {
        match map_b.get(ap) {
            Some(&rb) => {
                shared += 1;
                sum += (ra - rb).abs() as f64;
            }
            None => misses += 1,
        }
    }
    for ap in map_b.keys() {
        if !map_a.contains_key(ap) {
            misses += 1;
        }
    }
    if shared == 0 {
        return f64::INFINITY;
    }
    let n = (shared + misses) as f64;
    (sum + misses as f64 * miss_penalty_db) / n
}

/// Groups simultaneous device scans into buses: single-linkage clustering
/// with the similarity threshold `max_distance_db`. Devices whose scans
/// are within the threshold of any member of a cluster join it.
///
/// Returns the clusters, each sorted by device id, largest first.
///
/// # Examples
///
/// ```
/// use wilocator_core::proximity::{group_by_proximity, DeviceId};
/// use wilocator_rf::{ApId, Bssid, Reading, Scan};
///
/// let scan = |aps: &[(u32, i32)]| Scan::new(0.0, aps.iter().map(|&(a, r)| Reading {
///     ap: ApId(a), bssid: Bssid::from_ap_id(ApId(a)), rss_dbm: r,
/// }).collect());
/// // Devices 1 and 2 hear the same two APs; device 3 hears different ones.
/// let scans = vec![
///     (DeviceId(1), scan(&[(0, -50), (1, -60)])),
///     (DeviceId(2), scan(&[(0, -52), (1, -59)])),
///     (DeviceId(3), scan(&[(7, -45), (8, -66)])),
/// ];
/// let groups = group_by_proximity(&scans, 8.0, 20.0);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0], vec![DeviceId(1), DeviceId(2)]);
/// ```
pub fn group_by_proximity(
    scans: &[(DeviceId, Scan)],
    max_distance_db: f64,
    miss_penalty_db: f64,
) -> Vec<Vec<DeviceId>> {
    let n = scans.len();
    // Union–find over device indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if scan_distance_db(&scans[i].1, &scans[j].1, miss_penalty_db) <= max_distance_db {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut clusters: BTreeMap<usize, Vec<DeviceId>> = BTreeMap::new();
    for (i, &(device, _)) in scans.iter().enumerate() {
        let root = find(&mut parent, i);
        clusters.entry(root).or_default().push(device);
    }
    let mut out: Vec<Vec<DeviceId>> = clusters.into_values().collect();
    for c in &mut out {
        c.sort_unstable();
    }
    // Clusters hold at least one device each, so `first()` never ties on
    // `None`; comparing Options avoids the indexing panic path outright.
    out.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.first().cmp(&b.first()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wilocator_geo::Point;
    use wilocator_rf::{AccessPoint, HomogeneousField, Scanner, ScannerConfig};

    fn scan(pairs: &[(u32, i32)]) -> Scan {
        Scan::new(
            0.0,
            pairs
                .iter()
                .map(|&(a, r)| wilocator_rf::Reading {
                    ap: ApId(a),
                    bssid: wilocator_rf::Bssid::from_ap_id(ApId(a)),
                    rss_dbm: r,
                })
                .collect(),
        )
    }

    #[test]
    fn distance_zero_for_identical_scans() {
        let a = scan(&[(0, -50), (1, -62)]);
        assert_eq!(scan_distance_db(&a, &a, 20.0), 0.0);
    }

    #[test]
    fn distance_symmetric_and_grows_with_rss_gap() {
        let a = scan(&[(0, -50), (1, -62)]);
        let b = scan(&[(0, -55), (1, -60)]);
        let c = scan(&[(0, -80), (1, -85)]);
        assert_eq!(
            scan_distance_db(&a, &b, 20.0),
            scan_distance_db(&b, &a, 20.0)
        );
        assert!(scan_distance_db(&a, &b, 20.0) < scan_distance_db(&a, &c, 20.0));
    }

    #[test]
    fn disjoint_scans_are_infinitely_far() {
        let a = scan(&[(0, -50)]);
        let b = scan(&[(9, -50)]);
        assert_eq!(scan_distance_db(&a, &b, 20.0), f64::INFINITY);
    }

    #[test]
    fn miss_penalty_separates_partial_overlap() {
        let a = scan(&[(0, -50), (1, -60), (2, -70)]);
        let same = scan(&[(0, -51), (1, -61), (2, -71)]);
        let partial = scan(&[(0, -51), (8, -61), (9, -71)]);
        assert!(scan_distance_db(&a, &same, 20.0) < scan_distance_db(&a, &partial, 20.0));
    }

    #[test]
    fn two_buses_worth_of_devices_cluster_correctly() {
        // Two buses 600 m apart on an instrumented street; three devices
        // on each, real scans with fading.
        let mut aps = Vec::new();
        let mut x = 30.0;
        let mut i = 0u32;
        while x < 1_200.0 {
            aps.push(AccessPoint::new(
                ApId(i),
                Point::new(x, if i.is_multiple_of(2) { 15.0 } else { -15.0 }),
            ));
            i += 1;
            x += 60.0;
        }
        let field = HomogeneousField::new(aps);
        let scanner = Scanner::new(ScannerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let bus_a = Point::new(200.0, 0.0);
        let bus_b = Point::new(800.0, 0.0);
        let mut scans = Vec::new();
        for d in 0..3u64 {
            scans.push((DeviceId(d), scanner.scan(&field, bus_a, 0.0, &mut rng)));
        }
        for d in 3..6u64 {
            scans.push((DeviceId(d), scanner.scan(&field, bus_b, 0.0, &mut rng)));
        }
        // Threshold sits in the gap between the two distance populations:
        // co-located pairs stay under ~19 dB (fading + beacon flicker),
        // cross-bus pairs never drop below ~23 dB on this street.
        let groups = group_by_proximity(&scans, 21.0, 25.0);
        assert_eq!(groups.len(), 2, "groups: {groups:?}");
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 3);
        // Devices 0–2 together, 3–5 together.
        let g0: Vec<u64> = groups[0].iter().map(|d| d.0).collect();
        assert!(g0 == vec![0, 1, 2] || g0 == vec![3, 4, 5]);
    }

    #[test]
    fn single_device_forms_its_own_group() {
        let scans = vec![(DeviceId(7), scan(&[(0, -50)]))];
        let groups = group_by_proximity(&scans, 10.0, 20.0);
        assert_eq!(groups, vec![vec![DeviceId(7)]]);
        assert!(group_by_proximity(&[], 10.0, 20.0).is_empty());
    }
}

//! Bus arrival-time prediction (Section IV, Equations 8–9).
//!
//! The travel time of route `j` on segment `e_i` in slot `l` is predicted
//! as the route's historical mean in that slot plus the average *recent
//! residual* of the buses — of any route — that most recently traversed
//! the segment:
//!
//! ```text
//! Tp(i,j,t) = Th(i,j,l) + Σ_k { Tr(i,k,l) − Th(i,k,l) } / K
//! ```
//!
//! Arrival at a stop integrates segment predictions with fractional first
//! and last segments (Equation 9), re-evaluating the slot as predicted
//! time accumulates ("the computation will be separated slot-by-slot").

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use wilocator_obs::TraceCtx;
use wilocator_road::{EdgeId, Route, RouteId};

use crate::history::TravelTimeStore;
use crate::metrics::PredictorMetrics;
use crate::seasonal::{partition_from_index, seasonal_index, SeasonalConfig, SlotPartition, DAY_S};

/// Key of the frozen-mean cache: `(segment, route filter, slot filter)`.
type MeanKey = (EdgeId, Option<RouteId>, Option<usize>);

/// Configuration of the arrival predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// How far back "recently passed" buses count, seconds.
    pub recent_window_s: f64,
    /// Maximum number of recent buses (`J`) averaged per segment.
    pub max_recent_buses: usize,
    /// Minimum historical records on a segment before its slot-mean is
    /// trusted; below this the all-time mean is used.
    pub min_slot_samples: usize,
    /// Fallback cruise speed when a segment has no history at all, m/s.
    pub fallback_speed_mps: f64,
    /// Seasonal analysis parameters used by [`ArrivalPredictor::train`].
    pub seasonal: SeasonalConfig,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            recent_window_s: 2_700.0,
            max_recent_buses: 8,
            min_slot_samples: 4,
            fallback_speed_mps: 6.0,
            seasonal: SeasonalConfig::default(),
        }
    }
}

/// Predicts per-segment travel times and stop arrival times.
///
/// Train once (offline phase: seasonal index → per-segment slot
/// partitions), then query online.
#[derive(Debug, Clone)]
pub struct ArrivalPredictor {
    config: PredictorConfig,
    partitions: HashMap<EdgeId, SlotPartition>,
    default_partition: SlotPartition,
    /// Historical means frozen at training time:
    /// `(edge, route filter, slot filter) → (mean, count)`. Populated by
    /// [`ArrivalPredictor::train`]; makes online queries O(log n) instead
    /// of a scan over the store. Ordered so training-time iteration is
    /// deterministic across processes.
    mean_cache: BTreeMap<MeanKey, (f64, usize)>,
    /// Train/predict accounting; clones of this predictor share it.
    metrics: Arc<PredictorMetrics>,
}

impl ArrivalPredictor {
    /// Creates an untrained predictor (whole-day slots everywhere).
    pub fn new(config: PredictorConfig) -> Self {
        ArrivalPredictor {
            config,
            partitions: HashMap::new(),
            default_partition: SlotPartition::whole_day(),
            mean_cache: BTreeMap::new(),
            metrics: Arc::new(PredictorMetrics::default()),
        }
    }

    /// The predictor configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The train/predict accounting ledger (shared by clones).
    pub fn metrics(&self) -> &Arc<PredictorMetrics> {
        &self.metrics
    }

    /// Offline phase (§V-A.3): computes each segment's seasonal index from
    /// records before `as_of` and derives its slot partition.
    pub fn train(&mut self, store: &TravelTimeStore, as_of: f64) {
        self.metrics.train_total.inc();
        let edges: Vec<EdgeId> = store.edges().collect();
        for edge in edges {
            let si = seasonal_index(store, edge, as_of, &self.config.seasonal);
            self.metrics.seasonal_indexes_built_total.inc();
            self.metrics
                .seasonal_slots_populated_total
                .add(si.populated_slots() as u64);
            let partition = partition_from_index(&si, &self.config.seasonal);
            if partition.slot_count() > 1 {
                self.metrics.multi_slot_partitions_total.inc();
            }
            self.partitions.insert(edge, partition);
        }
        // Freeze the historical means (the paper's offline phase): every
        // (edge, route, slot) aggregate, plus the any-route and any-slot
        // marginals used by the fallback chain.
        self.mean_cache.clear();
        let edges: Vec<EdgeId> = store.edges().collect();
        for edge in edges {
            let partition = self
                .partitions
                .get(&edge)
                .cloned()
                .unwrap_or_else(SlotPartition::whole_day);
            let add = |key: MeanKey, tt: f64, cache: &mut BTreeMap<MeanKey, (f64, usize)>| {
                let e = cache.entry(key).or_insert((0.0, 0));
                e.0 += tt;
                e.1 += 1;
            };
            for tr in store.completed_before(edge, as_of) {
                let slot = partition.slot_of(tr.t_enter.rem_euclid(DAY_S));
                let tt = tr.travel_time();
                add((edge, Some(tr.route), Some(slot)), tt, &mut self.mean_cache);
                add((edge, None, Some(slot)), tt, &mut self.mean_cache);
                add((edge, Some(tr.route), None), tt, &mut self.mean_cache);
                add((edge, None, None), tt, &mut self.mean_cache);
            }
        }
        for (sum, n) in self.mean_cache.values_mut() {
            *sum /= (*n).max(1) as f64;
        }
    }

    /// True once [`ArrivalPredictor::train`] populated the mean cache for
    /// `edge`.
    fn cache_covers(&self, edge: EdgeId) -> bool {
        self.mean_cache.contains_key(&(edge, None, None))
    }

    /// The slot partition of a segment (whole-day when untrained).
    pub fn partition(&self, edge: EdgeId) -> &SlotPartition {
        self.partitions
            .get(&edge)
            .unwrap_or(&self.default_partition)
    }

    /// Historical mean travel time `Th(i, j, l)` of `route` on `edge` for
    /// the slot containing `t`, using data strictly before `t`.
    ///
    /// Falls back from (route, slot) → (any route, slot) → (route, any
    /// slot) → (any route, any slot), each requiring
    /// `min_slot_samples` except the last.
    pub fn historical_mean(
        &self,
        store: &TravelTimeStore,
        edge: EdgeId,
        route: Option<RouteId>,
        t: f64,
    ) -> Option<f64> {
        if self.cache_covers(edge) {
            let slot = self.partition(edge).slot_of(t);
            let min = self.config.min_slot_samples;
            let get = |key: MeanKey| self.mean_cache.get(&key).copied();
            for key in [
                (edge, route, Some(slot)),
                (edge, None, Some(slot)),
                (edge, route, None),
            ] {
                if let Some((mean, n)) = get(key) {
                    if n >= min {
                        return Some(mean);
                    }
                }
            }
            return get((edge, None, None)).map(|(mean, _)| mean);
        }
        let partition = self.partition(edge);
        let slot = partition.slot_of(t);
        let min = self.config.min_slot_samples;
        let in_slot = |tr: &crate::history::Traversal| {
            partition.slot_of(tr.t_enter.rem_euclid(DAY_S)) == slot
        };
        let count = |r: Option<RouteId>, slot_only: bool| {
            store
                .completed_before(edge, t)
                .filter(|tr| r.map(|rr| tr.route == rr).unwrap_or(true))
                .filter(|tr| !slot_only || in_slot(tr))
                .count()
        };
        if count(route, true) >= min {
            return store.mean_travel_time(edge, route, t, in_slot);
        }
        if count(None, true) >= min {
            return store.mean_travel_time(edge, None, t, in_slot);
        }
        if count(route, false) >= min {
            return store.mean_travel_time(edge, route, t, |_| true);
        }
        store.mean_travel_time(edge, None, t, |_| true)
    }

    /// Equation 8: predicted travel time of `route` on `edge` for a bus
    /// entering around time `t`.
    ///
    /// Returns `None` only when the segment has no history at all.
    pub fn predict_segment(
        &self,
        store: &TravelTimeStore,
        edge: EdgeId,
        route: RouteId,
        t: f64,
    ) -> Option<f64> {
        self.predict_segment_counted(store, edge, route, t, Some(&self.metrics))
            .0
    }

    /// [`Predictor::predict_segment`] also reporting the K of Equation 8
    /// (how many recent-bus residuals were borrowed), for trace fields.
    ///
    /// `ledger` is the accounting sink: rider-facing calls pass the shared
    /// predictor ledger, background snapshot publication passes `None` so
    /// its continuous recomputation never distorts the Eq. 8/9 counters
    /// (which must stay a pure function of the ingested report stream).
    fn predict_segment_counted(
        &self,
        store: &TravelTimeStore,
        edge: EdgeId,
        route: RouteId,
        t: f64,
        ledger: Option<&PredictorMetrics>,
    ) -> (Option<f64>, u64) {
        if let Some(m) = ledger {
            m.predict_segment_total.inc();
        }
        let Some(th_own) = self.historical_mean(store, edge, Some(route), t) else {
            return (None, 0);
        };
        let recent = store.recent_buses(
            edge,
            t,
            self.config.recent_window_s,
            self.config.max_recent_buses,
        );
        if recent.is_empty() {
            return (Some(th_own), 0);
        }
        let mut ratio_sum = 0.0;
        let mut k = 0usize;
        for tr in &recent {
            if let Some(th_k) = self.historical_mean(store, edge, Some(tr.route), tr.t_enter) {
                if th_k > 1e-9 {
                    ratio_sum += tr.travel_time() / th_k;
                    k += 1;
                }
            }
        }
        if k == 0 {
            return (Some(th_own), 0);
        }
        // The K of Equation 8: residuals actually borrowed from recent
        // buses (of any route) on this segment.
        if let Some(m) = ledger {
            m.residual_borrow_total.add(k as u64);
            m.residual_applied_total.inc();
        }
        // Equation 8 implemented multiplicatively: each recent bus
        // contributes its travel-time *ratio* to its own historical mean,
        // which transfers across routes whose regular speeds differ ("even
        // though their regular speeds on this segment may differ"). One
        // shrinkage pseudo-count pulls the estimate toward 1 when few
        // buses contribute (a single bus's ratio mixes the shared
        // environment term with its own dwell/light noise).
        let ratio = (ratio_sum + 1.0) / (k as f64 + 1.0);
        // Congestion can slow a segment several-fold but never speed it up
        // beyond free flow by much.
        let ratio = ratio.clamp(0.5, 3.0);
        (Some((th_own * ratio).max(1.0)), k as u64)
    }

    /// Predicted travel time with the no-history fallback applied: a
    /// segment without records is crossed at `fallback_speed_mps`.
    pub fn predict_segment_or_fallback(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        edge_index: usize,
        t: f64,
    ) -> f64 {
        self.predict_segment_or_fallback_counted(store, route, edge_index, t, Some(&self.metrics))
            .0
    }

    /// [`Predictor::predict_segment_or_fallback`] also reporting the
    /// residual-borrow count, for trace fields.
    fn predict_segment_or_fallback_counted(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        edge_index: usize,
        t: f64,
        ledger: Option<&PredictorMetrics>,
    ) -> (f64, u64) {
        let edge = route.edges()[edge_index];
        let (predicted, k) = self.predict_segment_counted(store, edge, route.id(), t, ledger);
        match predicted {
            Some(tp) => (tp, k),
            None => {
                if let Some(m) = ledger {
                    m.segment_fallback_total.inc();
                }
                (
                    route.edge_length(edge_index) / self.config.fallback_speed_mps,
                    k,
                )
            }
        }
    }

    /// Equation 9: predicted *absolute arrival time* at arc length
    /// `stop_s` for a bus of `route` currently at `current_s` at time `t`.
    ///
    /// Returns `t` when the stop is at or behind the current position.
    /// Slots are re-evaluated as predicted time accumulates.
    pub fn predict_arrival(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        current_s: f64,
        t: f64,
        stop_s: f64,
    ) -> f64 {
        self.predict_arrival_traced(store, route, current_s, t, stop_s, None)
    }

    /// [`Predictor::predict_arrival`] with an optional trace context: a
    /// `predict` child span annotated with the number of segments summed
    /// and the total Equation 8 residual borrows.
    pub fn predict_arrival_traced(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        current_s: f64,
        t: f64,
        stop_s: f64,
        trace: Option<&TraceCtx<'_>>,
    ) -> f64 {
        self.metrics.predict_arrival_total.inc();
        let span = trace.map(|tr| tr.child_span("predict"));
        let mut segments = 0u64;
        let mut borrows = 0u64;
        let eta = self.predict_arrival_inner(
            store,
            route,
            current_s,
            t,
            stop_s,
            &mut segments,
            &mut borrows,
            Some(&self.metrics),
        );
        if let Some(sp) = &span {
            sp.field("segments", segments);
            sp.field("residual_borrows", borrows);
            sp.field("eta_s", eta);
        }
        eta
    }

    /// Equation 9 evaluated *without* touching the shared accounting
    /// ledger. Background snapshot publication recomputes arrival tables
    /// after every batch; letting those sweeps increment the predict
    /// counters would make the rider-facing Eq. 8/9 accounting a function
    /// of publish cadence instead of the report stream. Query-plane
    /// traffic is accounted by `QueryMetrics` at the serving layer.
    pub fn predict_arrival_unledgered(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        current_s: f64,
        t: f64,
        stop_s: f64,
    ) -> f64 {
        let mut segments = 0u64;
        let mut borrows = 0u64;
        self.predict_arrival_inner(
            store,
            route,
            current_s,
            t,
            stop_s,
            &mut segments,
            &mut borrows,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn predict_arrival_inner(
        &self,
        store: &TravelTimeStore,
        route: &Route,
        current_s: f64,
        t: f64,
        stop_s: f64,
        segments: &mut u64,
        borrows: &mut u64,
        ledger: Option<&PredictorMetrics>,
    ) -> f64 {
        if stop_s <= current_s {
            return t;
        }
        let start = route.position_at(current_s);
        let target = route.position_at(stop_s.min(route.length()));
        let mut t_cur = t;
        // Fractional remainder of the current segment.
        {
            let i = start.edge_index;
            let len = route.edge_length(i);
            let (tp, k) = self.predict_segment_or_fallback_counted(store, route, i, t_cur, ledger);
            *segments += 1;
            *borrows += k;
            if target.edge_index == i {
                // Stop on the current segment.
                return t_cur + tp * (target.s_on_edge - start.s_on_edge).max(0.0) / len;
            }
            t_cur += tp * (len - start.s_on_edge) / len;
        }
        // Full intermediate segments, slot-by-slot.
        for i in start.edge_index + 1..target.edge_index {
            let (tp, k) = self.predict_segment_or_fallback_counted(store, route, i, t_cur, ledger);
            *segments += 1;
            *borrows += k;
            t_cur += tp;
        }
        // Fractional final segment up to the stop.
        let i = target.edge_index;
        let len = route.edge_length(i);
        let (tp, k) = self.predict_segment_or_fallback_counted(store, route, i, t_cur, ledger);
        *segments += 1;
        *borrows += k;
        t_cur + tp * target.s_on_edge / len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Traversal;
    use wilocator_geo::Point;
    use wilocator_road::{NetworkBuilder, RouteId};

    fn route_3seg() -> Route {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(600.0, 0.0));
        let n2 = b.add_node(Point::new(1_200.0, 0.0));
        let n3 = b.add_node(Point::new(1_800.0, 0.0));
        let e0 = b.add_edge(n0, n1, None).unwrap();
        let e1 = b.add_edge(n1, n2, None).unwrap();
        let e2 = b.add_edge(n2, n3, None).unwrap();
        Route::new(RouteId(0), "r", vec![e0, e1, e2], &b.build()).unwrap()
    }

    /// Seed the store with `days` days of one traversal per hour per edge,
    /// travel time `tt` seconds (+rush extra during hours 8–9).
    fn seeded_store(route: &Route, days: usize, tt: f64, rush_extra: f64) -> TravelTimeStore {
        let mut store = TravelTimeStore::new();
        for day in 0..days {
            for hour in 6..22 {
                for (i, &edge) in route.edges().iter().enumerate() {
                    let t0 = day as f64 * DAY_S + hour as f64 * 3_600.0 + i as f64 * 120.0;
                    let extra = if (8..10).contains(&hour) {
                        rush_extra
                    } else {
                        0.0
                    };
                    store.record(
                        edge,
                        Traversal {
                            route: RouteId((i % 2) as u32),
                            t_enter: t0,
                            t_exit: t0 + tt + extra,
                        },
                    );
                }
            }
        }
        store
    }

    #[test]
    fn untrained_predictor_uses_whole_day_history() {
        let route = route_3seg();
        let store = seeded_store(&route, 3, 90.0, 0.0);
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let now = 3.0 * DAY_S + 12.0 * 3_600.0;
        let tp = p
            .predict_segment(&store, route.edges()[0], route.id(), now)
            .unwrap();
        assert!((tp - 90.0).abs() < 1.0, "tp {tp}");
    }

    #[test]
    fn trained_predictor_is_slot_aware() {
        let route = route_3seg();
        let store = seeded_store(&route, 10, 90.0, 120.0);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, 10.0 * DAY_S);
        let rush = 10.0 * DAY_S + 8.6 * 3_600.0;
        let off = 10.0 * DAY_S + 13.0 * 3_600.0;
        let tp_rush = p
            .predict_segment(&store, route.edges()[0], route.id(), rush)
            .unwrap();
        let tp_off = p
            .predict_segment(&store, route.edges()[0], route.id(), off)
            .unwrap();
        assert!(
            tp_rush > tp_off + 60.0,
            "rush {tp_rush} vs off-peak {tp_off}"
        );
    }

    #[test]
    fn recent_residual_corrects_prediction() {
        let route = route_3seg();
        let mut store = seeded_store(&route, 5, 90.0, 0.0);
        let edge = route.edges()[1];
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        // A bus of *another* route just crawled the segment: +60 s residual.
        store.record(
            edge,
            Traversal {
                route: RouteId(1),
                t_enter: now - 600.0,
                t_exit: now - 600.0 + 150.0,
            },
        );
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let tp = p.predict_segment(&store, edge, RouteId(0), now).unwrap();
        // +60 s residual, shrunk by K/(K+1) with K = 1 ⇒ +30 s.
        assert!(tp > 110.0, "residual not propagated: {tp}");
    }

    #[test]
    fn stale_residual_is_ignored() {
        let route = route_3seg();
        let mut store = seeded_store(&route, 5, 90.0, 0.0);
        let edge = route.edges()[1];
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        store.record(
            edge,
            Traversal {
                route: RouteId(1),
                t_enter: now - 2.0 * 3_600.0, // two hours old
                t_exit: now - 2.0 * 3_600.0 + 400.0,
            },
        );
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let tp = p.predict_segment(&store, edge, RouteId(0), now).unwrap();
        assert!((90.0..110.0).contains(&tp), "stale record leaked: {tp}");
    }

    #[test]
    fn arrival_integrates_segments_with_fractions() {
        let route = route_3seg();
        let store = seeded_store(&route, 5, 60.0, 0.0);
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        // Bus halfway down segment 0 (s = 300), stop mid-segment 2
        // (s = 1500): 0.5·60 + 60 + 0.5·60 = 120 s.
        let eta = p.predict_arrival(&store, &route, 300.0, now, 1_500.0);
        assert!((eta - now - 120.0).abs() < 5.0, "eta offset {}", eta - now);
    }

    #[test]
    fn arrival_same_segment_fraction() {
        let route = route_3seg();
        let store = seeded_store(&route, 5, 60.0, 0.0);
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        // From s = 100 to s = 400 within segment 0: 0.5 of 60 s.
        let eta = p.predict_arrival(&store, &route, 100.0, now, 400.0);
        assert!((eta - now - 30.0).abs() < 2.0);
    }

    #[test]
    fn arrival_behind_position_is_now() {
        let route = route_3seg();
        let store = TravelTimeStore::new();
        let p = ArrivalPredictor::new(PredictorConfig::default());
        assert_eq!(
            p.predict_arrival(&store, &route, 500.0, 1_000.0, 400.0),
            1_000.0
        );
    }

    #[test]
    fn no_history_falls_back_to_cruise_speed() {
        let route = route_3seg();
        let store = TravelTimeStore::new();
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let eta = p.predict_arrival(&store, &route, 0.0, 0.0, 1_800.0);
        // 1800 m at 6 m/s = 300 s.
        assert!((eta - 300.0).abs() < 5.0, "eta {eta}");
    }

    #[test]
    fn metrics_meter_training_and_residual_borrows() {
        let route = route_3seg();
        let mut store = seeded_store(&route, 5, 90.0, 120.0);
        let mut p = ArrivalPredictor::new(PredictorConfig::default());
        p.train(&store, 5.0 * DAY_S);
        let m = p.metrics().clone();
        assert_eq!(m.train_total.get(), 1);
        assert_eq!(m.seasonal_indexes_built_total.get(), 3);
        assert!(m.multi_slot_partitions_total.get() >= 1, "rush split");
        // Two recent buses on a segment ⇒ Eq. 8 borrows K = 2 residuals.
        let edge = route.edges()[1];
        let now = 5.0 * DAY_S + 12.0 * 3_600.0;
        for dt in [300.0, 600.0] {
            store.record(
                edge,
                Traversal {
                    route: RouteId(1),
                    t_enter: now - dt,
                    t_exit: now - dt + 150.0,
                },
            );
        }
        let borrows_before = m.residual_borrow_total.get();
        p.predict_segment(&store, edge, RouteId(0), now).unwrap();
        assert_eq!(m.residual_borrow_total.get() - borrows_before, 2);
        assert_eq!(m.residual_applied_total.get(), 1);
        assert_eq!(m.predict_segment_total.get(), 1);
        // A predictor with no history at all takes the cruise-speed
        // fallback, metered (the trained one above answers from its
        // frozen mean cache even against an empty store).
        let empty = TravelTimeStore::new();
        let untrained = ArrivalPredictor::new(PredictorConfig::default());
        untrained.predict_segment_or_fallback(&empty, &route, 0, now);
        assert_eq!(untrained.metrics().segment_fallback_total.get(), 1);
        // Clones share the ledger.
        let clone = p.clone();
        clone.predict_arrival(&empty, &route, 0.0, now, 100.0);
        assert_eq!(m.predict_arrival_total.get(), 1);
    }

    #[test]
    fn prediction_never_negative_or_zero() {
        let route = route_3seg();
        let mut store = seeded_store(&route, 3, 60.0, 0.0);
        let edge = route.edges()[0];
        let now = 3.0 * DAY_S + 12.0 * 3_600.0;
        // Recent bus was absurdly fast (negative residual larger than Th).
        store.record(
            edge,
            Traversal {
                route: RouteId(1),
                t_enter: now - 300.0,
                t_exit: now - 299.0,
            },
        );
        let p = ArrivalPredictor::new(PredictorConfig::default());
        let tp = p.predict_segment(&store, edge, RouteId(0), now).unwrap();
        assert!(tp >= 1.0);
    }
}

//! WiLocator: WiFi-sensing based real-time bus tracking and arrival-time
//! prediction — a complete Rust reproduction of the ICDCS 2016 paper.
//!
//! This umbrella crate re-exports the whole workspace under short module
//! names. The layering, bottom to top:
//!
//! * [`obs`] — zero-dependency observability (counters, histograms,
//!   metric snapshots) threaded through every hot path;
//! * [`geo`] — planar/geodetic geometry (points, projections, polylines,
//!   rasters, spatial index);
//! * [`rf`] — the radio substrate (path loss, shadowing, scan simulation,
//!   the `SignalField` contract);
//! * [`road`] — road networks, routes, stops, overlap analysis, schedules;
//! * [`svd`] — the paper's contribution: Signal Voronoi Diagrams and
//!   rank-based positioning;
//! * [`core`] — the WiLocator server (tracking, prediction, traffic maps,
//!   the hybrid WiFi/GPS extension);
//! * [`sim`] — the urban simulator substituting the paper's in-situ data;
//! * [`baselines`] — every scheme the paper compares against;
//! * [`eval`] — metrics, the end-to-end pipeline and per-figure
//!   experiment runners.
//!
//! # Examples
//!
//! Track a bus from raw scans and ask for an ETA:
//!
//! ```
//! use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
//! use wilocator::geo::Point;
//! use wilocator::rf::{AccessPoint, ApId, Bssid, HomogeneousField, Reading, Scan};
//! use wilocator::road::{NetworkBuilder, Route, RouteId};
//!
//! let mut b = NetworkBuilder::new();
//! let n0 = b.add_node(Point::new(0.0, 0.0));
//! let n1 = b.add_node(Point::new(300.0, 0.0));
//! let e = b.add_edge(n0, n1, None)?;
//! let net = b.build();
//! let mut route = Route::new(RouteId(0), "9", vec![e], &net)?;
//! route.add_stops_evenly(2);
//!
//! let field = HomogeneousField::new(vec![
//!     AccessPoint::new(ApId(0), Point::new(60.0, 20.0)),
//!     AccessPoint::new(ApId(1), Point::new(240.0, -20.0)),
//! ]);
//! let server = WiLocator::new(&field, vec![route], WiLocatorConfig::default());
//! server.register_bus(BusKey(1), RouteId(0))?;
//! let fix = server.ingest(&ScanReport {
//!     bus: BusKey(1),
//!     time_s: 0.0,
//!     scans: vec![Scan::new(0.0, vec![Reading {
//!         ap: ApId(0),
//!         bssid: Bssid::from_ap_id(ApId(0)),
//!         rss_dbm: -52,
//!     }])],
//! })?;
//! assert!(fix.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub use wilocator_baselines as baselines;
pub use wilocator_core as core;
pub use wilocator_eval as eval;
pub use wilocator_geo as geo;
pub use wilocator_obs as obs;
pub use wilocator_rf as rf;
pub use wilocator_road as road;
pub use wilocator_serve as serve;
pub use wilocator_sim as sim;
pub use wilocator_svd as svd;

//! The campus experiment (Table II + Fig. 10): scan the eleven campus APs
//! at three probe locations, print the RSSI lists, and position the
//! drive-by bus with the second-order SVD.
//!
//! Run with `cargo run --release --example campus_survey`.

use wilocator::eval::experiments::{fig10, table2};

fn main() {
    println!("Table II reproduction — measured RSSI at campus locations:\n");
    let rows = table2::run(1);
    println!("{}", table2::render(&rows));

    println!("Fig. 10 reproduction — SVD positioning at the probes:\n");
    let results = fig10::run(1);
    println!("{}", fig10::render(&results));

    let avg: f64 = results.iter().map(|r| r.route_error_m).sum::<f64>() / results.len() as f64;
    println!("(paper reports 2 m at each location; our channel yields {avg:.1} m average)");
}

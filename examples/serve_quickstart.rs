//! Serve quickstart: track a simulated bus, publish query snapshots,
//! boot the rider-facing HTTP front end on an ephemeral port, and hit
//! every endpoint like a rider's phone would.
//!
//! Run with `cargo run --release --example serve_quickstart`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::serve::{serve, ServeConfig};
use wilocator::sim::{
    sense_trip, simple_street, simulate_trip, BusConfig, CityConfig, SensingConfig, TrafficConfig,
    TrafficModel,
};

fn main() {
    // 1. A 2 km street, one route, one tracked bus (same scene as the
    //    quickstart example).
    let city = simple_street(2_000.0, 5, 7, &CityConfig::default());
    let route = city.routes[0].clone();
    let server = Arc::new(WiLocator::new(
        &city.server_field,
        vec![route.clone()],
        WiLocatorConfig::default(),
    ));
    let bus = BusKey(1);
    server.register_bus(bus, route.id()).expect("served route");

    // 2. Stream a midday trip through ingest; every batch publishes a
    //    fresh query snapshot for the front end to answer from.
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 7);
    let mut rng = StdRng::seed_from_u64(7);
    let trajectory = simulate_trip(
        &route,
        &traffic,
        12.0 * 3_600.0,
        &BusConfig::default(),
        &mut rng,
    );
    let ap_index = city.ap_index();
    let bundles = sense_trip(
        &city,
        &trajectory,
        0,
        &SensingConfig::default(),
        &ap_index,
        &mut rng,
    );
    let reports: Vec<ScanReport> = bundles
        .iter()
        .map(|b| ScanReport {
            bus,
            time_s: b.time_s,
            scans: b.scans.clone(),
        })
        .collect();
    for chunk in reports.chunks(32) {
        for result in server.ingest_batch(chunk) {
            result.expect("registered bus");
        }
    }
    server.train(13.0 * 3_600.0);
    println!(
        "replayed {} scan reports; snapshot epoch {}",
        reports.len(),
        server.snapshot_epoch()
    );

    // 3. Boot the HTTP front end on an ephemeral loopback port.
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port");
    let addr = handle.local_addr();
    println!("serving rider queries on http://{addr}\n");

    // 4. Ask it what a rider would ask. (Use curl against the printed
    //    address for a long-lived server; here we query and exit.)
    let last_stop = route.stops().last().expect("stops").id();
    for target in [
        "/healthz".to_string(),
        format!("/arrivals/{}", last_stop.0),
        format!("/position/{}", bus.0),
        format!("/traffic/{}", route.id().0),
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: wilocator\r\nConnection: close\r\n\r\n"
        )
        .expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
        println!("GET {target}\n  {body}\n");
    }

    handle.shutdown();
    println!("front end shut down cleanly");
}

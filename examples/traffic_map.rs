//! Live traffic map with an injected incident (Fig. 11): a road-work jam
//! appears on the arterial during the morning rush; WiLocator flags the
//! segment and localises the anomaly from the crawling trajectory.
//!
//! Run with `cargo run --release --example traffic_map`.

use wilocator::core::TrafficState;
use wilocator::eval::experiments::fig11;
use wilocator::eval::Scale;

fn main() {
    println!("injecting a 7x slowdown on route 9's arterial during the 08:24 rush…\n");
    let result = fig11::run(Scale::Smoke, 17);

    println!("{}", fig11::render(&result));

    match result.incident_state {
        TrafficState::VerySlow => {
            println!(
                "the jammed segment was flagged VERY SLOW with 95 % confidence (z = {:.1} > 1.64)",
                result.incident_z
            )
        }
        TrafficState::Slow => {
            println!(
                "the jammed segment was flagged SLOW (z = {:.1})",
                result.incident_z
            )
        }
        other => println!("segment state: {other}"),
    }
    if result.localized {
        let a = result
            .anomalies
            .iter()
            .find(|a| {
                a.s_range.1 > result.incident_range.0 - 200.0
                    && a.s_range.0 < result.incident_range.1 + 200.0
            })
            .expect("localized implies an overlapping anomaly");
        println!(
            "anomaly site localised at {:.0}–{:.0} m (injected at {:.0}–{:.0} m)",
            a.s_range.0, a.s_range.1, result.incident_range.0, result.incident_range.1
        );
    }
}

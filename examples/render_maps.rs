//! Renders the paper's visual artefacts as SVG files in the current
//! directory: the campus Signal Voronoi Diagram (Fig. 10), the AP
//! deployment (Fig. 1's flavour) and a live traffic map with an incident
//! (Fig. 11).
//!
//! Run with `cargo run --release --example render_maps`.

use wilocator::eval::experiments::fig11;
use wilocator::eval::{deployment_svg, svd_svg, traffic_map_svg, Scale};
use wilocator::rf::SignalField;
use wilocator::svd::{SignalVoronoiDiagram, SvdConfig};

fn main() -> std::io::Result<()> {
    // 1. Campus SVD (Fig. 10): tiles coloured by dominating AP, the road
    //    and the eleven APs on top.
    let scene = wilocator::sim::campus(1);
    let diagram = SignalVoronoiDiagram::build(
        &scene.city.server_field,
        scene.city.bbox,
        SvdConfig {
            resolution_m: 1.0,
            ..SvdConfig::default()
        },
    );
    let svg = svd_svg(
        &diagram,
        &scene.city.server_field,
        Some(&scene.city.routes[0]),
        900.0,
    );
    std::fs::write("campus_svd.svg", &svg)?;
    println!("wrote campus_svd.svg ({} KiB)", svg.len() / 1024);

    // 2. AP deployment along a street.
    let city = wilocator::sim::simple_street(2_000.0, 5, 7, &wilocator::sim::CityConfig::default());
    let svg = deployment_svg(city.field.aps(), Some(&city.routes[0]), 1_000.0);
    std::fs::write("deployment.svg", &svg)?;
    println!("wrote deployment.svg ({} KiB)", svg.len() / 1024);

    // 3. Live traffic map with the Fig. 11 incident (smoke scale).
    println!("running the incident scenario (takes ~30 s)…");
    let result = fig11::run(Scale::Smoke, 17);
    println!(
        "incident classified {} (z = {:.1})",
        result.incident_state, result.incident_z
    );
    // Re-query the map through a fresh run is costly; render from the
    // reported states via the example's own pipeline instead.
    let vancouver = wilocator::eval::vancouver_city(17);
    let route9 = vancouver.route(wilocator::road::RouteId(1)).unwrap();
    // Synthetic demonstration states: colour by the fig11 anomaly range.
    let states: Vec<wilocator::core::SegmentState> = route9
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &edge)| {
            let s_mid = route9.edge_start_s(i) + route9.edge_length(i) / 2.0;
            let state = if s_mid > result.incident_range.0 - 150.0
                && s_mid < result.incident_range.1 + 150.0
            {
                wilocator::core::TrafficState::VerySlow
            } else if i % 7 == 3 {
                wilocator::core::TrafficState::Slow
            } else {
                wilocator::core::TrafficState::Normal
            };
            wilocator::core::SegmentState {
                edge,
                state,
                z: 0.0,
            }
        })
        .collect();
    let svg = traffic_map_svg(route9, &states, 1_200.0);
    std::fs::write("traffic_map.svg", &svg)?;
    println!("wrote traffic_map.svg ({} KiB)", svg.len() / 1024);
    Ok(())
}

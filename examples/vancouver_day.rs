//! A service day on the paper's four Metro-Vancouver routes (Table I):
//! full crowdsensing pipeline — simulate, track every bus, train the
//! predictor, and report accuracy per route.
//!
//! Run with `cargo run --release --example vancouver_day`. Pass
//! `--trace-out trace.json` to also write the server's flight-recorder
//! export as Chrome trace-event JSON — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>, or analyze it with
//! `cargo run --release -p wilocator-tracedump -- trace.json`.

use wilocator::eval::{route_name, run_pipeline, vancouver_city, vancouver_pipeline, Cdf, Scale};
use wilocator::rf::SignalField;
use wilocator::road::RouteId;

fn main() {
    let mut trace_out: Option<String> = None;
    let mut debug_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out takes a file path");
                    std::process::exit(2);
                }
            },
            "--debug-out" => match args.next() {
                Some(path) => debug_out = Some(path),
                None => {
                    eprintln!("--debug-out takes a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: vancouver_day [--trace-out FILE] [--debug-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let city = vancouver_city(42);
    println!("Table-I city generated:");
    for route in &city.routes {
        println!(
            "  route {:>10}: {:>5.1} km, {:>2} stops",
            route.name(),
            route.length() / 1_000.0,
            route.stops().len()
        );
    }
    println!("  {} access points deployed\n", city.field.aps().len());

    let mut config = vancouver_pipeline(Scale::Smoke, 42);
    // Publish rider snapshots every simulated 30 s so the quality plane
    // ledgers ETAs and confirms them against later fixes.
    config.publish_every_s = 30.0;
    println!(
        "simulating {} day(s) ({} training), headway {:.0} s …",
        config.sim.days, config.train_days, config.headways[0].1
    );
    let out = run_pipeline(&city, &config);
    println!(
        "{} trips simulated, {} scan bundles ingested\n",
        out.dataset.trips.len(),
        out.dataset.bundle_count()
    );

    println!("positioning accuracy (evaluation days):");
    for id in 0..4 {
        let route = RouteId(id);
        let cdf = Cdf::new(out.positioning.get(&route).cloned().unwrap_or_default());
        println!(
            "  route {:>10}: median {:>5.1} m, p90 {:>6.1} m ({} fixes)",
            route_name(route),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.len()
        );
    }

    let rush: Vec<_> = out.predictions.iter().filter(|p| p.rush).collect();
    let wilo: Cdf = rush.iter().map(|p| p.wilocator_err()).collect();
    let agency: Cdf = rush.iter().map(|p| p.agency_err()).collect();
    println!(
        "\nrush-hour arrival prediction ({} predictions):",
        rush.len()
    );
    println!(
        "  WiLocator:      median {:>5.0} s, p90 {:>5.0} s, max {:>5.0} s",
        wilo.median(),
        wilo.quantile(0.9),
        wilo.max()
    );
    println!(
        "  Transit agency: median {:>5.0} s, p90 {:>5.0} s, max {:>5.0} s",
        agency.median(),
        agency.quantile(0.9),
        agency.max()
    );

    // The server's own account of the day, from the observability layer.
    let snapshot = out.server.metrics();
    println!("\nserver metrics:");
    for family in [
        "wilocator_reports_total",
        "wilocator_fixes_total",
        "wilocator_reports_stale_total",
        "wilocator_traversals_committed_total",
        "svd_fix_exact_total",
        "svd_fix_tie_boundary_total",
        "svd_fix_nearest_signature_total",
        "svd_fix_dead_reckoned_total",
        "predict_residual_borrow_total",
        "predict_arrival_total",
    ] {
        println!("  {family:<38} {}", snapshot.counter_family_total(family));
    }
    println!(
        "  (full exposition: {} lines of Prometheus text)",
        out.server.metrics_text().lines().count()
    );

    // The quality plane's verdict on the day: per-route ETA accuracy
    // quantiles and drift-detector states, from the same sections the
    // /debug endpoints publish.
    let quality = &out.server.query_snapshot().quality;
    println!(
        "\nquality plane (evaluated at {:.0} s):",
        quality.evaluated_at_s
    );
    for (route, rq) in &quality.routes {
        for h in &rq.horizons {
            if h.confirmed_total == 0 {
                continue;
            }
            println!(
                "  route {:>10} @{:>3.0}s: n={:<4} |e|={:>5.1} s, p90 {:>+6.1} s",
                route_name(*route),
                h.horizon_s,
                h.confirmed_total,
                h.mean_abs_error_s,
                h.p90_s
            );
        }
    }
    for d in &quality.slo {
        if d.fired {
            println!(
                "  detector {} FIRED (exemplars: {:?})",
                d.name, d.exemplar_trace_ids
            );
        }
    }

    if let Some(path) = debug_out {
        let json = wilocator::serve::debug_dump(&out.server);
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "\nquality plane: wrote {} bytes of /debug JSON to {path} \
                 (render with `wilocator-dash {path}`)",
                json.len()
            ),
            Err(e) => {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = trace_out {
        let json = out.server.trace_chrome_json();
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "\nflight recorder: wrote {} bytes of Chrome trace JSON to {path}",
                json.len()
            ),
            Err(e) => {
                eprintln!("write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! The rider's view (the paper's third component): "a user interface for
//! trip plan, such that the real-time bus track and schedule, and the
//! traffic map, can be readily available for intended bus riders."
//!
//! Several buses run the street; a rider waiting at a mid-route stop asks
//! which buses are coming and when.
//!
//! Run with `cargo run --release --example trip_plan`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::core::{BusKey, ScanReport, TrafficState, WiLocator, WiLocatorConfig};
use wilocator::road::RouteId;
use wilocator::sim::{
    sense_trip, simple_street, simulate_trip, BusConfig, CityConfig, SensingConfig, TrafficConfig,
    TrafficModel,
};

fn main() {
    let city = simple_street(4_000.0, 8, 31, &CityConfig::default());
    let route = city.routes[0].clone();
    let server = WiLocator::new(
        &city.server_field,
        vec![route.clone()],
        WiLocatorConfig::default(),
    );
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 31);
    let ap_index = city.ap_index();

    // Three buses departed 0 / 4 / 8 minutes ago; replay their scans up to
    // "now".
    let now = 8.7 * 3_600.0;
    let mut rng = StdRng::seed_from_u64(31);
    for (i, lead_s) in [480.0, 240.0, 0.0].iter().enumerate() {
        let bus = BusKey(i as u64 + 1);
        server.register_bus(bus, RouteId(0)).expect("served");
        let departure = now - 600.0 - lead_s;
        let trajectory =
            simulate_trip(&route, &traffic, departure, &BusConfig::default(), &mut rng);
        let bundles = sense_trip(
            &city,
            &trajectory,
            0,
            &SensingConfig::default(),
            &ap_index,
            &mut rng,
        );
        for b in bundles.iter().filter(|b| b.time_s <= now) {
            server
                .ingest(&ScanReport {
                    bus,
                    time_s: b.time_s,
                    scans: b.scans.clone(),
                })
                .expect("registered");
        }
    }

    // The rider waits at the 5th stop.
    let stop = &route.stops()[4];
    println!(
        "08:42 — you are waiting at \"{}\" (s = {:.0} m)\n",
        stop.name(),
        stop.s()
    );
    println!("live positions:");
    for i in 1..=3u64 {
        if let Some(fix) = server.position(BusKey(i)) {
            println!("  bus {i}: {:>6.0} m along the route", fix.s);
        }
    }

    let arrivals = server
        .arrivals_at(RouteId(0), stop.id())
        .expect("stop exists");
    println!("\nupcoming arrivals at your stop:");
    if arrivals.is_empty() {
        println!("  (no tracked bus is approaching)");
    }
    for (bus, eta) in &arrivals {
        println!("  {bus}: in {:>4.0} s", eta - now);
    }

    // And the live traffic map for the route.
    let map = server.traffic_map(RouteId(0), now).expect("served");
    let summary: String = map
        .iter()
        .map(|s| match s.state {
            TrafficState::Normal => '·',
            TrafficState::Slow => 'o',
            TrafficState::VerySlow => '#',
            TrafficState::Unknown => '?',
        })
        .collect();
    println!("\ntraffic map  (· normal, o slow, # very slow, ? no data)");
    println!("  [{summary}]");
}

//! AP dynamics robustness (§III-B): an access point dies after the server
//! built its Signal Voronoi Diagram. Rank-based positioning keeps working
//! — the diagram only deforms locally — while a fingerprint database built
//! before the outage silently degrades.
//!
//! Run with `cargo run --release --example ap_outage`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::baselines::{FingerprintConfig, FingerprintPositioner};
use wilocator::eval::{mean, replay_locator_errors, replay_svd_errors};
use wilocator::rf::{ApId, ScannerConfig, SignalField};
use wilocator::road::RouteId;
use wilocator::sim::{
    daily_schedule, simple_street, simulate, CityConfig, SimulationConfig, TrafficConfig,
    TrafficModel,
};
use wilocator::svd::{PositionerConfig, SvdConfig};

fn main() {
    let city = simple_street(2_000.0, 5, 9, &CityConfig::default());
    let route = city.routes[0].clone();
    println!(
        "street with {} APs; calibrating both systems…",
        city.field.aps().len()
    );

    // Offline phase for both systems, on the healthy deployment.
    let mut rng = StdRng::seed_from_u64(9);
    let fingerprint = FingerprintPositioner::survey(
        &city.field,
        &route,
        ScannerConfig::default(),
        FingerprintConfig::default(),
        &mut rng,
    );
    println!(
        "fingerprint survey: {} reference points (the labour the SVD avoids)\n",
        fingerprint.database_size()
    );

    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 9);
    let schedule = daily_schedule(&city, &[(RouteId(0), 1_800.0)]);
    let sim = SimulationConfig {
        days: 1,
        seed: 9,
        ..SimulationConfig::default()
    };

    for dead_fraction in [0.0_f64, 0.2, 0.4] {
        let n_dead = (city.field.aps().len() as f64 * dead_fraction) as usize;
        let dead: Vec<ApId> = city
            .field
            .aps()
            .iter()
            .take(n_dead)
            .map(|ap| ap.id())
            .collect();
        let mut broken = city.clone();
        broken.field = city.field.without_aps(&dead);

        let dataset = simulate(&broken, &schedule, &traffic, &sim);
        // The server prunes its geo-tag DB once the BSSIDs vanish from
        // scans and rebuilds the SVD (cheap: no survey needed).
        let rebuilt = city.server_field.without_aps(&dead);
        let svd_err = mean(&replay_svd_errors(
            &broken.routes,
            &dataset,
            &rebuilt,
            SvdConfig::default(),
            PositionerConfig::default(),
            2.0,
        ));
        // The fingerprint DB cannot be rebuilt without another survey.
        let fp_err = mean(&replay_locator_errors(
            &broken.routes,
            &dataset,
            |_, ranked| fingerprint.locate(ranked),
        ));
        println!(
            "{:>3.0} % of APs dead: SVD (rebuilt) {:>5.1} m | fingerprint (stale) {:>5.1} m",
            dead_fraction * 100.0,
            svd_err,
            fp_err
        );
    }
    println!(
        "\nthe SVD needs only the surviving geo-tags; the fingerprint DB needs a new site survey"
    );
}

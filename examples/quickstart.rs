//! Quickstart: track one simulated bus along a street and predict its
//! arrival at the final stop.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wilocator::core::{BusKey, ScanReport, WiLocator, WiLocatorConfig};
use wilocator::rf::SignalField;

use wilocator::sim::{
    sense_trip, simple_street, simulate_trip, BusConfig, CityConfig, SensingConfig, TrafficConfig,
    TrafficModel,
};

fn main() {
    // 1. A 2 km street with five stops and kerbside WiFi APs.
    let city = simple_street(2_000.0, 5, 7, &CityConfig::default());
    let route = city.routes[0].clone();
    println!(
        "city: {:.1} km street, {} APs, {} stops",
        route.length() / 1_000.0,
        city.field.aps().len(),
        route.stops().len()
    );

    // 2. The WiLocator server builds the Signal Voronoi Diagram of the
    //    route from the geo-tagged APs alone.
    let server = WiLocator::new(
        &city.server_field,
        vec![route.clone()],
        WiLocatorConfig::default(),
    );
    let bus = BusKey(1);
    server
        .register_bus_by_announcement(bus, "this is route demo bound for the terminal")
        .expect("route identified from the announcement");

    // 3. Simulate a midday trip with rider phones scanning every 10 s.
    let traffic = TrafficModel::new(&city.network, TrafficConfig::default(), 7);
    let mut rng = StdRng::seed_from_u64(7);
    let trajectory = simulate_trip(
        &route,
        &traffic,
        12.0 * 3_600.0,
        &BusConfig::default(),
        &mut rng,
    );
    let ap_index = city.ap_index();
    let bundles = sense_trip(
        &city,
        &trajectory,
        0,
        &SensingConfig::default(),
        &ap_index,
        &mut rng,
    );

    // 4. Stream the scans through the server and watch the track.
    let final_stop = route.stops().last().expect("stops").id();
    let mut printed_eta = false;
    for bundle in &bundles {
        let fix = server
            .ingest(&ScanReport {
                bus,
                time_s: bundle.time_s,
                scans: bundle.scans.clone(),
            })
            .expect("bus registered");
        if let Some(fix) = fix {
            let err = (fix.s - bundle.true_s).abs();
            if (fix.time_s as u64) % 60 < 10 {
                println!(
                    "t+{:>4.0} s  bus at {:>6.1} m (truth {:>6.1} m, error {:>5.1} m, {:?})",
                    fix.time_s - trajectory.start_time(),
                    fix.s,
                    bundle.true_s,
                    err,
                    fix.method
                );
            }
            // Ask for an ETA once, mid-trip.
            if !printed_eta && fix.s > route.length() / 2.0 {
                let eta = server
                    .predict_arrival(bus, final_stop)
                    .expect("stop on route");
                let actual = trajectory.time_at_s(route.length());
                println!(
                    "--> ETA at final stop: t+{:.0} s (actual arrival t+{:.0} s)",
                    eta - trajectory.start_time(),
                    actual - trajectory.start_time()
                );
                printed_eta = true;
            }
        }
    }
    server.finish_bus(bus).expect("registered");
    println!(
        "trip complete; {} segment travel times recorded for future predictions",
        server.with_store(|s| s.len())
    );
}
